"""Forward list scheduling with maximum-cumulative-cost priority
(Section 3.2.1.2.2).

"We select the forward cycle scheduling with maximum cumulative cost
heuristics.  As the heuristics accumulates the cost, or latency, for each
path, the node with longer latency to the leaf nodes of the slice has a
higher priority.  If two nodes have the same cost, the node with the lower
instruction address in the original binary has a higher priority.  Finally,
the instructions within each non-degenerate SCC are list scheduled by
ignoring all the loop-carried dependence edges."

Ordering constraints: intra-iteration true dependences *and* intra-
iteration anti/output dependences (registers are reused within one thread;
only loop-carried false dependences may be ignored, because chained threads
have private register files).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from ..isa.instructions import Instruction
from ..analysis.depgraph import DependenceGraph


def list_schedule(dg: DependenceGraph, nodes: Sequence[Instruction],
                  placed: Iterable[int] = ()) -> List[Instruction]:
    """Order ``nodes`` respecting intra-iteration dependences.

    ``placed`` names uids already scheduled earlier (e.g. the critical
    sub-slice when scheduling the non-critical part); dependences from them
    are considered satisfied.
    """
    node_uids = {ins.uid for ins in nodes}
    done: Set[int] = set(placed)
    instr_by_uid: Dict[int, Instruction] = {ins.uid: ins for ins in nodes}

    # Unsatisfied intra-iteration predecessor counts.
    pending: Dict[int, int] = {}
    for ins in nodes:
        count = 0
        for edge in dg.preds(ins.uid):
            if edge.loop_carried:
                continue
            if edge.src in node_uids and edge.src not in done:
                count += 1
        pending[ins.uid] = count

    # Priority: max cumulative latency to the leaves (node height within
    # the set), tie broken by lower original address.
    heights = {uid: dg.height(uid, within=node_uids) for uid in node_uids}

    ready = [uid for uid in node_uids if pending[uid] == 0]
    order: List[Instruction] = []
    while ready:
        ready.sort(key=lambda uid: (-heights[uid],
                                    instr_by_uid[uid].addr,
                                    uid))
        uid = ready.pop(0)
        order.append(instr_by_uid[uid])
        done.add(uid)
        for edge in dg.succs(uid):
            if edge.loop_carried or edge.dst not in node_uids or \
                    edge.dst in done:
                continue
            pending[edge.dst] -= 1
            if pending[edge.dst] == 0:
                ready.append(edge.dst)

    if len(order) != len(nodes):
        # A cycle of intra-iteration false dependences (rare): fall back to
        # original layout order for the stragglers.
        scheduled = {ins.uid for ins in order}
        for ins in sorted(nodes, key=lambda i: i.addr):
            if ins.uid not in scheduled:
                order.append(ins)
    return order
