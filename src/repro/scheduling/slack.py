"""Slack and reduced-miss-cycle models (Sections 3.2.1.2.2, 3.2.2, 3.4.1).

The paper's formulas, verbatim:

    slack_csp(i) = (height(region) - height(critical sub-slice)
                    - latency(copy live-ins and spawn)) * i

    slack_bsp(i) = (height(region) - height(slice)) * i

    reduced_misscycle = sum_i min(miss_cycle_per_iteration, slack_sp(i))

``height`` is the maximum latency-weighted node height of the dependence
graph restricted to the region / slice (per iteration, loop-carried edges
excluded).  The slack functions return the *per-iteration increment*; the
cumulative slack at iteration ``i`` is ``i`` times that.
"""

from __future__ import annotations

from typing import Set

from ..analysis.depgraph import DependenceGraph

#: Cycles to copy one live-in value to the buffer (one lib.st).
COPY_LATENCY_PER_LIVE_IN = 1
#: Fixed spawn cost seen by the critical path (context binding).
SPAWN_LATENCY = 4


def region_height(dg: DependenceGraph, region_uids: Set[int]) -> int:
    """Per-iteration dependence height of the whole region's code — the
    estimate of the main thread's schedule length per iteration."""
    return dg.max_height(region_uids, within=region_uids)


def slack_csp_per_iteration(height_region: int, height_critical: int,
                            num_live_ins: int) -> float:
    """Per-iteration slack gain of chaining SP."""
    copy_cost = (num_live_ins * COPY_LATENCY_PER_LIVE_IN) + SPAWN_LATENCY
    return float(height_region - height_critical - copy_cost)


def slack_bsp_per_iteration(height_region: int, height_slice: int) -> float:
    """Per-iteration slack gain of basic SP."""
    return float(height_region - height_slice)


def cumulative_slack(per_iteration: float, i: int) -> float:
    """slack_sp(i) — the paper's linear accumulation model."""
    return per_iteration * i


def reduced_miss_cycles(per_iteration_slack: float, trip_count: float,
                        miss_cycles_per_iteration: float) -> float:
    """reduced_misscycle = Σ_i min(miss_cycle_per_iteration, slack_sp(i)).

    Evaluated in closed form: slack grows linearly until it covers the
    whole per-iteration miss penalty, after which every iteration saves the
    full penalty.
    """
    n = int(trip_count)
    if n <= 0 or miss_cycles_per_iteration <= 0:
        return 0.0
    if per_iteration_slack <= 0:
        return 0.0
    # Iterations needed for slack to cover the full miss penalty.
    ramp = int(miss_cycles_per_iteration // per_iteration_slack)
    ramp = min(ramp, n)
    # Sum of slack over the ramp: per * (1 + 2 + ... + ramp).
    total = per_iteration_slack * ramp * (ramp + 1) / 2.0
    total += (n - ramp) * miss_cycles_per_iteration
    return total
