"""The scheduled form of a p-slice, ready for code generation.

A :class:`ScheduledSlice` is the output of the chaining or basic scheduler:
the slice body in execution order, split into critical / non-critical
sub-slices around the spawn point (Section 3.2.1.2.2), with live-in buffer
layout, spawn-condition handling, and the slack estimates that drive region
and model selection (Section 3.4.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.instructions import Instruction
from ..slicing.regional import RegionSlice

CHAINING, BASIC = "chaining", "basic"


class GuardCheck:
    """Entry-of-slice termination test for predicted spawn conditions.

    When the spawn condition is predicted (Section 3.2.1.1), a chained
    thread spawns its successor unconditionally; the successor then checks
    the *actual* condition on its live-in values and kills itself if the
    loop would have exited.  ``relation`` is the negation of the loop's
    continue condition.
    """

    def __init__(self, relation: str, reg: str,
                 other_reg: Optional[str] = None,
                 immediate: Optional[int] = None):
        self.relation = relation
        self.reg = reg
        self.other_reg = other_reg
        self.immediate = immediate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rhs = self.other_reg if self.other_reg is not None else self.immediate
        return f"GuardCheck(kill if {self.reg} {self.relation} {rhs})"


class ScheduledSlice:
    """A p-slice after scheduling, the emitter's input."""

    def __init__(self, kind: str, region_slice: RegionSlice,
                 critical: List[Instruction],
                 noncritical: List[Instruction],
                 live_ins: List[str],
                 spawn_pred: Optional[str] = None,
                 guard: Optional[GuardCheck] = None,
                 prefetch_convert: bool = True,
                 slack_per_iteration: float = 0.0,
                 height_region: int = 0,
                 height_critical: int = 0,
                 height_slice: int = 0,
                 available_ilp: float = 1.0,
                 rotation: int = 0,
                 extra_prefetches: Optional[List[Tuple[str, int]]] = None,
                 kill_after_uid: Optional[int] = None):
        self.kind = kind
        self.region_slice = region_slice
        #: Instructions before the spawn point (the critical sub-slice;
        #: empty for basic SP, which has no in-slice spawn).
        self.critical = critical
        #: Instructions after the spawn point.
        self.noncritical = noncritical
        #: Registers supplied through the live-in buffer, in slot order.
        self.live_ins = live_ins
        #: Qualifying predicate for the chain spawn (None = unconditional).
        self.spawn_pred = spawn_pred
        #: Entry termination check when the spawn condition is predicted.
        self.guard = guard
        #: Convert the delinquent load itself to a non-binding prefetch?
        self.prefetch_convert = prefetch_convert
        self.slack_per_iteration = slack_per_iteration
        self.height_region = height_region
        self.height_critical = height_critical
        self.height_slice = height_slice
        self.available_ilp = available_ilp
        #: Loop-rotation offset applied to the body (Section 3.2.1.1).
        self.rotation = rotation
        #: (register, offset) prefetches appended after the body — the
        #: recursive-context substitutions of Section 3.1's context-
        #: sensitive slicing (prefetch the next activation's data).
        self.extra_prefetches: List[Tuple[str, int]] = \
            list(extra_prefetches or [])
        #: Uid of a chase load after which the emitter inserts a
        #: kill-if-zero check — the chain-termination fallback when the
        #: predicted condition's operands are not reproducible from the
        #: pruned slice (e.g. a BFS queue's tail).
        self.kill_after_uid = kill_after_uid

    @property
    def ordered(self) -> List[Instruction]:
        """The full body in final execution order."""
        return self.critical + self.noncritical

    @property
    def load(self) -> Instruction:
        return self.region_slice.load

    @property
    def predicted(self) -> bool:
        return self.guard is not None

    def size(self) -> int:
        return len(self.critical) + len(self.noncritical)

    def num_live_ins(self) -> int:
        return len(self.live_ins)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ScheduledSlice({self.kind}, load={self.load.uid}, "
                f"{self.size()} instrs, {len(self.live_ins)} live-ins, "
                f"slack/iter={self.slack_per_iteration:.1f})")
