"""Graph partitioning of a slice's dependence graph (Section 3.2.1.2.1).

"We use the strongly connected components (SCC) algorithm to partition a
dependence graph ... we form SCC's without considering any false
loop-carried dependences.  Any occurrence of non-degenerate SCC in the
dependence graph consists of one or more dependence cycles, which implies
the existence of loop-carried dependences. ... our heuristics schedules all
instructions in an SCC first before scheduling instructions in another
SCC."

The *critical sub-slice* is the closure of the non-degenerate SCCs (and of
every node whose value is carried to the next iteration — a chain live-in
must be computed before the spawn point passes it on).
"""

from __future__ import annotations

from typing import List, Set

from ..analysis.depgraph import CONTROL, FLOW, DependenceGraph
from ..analysis.scc import strongly_connected_components

TRUE_KINDS = {FLOW, CONTROL}


def slice_sccs(dg: DependenceGraph, body_uids: Set[int]) -> List[List[int]]:
    """SCCs of the slice's true-dependence graph (carried edges included,
    false dependences excluded).  Reverse topological order."""

    def successors(uid: int):
        return [e.dst for e in dg.succs(uid, kinds=TRUE_KINDS)
                if e.dst in body_uids]

    return strongly_connected_components(sorted(body_uids), successors)


def nondegenerate_nodes(sccs: List[List[int]],
                        dg: DependenceGraph) -> Set[int]:
    """Nodes in non-degenerate SCCs (plus self-loop singletons)."""
    out: Set[int] = set()
    for comp in sccs:
        if len(comp) > 1:
            out.update(comp)
        else:
            (node,) = comp
            if any(e.dst == node for e in dg.succs(node, kinds=TRUE_KINDS)):
                out.add(node)
    return out


def critical_subslice(dg: DependenceGraph, body_uids: Set[int]) -> Set[int]:
    """The critical sub-slice: everything that must run before the spawn.

    Includes (a) all non-degenerate SCC nodes, (b) every node whose value
    flows loop-carried to another body node (it is a chain live-in and must
    be produced before the spawn passes live-ins on), and (c) the backward
    closure of (a)+(b) over intra-iteration true dependences.
    """
    sccs = slice_sccs(dg, body_uids)
    seeds = nondegenerate_nodes(sccs, dg)
    for uid in body_uids:
        for edge in dg.succs(uid, kinds=TRUE_KINDS):
            if edge.loop_carried and edge.dst in body_uids:
                seeds.add(uid)
    critical: Set[int] = set()
    work = list(seeds)
    while work:
        uid = work.pop()
        if uid in critical:
            continue
        critical.add(uid)
        for edge in dg.preds(uid, kinds=TRUE_KINDS):
            if edge.loop_carried or edge.src not in body_uids:
                continue
            if edge.src not in critical:
                work.append(edge.src)
    return critical
