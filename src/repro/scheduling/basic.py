"""The basic-SP scheduler (Section 3.2.2).

Basic SP uses a single speculative thread per trigger: no in-slice spawn,
no chaining overhead, but the thread serialises on its own loads ("may
stall if the thread encounters a data dependence after the delinquent load
on an in-order execution machine").

For a loop region the main thread re-triggers every iteration for the next
one ("basic SP uses a speculative thread to execute one iteration and in
each iteration of the main thread, the main thread triggers [a] new
speculative thread for the next iteration"); the body is therefore ordered
chain-values-first, so the thread advances the induction state before
prefetching.  For a procedure region (e.g. treeadd's recursive traversal,
the one benchmark the tool maps to basic SP) the slice simply prefetches
the callee's delinquent data at entry.
"""

from __future__ import annotations

from typing import Optional, Set

from ..analysis.depgraph import FLOW
from ..guard import faultinject
from ..obs.tracer import Tracer, ensure_tracer
from ..slicing.regional import RegionSlice
from .chaining import (
    _emittable,
    _live_in_registers,
    _prefetch_convertible,
    prune_dead_slice_code,
)
from .listsched import list_schedule
from .partition import critical_subslice
from .prediction import find_backedge_branch, find_condition_cmp
from .rotation import best_rotation, rotate
from .schedule import BASIC, ScheduledSlice
from .slack import region_height, slack_bsp_per_iteration


class BasicScheduler:
    """Schedules a region slice for basic speculative precomputation."""

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = ensure_tracer(tracer)

    def schedule(self, region_slice: RegionSlice,
                 region_uids: Optional[Set[int]] = None) -> ScheduledSlice:
        dg = region_slice.dg
        region = region_slice.region
        if region_uids is None:
            region_uids = {ins.uid for ins in region_slice.body}

        body = list(region_slice.body)
        body_uids = {ins.uid for ins in body}

        excluded: Set[int] = set()
        branch = find_backedge_branch(body, region)
        if branch is not None:
            excluded.add(branch.uid)
            cmp_instr = find_condition_cmp(dg, branch, body_uids)
            if cmp_instr is not None and not any(
                    e.dst in body_uids and e.dst != branch.uid
                    for e in dg.succs(cmp_instr.uid, kinds={FLOW})):
                excluded.add(cmp_instr.uid)

        emit_body = [ins for ins in _emittable(body)
                     if ins.uid not in excluded]
        keep_seeds = set(region_slice.delinquent_uids)
        keep_seeds.update(uid for uid, _ in region_slice.extra_prefetches)
        emit_body = prune_dead_slice_code(dg, emit_body, keep_seeds)
        rotation = best_rotation(dg, emit_body) if region.loop else 0
        emit_body = rotate(emit_body, rotation)
        emit_uids = {ins.uid for ins in emit_body}
        extra = [(dg.instr_of[uid].dest, off)
                 for uid, off in region_slice.extra_prefetches
                 if uid in emit_uids and dg.instr_of[uid].dest]

        if region.loop is not None:
            # Advance chain state first so the thread prefetches the *next*
            # iteration relative to its live-ins.
            critical_uids = critical_subslice(dg, emit_uids)
            first = [i for i in emit_body if i.uid in critical_uids]
            rest = [i for i in emit_body if i.uid not in critical_uids]
            ordered = (list_schedule(dg, first)
                       + list_schedule(dg, rest, placed=critical_uids))
        else:
            ordered = list_schedule(dg, emit_body)

        live_ins = _live_in_registers(ordered, dg.func, [])
        convert = _prefetch_convertible(dg, region_slice.load, emit_uids)

        h_region = region_height(dg, region_uids)
        h_slice = dg.max_height(emit_uids, within=emit_uids)
        per_iter = slack_bsp_per_iteration(h_region, h_slice)
        if faultinject.fires("schedule.negative_slack"):
            per_iter = -abs(per_iter) - 1.0

        self.tracer.counter("scheduler.basic_schedules").add()
        self.tracer.event("schedule", category="scheduling", kind="basic",
                          load_uid=region_slice.load.uid,
                          loop=region.loop is not None,
                          instructions=len(ordered), live_ins=len(live_ins),
                          rotation=rotation, slack_per_iteration=per_iter)

        return ScheduledSlice(
            kind=BASIC,
            region_slice=region_slice,
            critical=[],
            noncritical=ordered,
            live_ins=live_ins,
            spawn_pred=None,
            guard=None,
            prefetch_convert=convert,
            slack_per_iteration=per_iter,
            height_region=h_region,
            height_critical=0,
            height_slice=h_slice,
            available_ilp=dg.available_ilp(emit_uids) if emit_uids else 1.0,
            rotation=rotation,
            extra_prefetches=extra,
        )
