"""Loop rotation for dependence reduction (Section 3.2.1.1).

"Loop rotation reduces loop-carried dependence from the bottom of the slice
in one iteration to the top of the slice in the next iteration.  The
algorithm greedily finds the new loop boundary that converts many backward
loop-carried dependences into true intra-iteration dependences.  The
algorithm enforces the property that [the] new boundary does not introduce
new loop-carried dependences."

We evaluate every candidate boundary ``k`` over the slice body: a carried
flow dependence src -> dst becomes intra-iteration when the rotated
position of src precedes dst's; an existing intra-iteration dependence must
stay intra-iteration.  The best admissible ``k`` (most conversions) wins;
``k = 0`` (no rotation) is always admissible.

Rotation can make the *first* chained thread's prefetches inaccurate (it
starts mid-iteration with loop-entry live-ins) — harmless, since p-slices
carry no correctness obligation.
"""

from __future__ import annotations

from typing import List, Tuple

from ..isa.instructions import Instruction
from ..analysis.depgraph import CONTROL, FLOW, DependenceGraph


def _dependences(dg: DependenceGraph, body: List[Instruction]
                 ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """(carried, intra) dependences as (src_pos, dst_pos) pairs."""
    pos = {ins.uid: i for i, ins in enumerate(body)}
    carried: List[Tuple[int, int]] = []
    intra: List[Tuple[int, int]] = []
    for ins in body:
        for edge in dg.succs(ins.uid, kinds={FLOW, CONTROL}):
            if edge.dst not in pos:
                continue
            pair = (pos[ins.uid], pos[edge.dst])
            if edge.loop_carried:
                carried.append(pair)
            else:
                intra.append(pair)
    return carried, intra


def best_rotation(dg: DependenceGraph, body: List[Instruction]) -> int:
    """The rotation offset ``k`` (0 = unrotated) that converts the most
    carried dependences without breaking any intra-iteration one."""
    n = len(body)
    if n < 2:
        return 0
    carried, intra = _dependences(dg, body)
    if not carried:
        return 0

    best_k, best_score = 0, _score(0, n, carried, intra)
    for k in range(1, n):
        score = _score(k, n, carried, intra)
        if score is not None and (best_score is None or
                                  score > best_score):
            best_k, best_score = k, score
    return best_k


def _score(k: int, n: int, carried, intra):
    """Carried deps converted by rotation ``k``; None if inadmissible."""

    def rotated(p: int) -> int:
        return (p - k) % n

    for src, dst in intra:
        if rotated(src) >= rotated(dst):
            return None  # would introduce a new loop-carried dependence
    converted = sum(1 for src, dst in carried
                    if rotated(src) < rotated(dst))
    return converted


def rotate(body: List[Instruction], k: int) -> List[Instruction]:
    """Apply rotation ``k``: the body now begins at instruction ``k``."""
    if k == 0:
        return list(body)
    return body[k:] + body[:k]
