"""The chaining-SP scheduler (Section 3.2.1).

Produces the do-across prefetching loop of Figure 5(b): the critical
sub-slice (dependence cycles + chain live-in producers) first, then the
spawn point, then the non-critical sub-slice — so that a chained thread
hands the next iteration off *before* it blocks on its own loads.

Pipeline: dependence reduction (loop rotation + spawn-condition
prediction), SCC partitioning, and two-phase list scheduling with the
maximum-cumulative-cost priority.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..isa.instructions import Instruction
from ..analysis.depgraph import FLOW, DependenceGraph
from ..guard import faultinject
from ..obs.tracer import Tracer, ensure_tracer
from ..slicing.regional import RegionSlice
from .listsched import list_schedule
from .partition import critical_subslice
from .prediction import (
    decide_prediction,
    find_backedge_branch,
    find_condition_cmp,
)
from .rotation import best_rotation, rotate
from .schedule import CHAINING, ScheduledSlice
from .slack import region_height, slack_csp_per_iteration


def _emittable(body: List[Instruction]) -> List[Instruction]:
    """Drop control transfers: the emitted slice is straight-line code (a
    chained thread runs one iteration then dies; intra-iteration control
    flow is speculatively if-converted)."""
    return [ins for ins in body
            if not ins.is_branch and ins.op not in ("chk.c", "spawn",
                                                    "kill", "halt", "rfi",
                                                    "nop")
            or ins.op in ("br.call",)]


def _live_in_registers(body: List[Instruction], func,
                       extra_first: List[str]) -> List[str]:
    from ..analysis.dataflow import instruction_defs, instruction_uses
    from ..isa import registers as regs

    defined: Set[str] = set()
    live: List[str] = []
    for reg in extra_first:
        if reg and not reg.startswith("p") and reg != regs.ZERO and \
                reg not in live:
            live.append(reg)
    for instr in body:
        for reg in instruction_uses(instr, func):
            if reg in (regs.ZERO, regs.TRUE_PREDICATE) or \
                    reg.startswith("p"):
                continue
            if reg not in defined and reg not in live:
                live.append(reg)
        for reg in instruction_defs(instr):
            defined.add(reg)
    return live


def prune_dead_slice_code(dg: DependenceGraph, body: List[Instruction],
                          keep_seeds: Set[int]) -> List[Instruction]:
    """Slice-pruning (Section 3.1.2): drop instructions that no longer feed
    anything useful.

    After the spawn condition is predicted away, the computation that only
    fed the exit test (e.g. a BFS queue's tail bookkeeping, bounding-box
    accumulation) is dead inside the p-slice; "speculative slicing prunes
    the slice computation at those nodes that are unlikely to yield
    effective speculative precomputation".  Keeps the backward flow closure
    (intra-iteration and carried, within the body) of ``keep_seeds``.
    """
    body_uids = {ins.uid for ins in body}
    keep: Set[int] = set()
    work = [uid for uid in keep_seeds if uid in body_uids]
    while work:
        uid = work.pop()
        if uid in keep:
            continue
        keep.add(uid)
        for edge in dg.preds(uid, kinds={FLOW}):
            if edge.src in body_uids and edge.src not in keep:
                work.append(edge.src)
    return [ins for ins in body if ins.uid in keep]


def _prefetch_convertible(dg: DependenceGraph, load: Instruction,
                          body_uids: Set[int]) -> bool:
    """True when nothing in the slice consumes the delinquent load's value
    (Figure 4: the load becomes a non-binding prefetch)."""
    for edge in dg.succs(load.uid, kinds={FLOW}):
        if edge.dst in body_uids and edge.dst != load.uid:
            return False
    return True


class ChainingScheduler:
    """Schedules a region slice for chaining speculative precomputation."""

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = ensure_tracer(tracer)

    def schedule(self, region_slice: RegionSlice,
                 region_uids: Optional[Set[int]] = None) -> ScheduledSlice:
        dg = region_slice.dg
        region = region_slice.region
        if region_uids is None:
            region_uids = {ins.uid for ins in region_slice.body}

        body = list(region_slice.body)
        body_uids = {ins.uid for ins in body}

        # -- dependence reduction ------------------------------------------------
        spawn_pred, guard = decide_prediction(dg, body, region)
        branch = find_backedge_branch(body, region)
        excluded: Set[int] = set()
        if branch is not None:
            excluded.add(branch.uid)
            cmp_instr = find_condition_cmp(dg, branch, body_uids)
            if guard is not None and cmp_instr is not None:
                # Prediction breaks the dependences leading to the spawn
                # condition: the cmp is re-evaluated as the next thread's
                # entry guard instead.
                if not any(e.dst in body_uids and e.dst != branch.uid
                           for e in dg.succs(cmp_instr.uid, kinds={FLOW})):
                    excluded.add(cmp_instr.uid)

        emit_body = [ins for ins in _emittable(body)
                     if ins.uid not in excluded]

        # -- slice pruning (dead code after prediction/exclusion) -----------------
        keep_seeds = set(region_slice.delinquent_uids)
        keep_seeds.update(uid for uid, _ in region_slice.extra_prefetches)
        if spawn_pred is not None and branch is not None:
            keeper = find_condition_cmp(dg, branch,
                                        {i.uid for i in body})
            if keeper is not None:
                keep_seeds.add(keeper.uid)
        emit_body = prune_dead_slice_code(dg, emit_body, keep_seeds)

        rotation = best_rotation(dg, emit_body) if region.loop else 0
        emit_body = rotate(emit_body, rotation)
        emit_uids = {ins.uid for ins in emit_body}
        extra = [(dg.instr_of[uid].dest, off)
                 for uid, off in region_slice.extra_prefetches
                 if uid in emit_uids and dg.instr_of[uid].dest]

        # -- guard stability (chain termination) ----------------------------------
        # A predicted condition is re-checked on the *next* thread's
        # live-ins, which only works when every operand is recomputed
        # along the chain.  An operand whose producer was pruned (a BFS
        # queue's tail) goes stale and would kill the chain immediately;
        # fall back to killing on a null chase-load value, checked before
        # the spawn.
        kill_after_uid = None
        if guard is not None:
            defined = {ins.dest for ins in emit_body
                       if ins.dest is not None}
            operands = [guard.reg]
            if guard.other_reg is not None:
                operands.append(guard.other_reg)
            stable = all(op in defined for op in operands)
            if not stable:
                chase = self._chase_load(dg, emit_body, keep_seeds)
                if chase is not None:
                    guard = None
                    kill_after_uid = chase.uid
                else:
                    # No safe termination: revert to an unpredicted,
                    # predicated spawn (condition recomputed in-slice).
                    guard = None
                    branch2 = find_backedge_branch(body, region)
                    if branch2 is not None:
                        cmp2 = find_condition_cmp(
                            dg, branch2, {i.uid for i in body})
                        if cmp2 is not None:
                            spawn_pred = branch2.pred
                            keep_seeds.add(cmp2.uid)
                            emit_body = prune_dead_slice_code(
                                dg, [i for i in _emittable(body)
                                     if i.uid != branch2.uid], keep_seeds)
                            emit_body = rotate(
                                emit_body,
                                best_rotation(dg, emit_body)
                                if region.loop else 0)
                            emit_uids = {i.uid for i in emit_body}

        # -- partitioning --------------------------------------------------------
        critical_uids = critical_subslice(dg, emit_uids)
        if kill_after_uid is not None:
            # The chase load (and what it needs) must precede the spawn so
            # a null result stops the chain before it propagates.
            work = [kill_after_uid]
            while work:
                uid = work.pop()
                if uid in critical_uids or uid not in emit_uids:
                    continue
                critical_uids.add(uid)
                for edge in dg.preds(uid, kinds={FLOW}):
                    if edge.src in emit_uids and not edge.loop_carried:
                        work.append(edge.src)
        if spawn_pred is not None and branch is not None:
            # Unpredicted spawn: the condition must be computed before the
            # spawn point (Figure 5(b): the cmp sits in the A/D/E group).
            cmp_instr = find_condition_cmp(dg, branch, body_uids)
            if cmp_instr is not None and cmp_instr.uid in emit_uids:
                work = [cmp_instr.uid]
                while work:
                    uid = work.pop()
                    if uid in critical_uids:
                        continue
                    critical_uids.add(uid)
                    for edge in dg.preds(uid, kinds={FLOW, "control"}):
                        if edge.src in emit_uids and not edge.loop_carried:
                            work.append(edge.src)
        critical_nodes = [ins for ins in emit_body
                          if ins.uid in critical_uids]
        noncritical_nodes = [ins for ins in emit_body
                             if ins.uid not in critical_uids]

        # -- two-phase list scheduling -------------------------------------------
        critical_order = list_schedule(dg, critical_nodes)
        noncritical_order = list_schedule(dg, noncritical_nodes,
                                          placed=critical_uids)

        # -- live-ins & conversions ----------------------------------------------
        guard_regs: List[str] = []
        if guard is not None:
            guard_regs.append(guard.reg)
            if guard.other_reg is not None:
                guard_regs.append(guard.other_reg)
        elif spawn_pred is not None:
            pass  # the cmp is inside the body; its operands are handled
        ordered = critical_order + noncritical_order
        live_ins = _live_in_registers(ordered, dg.func, guard_regs)

        convert = _prefetch_convertible(dg, region_slice.load, emit_uids)

        # -- slack ----------------------------------------------------------------
        h_region = region_height(dg, region_uids)
        h_critical = dg.max_height(critical_uids, within=critical_uids) \
            if critical_uids else 0
        h_slice = dg.max_height(emit_uids, within=emit_uids)
        per_iter = slack_csp_per_iteration(h_region, h_critical,
                                           len(live_ins))
        if faultinject.fires("schedule.negative_slack"):
            per_iter = -abs(per_iter) - 1.0

        self.tracer.counter("scheduler.chaining_schedules").add()
        if guard is not None:
            self.tracer.counter("scheduler.predicted_spawns").add()
        if kill_after_uid is not None:
            self.tracer.counter("scheduler.chase_kill_fallbacks").add()
        self.tracer.event("schedule", category="scheduling", kind="chaining",
                          load_uid=region_slice.load.uid,
                          critical=len(critical_order),
                          noncritical=len(noncritical_order),
                          live_ins=len(live_ins), rotation=rotation,
                          predicted=guard is not None,
                          slack_per_iteration=per_iter)

        return ScheduledSlice(
            kind=CHAINING,
            region_slice=region_slice,
            critical=critical_order,
            noncritical=noncritical_order,
            live_ins=live_ins,
            spawn_pred=spawn_pred,
            guard=guard,
            prefetch_convert=convert,
            slack_per_iteration=per_iter,
            height_region=h_region,
            height_critical=h_critical,
            height_slice=h_slice,
            available_ilp=dg.available_ilp(emit_uids) if emit_uids else 1.0,
            rotation=rotation,
            extra_prefetches=extra,
            kill_after_uid=kill_after_uid,
        )

    def _chase_load(self, dg: DependenceGraph, emit_body, keep_seeds):
        """The first load whose value feeds the prefetch targets — a null
        result means the traversal ran off its data structure."""
        seed_uids = set(keep_seeds)
        for ins in emit_body:
            if not ins.is_load or ins.dest is None:
                continue
            for edge in dg.succs(ins.uid, kinds={FLOW}):
                if edge.dst in seed_uids and edge.dst != ins.uid:
                    return ins
            if any(ins.dest == dg.instr_of[uid].srcs[0]
                   for uid in seed_uids
                   if uid in dg.instr_of and dg.instr_of[uid].srcs):
                return ins
        return None
