"""P-slice scheduling: chaining and basic SP (Section 3.2)."""

from .schedule import BASIC, CHAINING, GuardCheck, ScheduledSlice
from .partition import critical_subslice, nondegenerate_nodes, slice_sccs
from .rotation import best_rotation, rotate
from .prediction import decide_prediction
from .listsched import list_schedule
from .slack import (
    cumulative_slack,
    reduced_miss_cycles,
    region_height,
    slack_bsp_per_iteration,
    slack_csp_per_iteration,
)
from .chaining import ChainingScheduler
from .basic import BasicScheduler

__all__ = [
    "BASIC", "CHAINING", "GuardCheck", "ScheduledSlice",
    "critical_subslice", "nondegenerate_nodes", "slice_sccs",
    "best_rotation", "rotate", "decide_prediction", "list_schedule",
    "cumulative_slack", "reduced_miss_cycles", "region_height",
    "slack_bsp_per_iteration", "slack_csp_per_iteration",
    "ChainingScheduler", "BasicScheduler",
]
