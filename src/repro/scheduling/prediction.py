"""Spawn-condition prediction (Section 3.2.1.1).

"The second optimization is to use the prediction techniques on some
conditional expressions in the slice. ... The spawn condition becomes
highly predictable. ... The prediction breaks the dependences leading to
the spawn condition after predicting the spawn condition.  After such
removal of dependences, more instructions can be executed after the
spawning point instead of before the point."

Decision rule implemented here: the spawn condition (the slice's back-edge
branch) is predicted *taken* when its computation depends on a load in the
slice body — the pattern of pointer-chasing loops, where the continue test
``next != 0`` serialises behind a cache miss.  Prediction removes the
cmp/branch from the critical sub-slice; termination moves into the *next*
chained thread, which re-checks the real condition on its live-in values
and kills itself (at most one over-spawned thread, whose prefetches are
harmlessly speculative).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..isa.instructions import Instruction
from ..analysis.depgraph import FLOW, DependenceGraph
from ..analysis.regions import Region
from .schedule import GuardCheck

#: relation -> negation, for building the kill guard.
NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "le": "gt",
          "gt": "le", "ge": "lt"}


def find_backedge_branch(body: List[Instruction],
                         region: Region) -> Optional[Instruction]:
    """The slice's loop-continue branch (target = the loop header)."""
    if region.loop is None:
        return None
    for ins in body:
        if ins.op == "br.cond" and ins.target == region.loop.header:
            return ins
    return None


def find_condition_cmp(dg: DependenceGraph, branch: Instruction,
                       body_uids: Set[int]) -> Optional[Instruction]:
    """The cmp producing the branch's qualifying predicate."""
    for edge in dg.preds(branch.uid, kinds={FLOW}):
        src = dg.instr_of[edge.src]
        if src.op == "cmp" and src.dest == branch.pred and \
                src.uid in body_uids:
            return src
    return None


def condition_depends_on_load(dg: DependenceGraph, cmp_instr: Instruction,
                              body_uids: Set[int]) -> bool:
    """Does the condition's backward closure (within the body) hit a load?"""
    seen: Set[int] = set()
    work = [cmp_instr.uid]
    while work:
        uid = work.pop()
        if uid in seen:
            continue
        seen.add(uid)
        if dg.instr_of[uid].is_load and uid != cmp_instr.uid:
            return True
        for edge in dg.preds(uid, kinds={FLOW}):
            if edge.src in body_uids and not edge.loop_carried and \
                    edge.src not in seen:
                work.append(edge.src)
        # Also follow carried edges one step: a condition fed by last
        # iteration's load (cur = ld cur->next; while cur) is the exact
        # case prediction targets.
        for edge in dg.preds(uid, kinds={FLOW}):
            if edge.src in body_uids and edge.loop_carried:
                src = dg.instr_of[edge.src]
                if src.is_load:
                    return True
    return False


def decide_prediction(dg: DependenceGraph, body: List[Instruction],
                      region: Region
                      ) -> Tuple[Optional[str], Optional[GuardCheck]]:
    """Pick spawn-condition handling for a chaining slice.

    Returns ``(spawn_pred, guard)``:

    * ``(pred, None)`` — no prediction: the spawn is qualified by the real
      loop-continue predicate (Figure 5(b) shape).
    * ``(None, guard)`` — predicted: unconditional spawn, with ``guard``
      re-checked at the top of the next thread.
    * ``(None, None)`` — no condition found in the slice: spawn
      unconditionally and rely on downstream kill (degenerate, avoided by
      the region selector).
    """
    branch = find_backedge_branch(body, region)
    if branch is None:
        return None, None
    body_uids = {ins.uid for ins in body}
    cmp_instr = find_condition_cmp(dg, branch, body_uids)
    if cmp_instr is None:
        return None, None

    predict = condition_depends_on_load(dg, cmp_instr, body_uids)
    if not predict:
        return branch.pred, None

    # Build the kill guard: negate the continue condition.  Operands must
    # be expressible on live-in values: a register (carried into the next
    # thread) and optionally an immediate or second register.
    relation = NEGATE[cmp_instr.relation]
    reg = cmp_instr.srcs[0]
    other = cmp_instr.srcs[1] if len(cmp_instr.srcs) > 1 else None
    return None, GuardCheck(relation, reg, other_reg=other,
                            immediate=cmp_instr.imm)
