"""Parallel simulation-run orchestration with a content-addressed cache.

The evaluation harness re-runs the cycle-accurate simulators for many
overlapping (workload, scale, model, variant, config) combinations; this
package turns each combination into a declarative
:class:`~repro.runner.spec.RunSpec`, executes batches of them through a
:class:`~repro.runner.executor.Runner` (process-pool parallel, with retry
and serial fallback), and memoises every result on disk in a
:class:`~repro.runner.cache.ResultCache` keyed by spec content hash and a
source-tree salt.  Experiments, the CLI and the benchmark harness all
route their simulations through here.
"""

from .spec import RunSpec, VARIANTS, freeze_options, freeze_overrides
from .cache import ResultCache, code_version
from .telemetry import RunnerTelemetry
from .executor import Runner, RunnerError, RunResult
from .worker import (
    WorkerTask,
    WorkloadArtifacts,
    artifacts_for,
    clear_artifact_cache,
    config_for,
    execute_spec,
    execute_task,
)

__all__ = [
    "RunSpec", "VARIANTS", "freeze_options", "freeze_overrides",
    "ResultCache", "code_version",
    "RunnerTelemetry",
    "Runner", "RunnerError", "RunResult",
    "WorkerTask", "WorkloadArtifacts", "artifacts_for",
    "clear_artifact_cache", "config_for", "execute_spec", "execute_task",
]
