"""Content-addressed on-disk cache of simulation results.

Layout (default root ``.repro-cache/``, override with ``REPRO_CACHE_DIR``)::

    .repro-cache/
      <code-salt>/                 one generation per source-tree version
        <spec-hash>.json           {"spec": ..., "stats": ..., ...}

The salt is a digest of every ``repro`` source file, so any code change
starts a fresh generation and stale results can never be served; old
generations stay on disk until ``clear(stale_only=True)`` removes them.
Entries store the :meth:`~repro.sim.stats.SimStats.to_dict` snapshot, which
round-trips every statistic the experiments read.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

from ..guard import faultinject
from .spec import RunSpec

#: Suffix bad cache entries are quarantined under (kept for post-mortems,
#: invisible to lookups and occupancy stats).
QUARANTINE_SUFFIX = ".bad"

#: Cache format version; bump to invalidate all generations at once.
CACHE_FORMAT = 1

#: Environment variables honoured by the default cache.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"

DEFAULT_CACHE_DIR = ".repro-cache"


class CacheCounters:
    """Per-backend hit/miss/evict accounting.

    Every cache backend (this local store, and the sharded/tiered
    composites in :mod:`repro.service.backend`) owns one of these; the
    runner exposes the snapshot through
    :meth:`~repro.runner.telemetry.RunnerTelemetry.snapshot` so the
    counters land in metrics documents and ``repro report``.
    """

    FIELDS = ("hits", "misses", "puts", "quarantines", "evictions",
              "promotions")
    __slots__ = FIELDS

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def merge(self, other: "CacheCounters") -> "CacheCounters":
        for field in self.FIELDS:
            setattr(self, field,
                    getattr(self, field) + getattr(other, field))
        return self

    def snapshot(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the ``repro`` package sources (the cache's version salt).

    Hashes file contents, not mtimes, so rebuilding an identical tree
    keeps the cache warm while any real source edit invalidates it.
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256(f"format:{CACHE_FORMAT}".encode())
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        digest.update(rel.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


class ResultCache:
    """Maps :class:`RunSpec` content hashes to serialised ``SimStats``."""

    #: Backend kind tag surfaced in counter snapshots and reports.
    kind = "local"

    def __init__(self, root: Optional[os.PathLike] = None,
                 salt: Optional[str] = None):
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.salt = salt if salt is not None else code_version()
        self.generation_dir = self.root / self.salt
        self.counters = CacheCounters()

    @classmethod
    def from_environment(cls) -> Optional["ResultCache"]:
        """The default cache, or None when ``REPRO_NO_CACHE`` is set."""
        if os.environ.get(ENV_NO_CACHE):
            return None
        return cls()

    def _path(self, spec: RunSpec) -> Path:
        return self.generation_dir / f"{spec.content_hash()}.json"

    # -- lookup / store --------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[Dict]:
        """The stored entry for ``spec`` (current generation), or None.

        A corrupt or truncated entry (interrupted write, disk fault,
        manual edit) is treated as a miss: the bad file is quarantined to
        ``<hash>.json.bad`` for post-mortems and the caller re-simulates.
        Lookups never raise.
        """
        path = self._path(spec)
        self._maybe_inject_corruption(path)
        if path.exists() and faultinject.fires("backend.read.ioerror"):
            # Chaos: a transient read I/O error, served as a miss.  The
            # caller re-simulates (or another worker's entry wins the
            # content-addressed race) — that degradation *is* the
            # recovery, so it is recorded here.
            faultinject.record_recovery("backend.read.ioerror")
            self.counters.misses += 1
            return None
        if not path.exists():
            self.counters.misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError:
            self.counters.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            self._quarantine(path, "undecodable JSON")
            self.counters.misses += 1
            return None
        if not isinstance(entry, dict) or "stats" not in entry:
            self._quarantine(path, "entry missing 'stats'")
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return entry

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a bad entry aside so the next run re-simulates it."""
        bad = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            with self._entry_lock(path):
                os.replace(path, bad)
        except OSError:  # pragma: no cover - racing delete
            return None
        self.counters.quarantines += 1
        # Quarantine is the designed recovery for every torn/corrupt
        # entry; credit whichever corruption site is armed (no-ops
        # otherwise).
        for site in ("backend.put.partial", "cache.corrupt",
                     "cache.truncate"):
            faultinject.record_recovery(site)
        return bad

    def _maybe_inject_corruption(self, path: Path) -> None:
        """Chaos harness: damage an existing entry just before the read."""
        if faultinject.active() is None or not path.exists():
            return
        if faultinject.fires("cache.corrupt"):
            path.write_bytes(b"\x00garbage{not json")
        elif faultinject.fires("cache.truncate"):
            data = path.read_bytes()
            path.write_bytes(data[:len(data) // 2])

    @contextlib.contextmanager
    def _entry_lock(self, path: Path):
        """Advisory per-entry lock serialising concurrent writers.

        Two runners putting the same spec hash each write their own temp
        file, so the rename itself is safe — but without a lock their
        ``os.replace`` calls can interleave with a concurrent quarantine
        of the same path and resurrect a corrupt entry.  The lock file
        lives beside the entry (``<hash>.json.lock``) and is advisory:
        hosts without ``fcntl`` fall back to plain atomic-rename safety.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX hosts
            yield
            return
        lock_path = path.with_name(path.name + ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def put(self, spec: RunSpec, stats_dict: Dict,
            wall_time: float = 0.0,
            metrics: Optional[Dict] = None) -> Path:
        """Store a result crash-safely.

        The entry is written to a private temp file, flushed and
        ``fsync``'d, then atomically renamed over the destination while
        holding the entry's advisory lock — a reader (or a crash at any
        instant) sees either the old complete entry or the new complete
        entry, never a torn one.
        """
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "code_version": self.salt,
            "created": time.time(),
            "wall_time": wall_time,
            "spec": spec.key(),
            "stats": stats_dict,
        }
        if metrics:
            entry["metrics"] = metrics
        if faultinject.fires("backend.put.partial"):
            # Chaos: a torn write lands half an entry at the *final*
            # path (the failure the tmp+fsync+rename discipline exists
            # to prevent).  The next read quarantines it as a miss and
            # the result is re-simulated — detectable, recoverable,
            # never silently served.
            blob = json.dumps(entry, sort_keys=True)
            with self._entry_lock(path):
                path.write_text(blob[:max(1, len(blob) // 2)],
                                encoding="utf-8")
            self.counters.puts += 1
            return path
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        with self._entry_lock(path):
            os.replace(tmp, path)
        self.counters.puts += 1
        return path

    # -- maintenance -----------------------------------------------------------------

    def counters_snapshot(self) -> Dict:
        """JSON-safe hit/miss/evict counters (plus the backend kind)."""
        return {"kind": self.kind, **self.counters.snapshot()}

    def _generations(self):
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.iterdir() if p.is_dir())

    def stats(self) -> Dict:
        """Occupancy summary for the ``cache stats`` CLI subcommand."""
        generations = []
        total_entries = total_bytes = total_quarantined = 0
        for gen in self._generations():
            entries = list(gen.glob("*.json"))
            size = sum(p.stat().st_size for p in entries)
            quarantined = len(list(
                gen.glob("*.json" + QUARANTINE_SUFFIX)))
            generations.append({
                "salt": gen.name,
                "current": gen.name == self.salt,
                "entries": len(entries),
                "bytes": size,
                "quarantined": quarantined,
            })
            total_entries += len(entries)
            total_bytes += size
            total_quarantined += quarantined
        return {
            "root": str(self.root),
            "kind": self.kind,
            "current_salt": self.salt,
            "entries": total_entries,
            "bytes": total_bytes,
            "quarantined": total_quarantined,
            "generations": generations,
        }

    def clear(self, stale_only: bool = False) -> int:
        """Delete cached entries; returns how many files were removed.

        With ``stale_only``, generations whose salt differs from the
        current source tree are removed wholesale, and quarantined
        ``.bad`` entries are reaped from the current generation too —
        they can never be served again, so they count as stale.
        """
        removed = 0
        for gen in self._generations():
            if stale_only and gen.name == self.salt:
                for path in gen.glob("*.json" + QUARANTINE_SUFFIX):
                    path.unlink()
                    removed += 1
                continue
            for pattern in ("*.json", "*.json" + QUARANTINE_SUFFIX):
                for path in gen.glob(pattern):
                    path.unlink()
                    removed += 1
            # Advisory lock files are housekeeping, not cached results:
            # removed silently so the count stays "results deleted".
            for path in gen.glob("*.json.lock"):
                path.unlink()
            try:
                gen.rmdir()
            except OSError:  # pragma: no cover - non-cache files present
                pass
        return removed

    def evict(self, max_bytes: Optional[int] = None,
              max_age: Optional[float] = None,
              now: Optional[float] = None) -> int:
        """Size/age-based GC; returns how many entries were evicted.

        Entries (including quarantined ``.bad`` files) are considered
        oldest-first by mtime across every generation.  An entry goes
        when it is older than ``max_age`` seconds, or while the cache's
        total footprint still exceeds ``max_bytes`` — so the size budget
        sheds the coldest results first.  With neither bound this is a
        no-op, never a full clear.
        """
        if max_bytes is None and max_age is None:
            return 0
        now = time.time() if now is None else now
        entries = []
        total = 0
        for gen in self._generations():
            for pattern in ("*.json", "*.json" + QUARANTINE_SUFFIX):
                for path in gen.glob(pattern):
                    try:
                        st = path.stat()
                    except OSError:  # pragma: no cover - racing delete
                        continue
                    entries.append((st.st_mtime, st.st_size, path))
                    total += st.st_size
        entries.sort(key=lambda item: item[0])
        evicted = 0
        for mtime, size, path in entries:
            stale = max_age is not None and (now - mtime) > max_age
            over = max_bytes is not None and total > max_bytes
            if not stale and not over:
                # Sorted oldest-first: nothing later is stale either,
                # and the size budget is already satisfied.
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing delete
                continue
            entry_name = path.name
            if entry_name.endswith(QUARANTINE_SUFFIX):
                entry_name = entry_name[:-len(QUARANTINE_SUFFIX)]
            lock = path.with_name(entry_name + ".lock")
            if lock.exists():
                lock.unlink()
            total -= size
            evicted += 1
            self.counters.evictions += 1
        for gen in self._generations():
            try:
                gen.rmdir()
            except OSError:
                pass
        return evicted
