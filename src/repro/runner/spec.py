"""Declarative description of one simulation run.

A :class:`RunSpec` names everything a run depends on — workload, scale,
machine model, experiment variant, post-pass tool options, configuration
overrides — as plain data.  Because every build step in this repository is
deterministic (seeded heap layouts, deterministic profiling and adaptation,
cycle-accurate simulation), the spec fully determines the resulting
:class:`~repro.sim.stats.SimStats`; its :meth:`~RunSpec.content_hash` is
therefore a valid content address for the run's result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Simulation variants a spec may name.  ``base`` and the two ``perfect_*``
#: ablations run the original binary without spawning; ``ssp`` runs the
#: tool-adapted binary and ``hand`` the hand-adapted one (Section 4.5).
VARIANTS = ("base", "ssp", "perfect_mem", "perfect_dloads", "hand")

#: Variants that execute a spawning (SSP-enhanced) binary.
_SPAWNING_VARIANTS = ("ssp", "hand")


def freeze_options(options: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise tool options (dataclass, mapping, or None) to a sorted,
    hashable tuple of (field, value) pairs."""
    if options is None:
        return ()
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        options = dataclasses.asdict(options)
    elif not isinstance(options, dict):
        raise TypeError(f"cannot freeze tool options of type "
                        f"{type(options).__name__}")
    return tuple(sorted(options.items()))


def freeze_overrides(overrides: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise config overrides to a sorted, hashable tuple.

    Sequence-valued overrides (e.g. ``perfect_load_uids``) are stored as
    sorted tuples so that set- and list-typed inputs hash identically.
    """
    if not overrides:
        return ()
    if isinstance(overrides, dict):
        overrides = overrides.items()
    frozen = []
    for key, value in overrides:
        if isinstance(value, (set, frozenset, list, tuple)):
            value = tuple(sorted(value))
        frozen.append((key, value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class RunSpec:
    """One simulation run, as content-addressable data."""

    workload: str
    scale: str = "small"
    model: str = "inorder"
    variant: str = "base"
    #: Spawning override; None derives it from the variant (only the
    #: adapted ``ssp``/``hand`` binaries spawn speculative threads).
    spawning: Optional[bool] = None
    #: Frozen :class:`~repro.tool.postpass.ToolOptions` field/value pairs
    #: (build with :func:`freeze_options`); () means the tool defaults.
    tool_options: Tuple[Tuple[str, Any], ...] = ()
    #: :class:`~repro.sim.config.MachineConfig` field replacements applied
    #: on top of the model preset (build with :func:`freeze_overrides`).
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    max_cycles: int = 200_000_000
    #: Sampled-simulation knobs (``repro.sim.sampling``): every
    #: ``sample_interval`` cycles, simulate ``sample_window`` of them in
    #: detail and fast-forward the rest.  0/0 (the default) is full
    #: detail.  Sampled specs hash differently from full-detail specs —
    #: approximate statistics get their own content address.
    sample_interval: int = 0
    sample_window: int = 0

    def __post_init__(self) -> None:
        from ..sim.machine import MODELS
        if self.model not in MODELS:
            raise ValueError(f"unknown model {self.model!r}; expected one "
                             f"of {tuple(MODELS)}")
        if self.variant not in VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}; expected "
                             f"one of {VARIANTS}")
        if self.sample_interval or self.sample_window:
            from ..sim.sampling import validate_sampling
            validate_sampling(self.sample_interval, self.sample_window)

    @classmethod
    def create(cls, workload: str, scale: str = "small",
               model: str = "inorder", variant: str = "base",
               spawning: Optional[bool] = None,
               tool_options: Any = None,
               config_overrides: Any = None,
               max_cycles: int = 200_000_000,
               sample_interval: int = 0,
               sample_window: int = 0) -> "RunSpec":
        """Build a spec from rich inputs (ToolOptions/dicts are frozen)."""
        return cls(workload=workload, scale=scale, model=model,
                   variant=variant, spawning=spawning,
                   tool_options=freeze_options(tool_options),
                   config_overrides=freeze_overrides(config_overrides),
                   max_cycles=max_cycles,
                   sample_interval=sample_interval,
                   sample_window=sample_window)

    def derive(self, **changes: Any) -> "RunSpec":
        """A copy with rich-typed field replacements (options re-frozen).

        This is how the resilience ladder expresses degraded capability:
        the derived spec has its own content hash, so degraded results
        are cached under their own address and can never be mistaken for
        the original run's.
        """
        if "tool_options" in changes:
            changes["tool_options"] = freeze_options(
                changes["tool_options"])
        if "config_overrides" in changes:
            changes["config_overrides"] = freeze_overrides(
                changes["config_overrides"])
        return dataclasses.replace(self, **changes)

    @property
    def effective_spawning(self) -> bool:
        if self.spawning is not None:
            return self.spawning
        return self.variant in _SPAWNING_VARIANTS

    def tool_options_dict(self) -> Optional[Dict[str, Any]]:
        return dict(self.tool_options) if self.tool_options else None

    # -- content addressing ----------------------------------------------------------

    def key(self) -> Dict[str, Any]:
        """Canonical JSON-safe form used for hashing and cache metadata."""
        key = {
            "workload": self.workload,
            "scale": self.scale,
            "model": self.model,
            "variant": self.variant,
            "spawning": self.effective_spawning,
            "tool_options": [list(kv) for kv in self.tool_options],
            "config_overrides": [
                [k, list(v) if isinstance(v, tuple) else v]
                for k, v in self.config_overrides],
            "max_cycles": self.max_cycles,
        }
        # Only sampled specs carry the sampling fields: every full-detail
        # spec's key — and therefore its content hash and every cached
        # result address minted before sampling existed — is unchanged.
        if self.sample_interval:
            key["sample_interval"] = self.sample_interval
            key["sample_window"] = self.sample_window
        return key

    @classmethod
    def from_key(cls, key: Dict[str, Any]) -> "RunSpec":
        """Rebuild a spec from its :meth:`key` dict (JSON round trip).

        The service job queue ships specs between hosts as their
        canonical key form; reconstruction is hash-preserving —
        ``RunSpec.from_key(s.key()).content_hash() == s.content_hash()``
        — because ``key()`` already records the *effective* spawning
        flag and sorted option/override pairs.
        """
        return cls(
            workload=key["workload"],
            scale=key["scale"],
            model=key["model"],
            variant=key["variant"],
            spawning=key["spawning"],
            tool_options=tuple((k, v) for k, v in key["tool_options"]),
            config_overrides=tuple(
                (k, tuple(v) if isinstance(v, list) else v)
                for k, v in key["config_overrides"]),
            max_cycles=key["max_cycles"],
            sample_interval=key.get("sample_interval", 0),
            sample_window=key.get("sample_window", 0),
        )

    def content_hash(self) -> str:
        """Stable hex digest; changes when any result-relevant field does."""
        canonical = json.dumps(self.key(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for telemetry/progress lines."""
        return f"{self.workload}/{self.scale}/{self.model}/{self.variant}"
