"""Run orchestration: cache lookup, parallel execution, retry, fallback.

The :class:`Runner` turns a batch of :class:`~repro.runner.spec.RunSpec`
into :class:`~repro.sim.stats.SimStats`, in this order of preference:

1. the content-addressed :class:`~repro.runner.cache.ResultCache`
   (near-instant, zero simulations);
2. a ``ProcessPoolExecutor`` across ``jobs`` worker processes, with a
   per-run timeout and bounded retry of transient failures;
3. in-process serial execution — both the one-job fast path and the
   graceful fallback when a process pool cannot be used (broken pool,
   unpicklable spec, sandboxed interpreter).

Every successful execution is written back to the cache, and every
outcome is recorded in the attached
:class:`~repro.runner.telemetry.RunnerTelemetry`.  Identical specs in one
batch are coalesced into a single execution.

Results are deterministic: a spec fully determines its statistics, so
serial, parallel and cached executions of the same spec yield identical
``SimStats`` snapshots (asserted by the test suite).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..sim.stats import SimStats
from .cache import ResultCache
from .spec import RunSpec
from .telemetry import RunnerTelemetry
from .worker import execute_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.supervisor import ResilienceConfig
    from ..service.client import ServiceConfig

#: Sentinel meaning "build the default cache from the environment".
_DEFAULT_CACHE = object()

#: Sentinel meaning "enable service mode iff REPRO_SERVICE_ROOT is set".
_DEFAULT_SERVICE = object()


class RunnerError(RuntimeError):
    """A run failed after exhausting its retry budget."""


@dataclass
class RunResult:
    """Outcome of one spec: statistics or an error, plus provenance."""

    spec: RunSpec
    stats: Optional[SimStats] = None
    cached: bool = False
    wall_time: float = 0.0
    attempts: int = 0
    error: Optional[str] = None
    stats_dict: Dict = field(default_factory=dict, repr=False)
    #: Observability metrics attached by the worker (per-delinquent-load
    #: prefetch effectiveness for SSP runs); survives cache hits.
    metrics: Dict = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return self.stats is not None


class Runner:
    """Executes run specs with caching, parallelism and retries."""

    def __init__(self, jobs: int = 1,
                 cache=_DEFAULT_CACHE,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 telemetry: Optional[RunnerTelemetry] = None,
                 task_fn: Callable[[RunSpec], Dict] = execute_spec,
                 resilience: Optional["ResilienceConfig"] = None,
                 service=_DEFAULT_SERVICE):
        """
        Args:
            jobs: worker processes; 1 runs everything in-process.
            cache: a :class:`ResultCache`, None to disable caching, or the
                default — honours ``REPRO_CACHE_DIR``/``REPRO_NO_CACHE``.
            timeout: per-run seconds before a parallel run is abandoned
                and retried serially (serial runs rely on the simulator's
                own ``max_cycles`` runaway guard instead).
            retries: extra attempts after a failed one.
            telemetry: shared counters; a fresh instance by default.
            task_fn: the unit of work (overridable for tests); must be a
                picklable module-level callable for parallel execution.
            resilience: when given, cache misses execute under the
                :class:`~repro.resilience.supervisor.Supervisor`
                (heartbeat watchdog, checkpoint/resume, circuit breaker,
                degradation ladder) instead of the plain pool.
            service: a :class:`~repro.service.client.ServiceConfig`, a
                service root path, None to force standalone mode, or the
                default — honours ``REPRO_SERVICE_ROOT``.  With a
                service configured the runner keeps its synchronous
                interface but becomes a submit+wait client of the
                shared queue/backend: cache misses are enqueued, an
                inline worker drains them (alongside any external
                ``repro service worker`` processes), and results
                another worker paid for count as dedupe hits.
        """
        self.jobs = max(1, int(jobs))
        self.service = self._resolve_service(service)
        if cache is _DEFAULT_CACHE and self.service is not None:
            # In service mode the shared backend IS the cache: lookups,
            # write-backs and dedupe all go through the same store.
            cache = self.service.make_backend()
        self.cache: Optional[ResultCache] = (
            ResultCache.from_environment() if cache is _DEFAULT_CACHE
            else cache)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.telemetry = telemetry or RunnerTelemetry()
        self.task_fn = task_fn
        self.resilience = resilience
        self._service_client = None

    @staticmethod
    def _resolve_service(service) -> Optional["ServiceConfig"]:
        if service is None:
            return None
        # Lazy: repro.service imports runner modules at load time; a
        # top-level import here would close the cycle.
        from ..service.client import ServiceConfig
        if service is _DEFAULT_SERVICE:
            return ServiceConfig.from_environment()
        if isinstance(service, ServiceConfig):
            return service
        return ServiceConfig.resolve(service)

    # -- public API ------------------------------------------------------------------

    def run_one(self, spec: RunSpec) -> RunResult:
        return self.run([spec])[0]

    def stats(self, spec: RunSpec) -> SimStats:
        """Statistics for one spec; raises :class:`RunnerError` on failure."""
        result = self.run_one(spec)
        if not result.ok:
            raise RunnerError(
                f"{spec.label()} failed after {result.attempts} "
                f"attempt(s): {result.error}")
        return result.stats

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute a batch; the result list parallels the input order."""
        specs = list(specs)
        by_hash: Dict[str, RunResult] = {}
        order: List[str] = []
        pending: List[RunSpec] = []
        for spec in specs:
            digest = spec.content_hash()
            order.append(digest)
            if digest in by_hash:
                continue
            cached = self._lookup(spec, digest)
            if cached is not None:
                by_hash[digest] = cached
            else:
                by_hash[digest] = RunResult(spec)
                pending.append(spec)
        if pending:
            if self.service is not None:
                executed = self._run_service(pending)
            elif self.resilience is not None:
                executed = self._run_supervised(pending)
            elif self.jobs > 1 and len(pending) > 1:
                executed = self._run_parallel(pending)
            else:
                executed = [self._run_serial(spec) for spec in pending]
            for result in executed:
                by_hash[result.spec.content_hash()] = result
        if self.cache is not None and hasattr(self.cache,
                                              "counters_snapshot"):
            self.telemetry.record_backend_stats(
                self.cache.counters_snapshot(),
                backend_id=f"{type(self.cache).__name__}:{id(self.cache)}")
        return [by_hash[digest] for digest in order]

    # -- cache -----------------------------------------------------------------------

    def _lookup(self, spec: RunSpec, digest: str) -> Optional[RunResult]:
        if self.cache is None:
            return None
        entry = self.cache.get(spec)
        if entry is None:
            return None
        wall = entry.get("wall_time", 0.0)
        self.telemetry.record_cache_hit(spec.label(), wall, digest)
        return RunResult(spec, stats=SimStats.from_dict(entry["stats"]),
                         cached=True, wall_time=wall,
                         stats_dict=entry["stats"],
                         metrics=entry.get("metrics") or {})

    def _complete(self, spec: RunSpec, payload: Dict,
                  attempts: int) -> RunResult:
        wall = payload.get("wall_time", 0.0)
        metrics = payload.get("metrics") or {}
        if self.cache is not None:
            self.cache.put(spec, payload["stats"], wall, metrics=metrics)
        self.telemetry.record_complete(spec.label(), wall, attempts,
                                       spec.content_hash())
        return RunResult(spec, stats=SimStats.from_dict(payload["stats"]),
                         wall_time=wall, attempts=attempts,
                         stats_dict=payload["stats"], metrics=metrics)

    def _fail(self, spec: RunSpec, error: BaseException,
              attempts: int) -> RunResult:
        message = f"{type(error).__name__}: {error}"
        self.telemetry.record_failure(spec.label(), message, attempts)
        return RunResult(spec, attempts=attempts, error=message)

    # -- serial execution ------------------------------------------------------------

    def _run_serial(self, spec: RunSpec, first_attempt: int = 1
                    ) -> RunResult:
        last_error: Optional[BaseException] = None
        attempt = first_attempt
        while attempt <= self.retries + 1:
            self.telemetry.record_launch(spec.label())
            try:
                payload = self.task_fn(spec)
            except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                last_error = exc
                attempt += 1
                continue
            return self._complete(spec, payload, attempt)
        return self._fail(spec, last_error, attempt - 1)

    # -- parallel execution ----------------------------------------------------------

    def _run_parallel(self, specs: List[RunSpec]) -> List[RunResult]:
        """Fan out over a process pool; degrade to serial on pool trouble.

        Timed-out or crashed runs are retried serially in-process (one
        pool attempt counts against the retry budget), so a flaky pool
        can slow a batch down but not fail it.
        """
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(specs)))
        except (OSError, ValueError):  # pragma: no cover - depends on host
            return [self._run_serial(spec) for spec in specs]
        results: List[RunResult] = []
        abandoned = False
        pool_broken = False
        futures = []
        for spec in specs:
            self.telemetry.record_launch(spec.label())
            try:
                futures.append(pool.submit(self.task_fn, spec))
            except Exception:  # pragma: no cover - submit-time break
                futures.append(None)
        for spec, future in zip(specs, futures):
            if future is None or pool_broken:
                results.append(self._run_serial(spec))
                continue
            try:
                payload = future.result(timeout=self.timeout)
            except concurrent.futures.TimeoutError:
                future.cancel()
                abandoned = True
                results.append(self._retry_after_pool(
                    spec, TimeoutError(
                        f"no result within {self.timeout}s")))
            except concurrent.futures.process.BrokenProcessPool as exc:
                pool_broken = True
                results.append(self._retry_after_pool(spec, exc))
            except Exception as exc:  # noqa: BLE001 - worker raised
                results.append(self._retry_after_pool(spec, exc))
            else:
                results.append(self._complete(spec, payload, 1))
        # Don't block on workers still chewing abandoned runs: a plain
        # (wait=True) shutdown would join a timed-out simulation.
        pool.shutdown(wait=not (abandoned or pool_broken),
                      cancel_futures=True)
        return results

    def _retry_after_pool(self, spec: RunSpec,
                          error: BaseException) -> RunResult:
        if self.retries < 1:
            return self._fail(spec, error, 1)
        result = self._run_serial(spec, first_attempt=2)
        return result

    # -- service execution -----------------------------------------------------------

    def _run_service(self, specs: List[RunSpec]) -> List[RunResult]:
        """Submit cache misses to the shared queue and drain them with
        an inline worker: the synchronous interface over the service."""
        from ..service.client import ServiceClient

        if self._service_client is None:
            self._service_client = ServiceClient(backend=self.cache,
                                                 config=self.service)
        return self._service_client.run_batch(
            specs, telemetry=self.telemetry, task_fn=self.task_fn)

    # -- supervised execution --------------------------------------------------------

    def _run_supervised(self, specs: List[RunSpec]) -> List[RunResult]:
        """Execute under the resilience supervisor (watchdog, checkpoints,
        circuit breaker, degradation ladder).

        A degraded run's payload is cached under the **degraded** spec's
        own content hash — never the original's — so a later request for
        the full-capability spec is an honest cache miss.
        """
        # Lazy: repro.resilience imports runner modules at load time; a
        # top-level import here would close the cycle.
        from ..resilience.supervisor import Supervisor
        from .worker import WorkerTask, execute_task

        cfg = self.resilience

        def make_task(spec, attempt, heartbeat_path, resume,
                      hang_seconds):
            return WorkerTask(spec=spec, attempt=attempt,
                              heartbeat_path=heartbeat_path,
                              checkpoint_every=cfg.checkpoint_every,
                              resume=resume, deadline=cfg.deadline,
                              rss_budget_mb=cfg.rss_budget_mb,
                              hang_seconds=hang_seconds,
                              sync_faults=True)

        supervisor = Supervisor(cfg, task_fn=execute_task,
                                make_task=make_task, jobs=self.jobs,
                                telemetry=self.telemetry)
        results = []
        for outcome in supervisor.run(specs):
            meta: Dict = {
                "ladder_step": outcome.ladder_step,
                "watchdog_kills": outcome.watchdog_kills,
                "serial": outcome.serial,
                "skipped": outcome.skipped,
            }
            if outcome.reasons:
                meta["reasons"] = list(outcome.reasons)
            if outcome.executed_spec is not outcome.spec:
                meta["executed_spec"] = outcome.executed_spec.key()
            if outcome.payload is None:
                error = outcome.error or "skipped by supervisor"
                self.telemetry.record_failure(outcome.spec.label(),
                                              error, outcome.attempts)
                results.append(RunResult(
                    outcome.spec, attempts=outcome.attempts, error=error,
                    metrics={"resilience": meta}))
                continue
            payload = outcome.payload
            meta.update(payload.get("resilience") or {})
            wall = payload.get("wall_time", 0.0)
            metrics = dict(payload.get("metrics") or {})
            metrics["resilience"] = meta
            if self.cache is not None:
                self.cache.put(outcome.executed_spec, payload["stats"],
                               wall, metrics=metrics)
            self.telemetry.record_complete(
                outcome.spec.label(), wall, outcome.attempts,
                outcome.spec.content_hash())
            results.append(RunResult(
                outcome.spec,
                stats=SimStats.from_dict(payload["stats"]),
                wall_time=wall, attempts=outcome.attempts,
                stats_dict=payload["stats"], metrics=metrics))
        return results
