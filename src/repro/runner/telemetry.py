"""Progress and outcome accounting for runner executions.

One :class:`RunnerTelemetry` instance accumulates across every
``Runner.run`` call that shares it, so an experiment harness can report a
whole session: how many simulations were launched vs. served from cache,
the cache hit rate, retries, failures, and wall time both simulated and
saved.  ``progress`` hooks let a CLI print per-run lines as they land.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class RunnerTelemetry:
    """Counters + per-run records for a sequence of runner executions."""

    def __init__(self,
                 progress: Optional[Callable[[str], None]] = None):
        #: Optional callback receiving one human-readable line per event.
        self.progress = progress
        self.launched = 0          # simulations actually executed
        self.cache_hits = 0        # results served from the on-disk cache
        self.memo_hits = 0         # results served from in-memory memos
        self.dedupe_hits = 0       # results another service worker paid for
        self.failures = 0          # runs that exhausted their retries
        self.retries = 0           # extra attempts after a failed one
        self.sim_wall_time = 0.0   # seconds spent inside simulations
        self.saved_wall_time = 0.0  # recorded cost of runs served cached
        # Resilience accounting (supervised execution only).
        self.watchdog_kills = 0    # hung workers killed by the watchdog
        self.circuit_trips = 0     # specs forced from parallel to serial
        self.degraded_runs = 0     # ladder descents (re-adapted down)
        self.skips = 0             # specs skipped with a diagnostic
        self.resumes = 0           # runs resumed from a checkpoint
        self.checkpoints = 0       # checkpoint files written
        #: Latest counter snapshot per cache backend the session touched,
        #: keyed by backend identity (see :meth:`record_backend_stats`).
        self._backend_stats: Dict[str, Dict] = {}
        self.records: List[Dict] = []

    # -- event sinks -----------------------------------------------------------------

    def _emit(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def record_launch(self, label: str) -> None:
        self.launched += 1
        self._emit(f"run  {label}")

    def record_complete(self, label: str, wall_time: float,
                        attempts: int, spec_hash: str) -> None:
        self.sim_wall_time += wall_time
        if attempts > 1:
            self.retries += attempts - 1
        self.records.append({"spec": spec_hash, "label": label,
                             "cached": False, "wall_time": wall_time,
                             "attempts": attempts})
        self._emit(f"done {label} ({wall_time:.2f}s"
                   + (f", attempt {attempts}" if attempts > 1 else "")
                   + ")")

    def record_cache_hit(self, label: str, saved_wall_time: float,
                         spec_hash: str) -> None:
        self.cache_hits += 1
        self.saved_wall_time += saved_wall_time
        self.records.append({"spec": spec_hash, "label": label,
                             "cached": True,
                             "wall_time": saved_wall_time, "attempts": 0})
        self._emit(f"hit  {label} (saved {saved_wall_time:.2f}s)")

    def record_memo_hit(self, label: str) -> None:
        self.memo_hits += 1

    def record_dedupe(self, label: str, spec_hash: str) -> None:
        """A service batch result some *other* worker simulated: from
        this client's point of view it is a cache hit it never had to
        schedule — counted separately so the exactly-one-simulation
        property of the service is visible in reports."""
        self.dedupe_hits += 1
        self.records.append({"spec": spec_hash, "label": label,
                             "cached": True, "deduped": True,
                             "wall_time": 0.0, "attempts": 0})
        self._emit(f"dupe {label} (completed by another worker)")

    def record_backend_stats(self, stats: Optional[Dict],
                             backend_id: Optional[str] = None) -> None:
        """Attach a backend counter snapshot.

        A backend's own counters are cumulative, so repeated snapshots
        from the *same* backend replace each other — but a telemetry
        instance shared across several ``Runner``s (or a runner whose
        cache was swapped between batches) sees more than one backend.
        Snapshots are therefore keyed by ``backend_id`` and *summed*
        across backends in :attr:`backend_stats`, so a session summary
        never silently reports only the last batch's backend activity.
        """
        if stats is not None:
            self._backend_stats[backend_id or "default"] = dict(stats)

    @property
    def backend_stats(self) -> Optional[Dict]:
        """Counters merged across every backend seen this session."""
        snapshots = list(self._backend_stats.values())
        if not snapshots:
            return None
        if len(snapshots) == 1:
            return dict(snapshots[0])
        merged: Dict = {}
        for snap in snapshots:
            for key, value in snap.items():
                if isinstance(value, bool) or not isinstance(value,
                                                             (int, float)):
                    if key in merged and merged[key] != value:
                        merged[key] = "mixed"
                    else:
                        merged.setdefault(key, value)
                else:
                    merged[key] = merged.get(key, 0) + value
        merged["backends"] = len(snapshots)
        return merged

    def record_failure(self, label: str, error: str,
                       attempts: int) -> None:
        self.failures += 1
        if attempts > 1:
            self.retries += attempts - 1
        self._emit(f"FAIL {label} after {attempts} attempt(s): {error}")

    # -- resilience events -----------------------------------------------------------

    def record_watchdog_kill(self, label: str, reason: str) -> None:
        self.watchdog_kills += 1
        self._emit(f"kill {label} ({reason})")

    def record_circuit_trip(self, label: str) -> None:
        self.circuit_trips += 1
        self._emit(f"trip {label} -> serial execution")

    def record_degraded(self, label: str, step: str, kind: str) -> None:
        self.degraded_runs += 1
        self._emit(f"down {label} -> {step} (after {kind})")

    def record_skip(self, label: str, reason: str) -> None:
        self.skips += 1
        self._emit(f"skip {label}: {reason}")

    def record_resume(self, label: str, cycle: int) -> None:
        self.resumes += 1
        self._emit(f"res  {label} from checkpoint at cycle {cycle}")

    def record_checkpoints(self, count: int) -> None:
        self.checkpoints += count

    # -- reporting -------------------------------------------------------------------

    @property
    def total_requests(self) -> int:
        return (self.launched + self.cache_hits + self.dedupe_hits
                + self.failures)

    @property
    def hit_rate(self) -> float:
        total = self.total_requests
        return (self.cache_hits + self.dedupe_hits) / total if total \
            else 0.0

    def snapshot(self) -> Dict:
        return {
            "launched": self.launched,
            "cache_hits": self.cache_hits,
            "memo_hits": self.memo_hits,
            "dedupe_hits": self.dedupe_hits,
            "failures": self.failures,
            "retries": self.retries,
            "hit_rate": self.hit_rate,
            "sim_wall_time": self.sim_wall_time,
            "saved_wall_time": self.saved_wall_time,
            "resilience": {
                "watchdog_kills": self.watchdog_kills,
                "circuit_trips": self.circuit_trips,
                "degraded_runs": self.degraded_runs,
                "skips": self.skips,
                "resumes": self.resumes,
                "checkpoints": self.checkpoints,
            },
            "cache_backend": self.backend_stats,
        }

    def to_dict(self) -> Dict:
        """Machine-readable session summary (``--telemetry-json``)."""
        return {"summary": self.snapshot(), "records": list(self.records)}

    def summary(self) -> str:
        parts = [
            f"runs: {self.launched} simulated, {self.cache_hits} cached "
            f"({100 * self.hit_rate:.0f}% hit rate)",
            f"sim wall time: {self.sim_wall_time:.2f}s "
            f"(saved {self.saved_wall_time:.2f}s)",
        ]
        if self.dedupe_hits:
            parts.append(f"deduped: {self.dedupe_hits} completed by "
                         f"other workers")
        if self.retries:
            parts.append(f"retries: {self.retries}")
        if self.resumes or self.checkpoints:
            parts.append(f"checkpoints: {self.checkpoints} written, "
                         f"{self.resumes} resumed")
        if self.watchdog_kills or self.circuit_trips or self.degraded_runs:
            parts.append(f"resilience: {self.watchdog_kills} watchdog "
                         f"kill(s), {self.circuit_trips} breaker trip(s), "
                         f"{self.degraded_runs} degraded")
        if self.skips:
            parts.append(f"skips: {self.skips}")
        if self.failures:
            parts.append(f"FAILURES: {self.failures}")
        return "; ".join(parts)
