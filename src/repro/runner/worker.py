"""Spec execution: build artifacts, simulate, serialise the result.

:func:`execute_spec` is the unit of work the runner schedules.  It is a
module-level function of one picklable argument so it can cross a
``ProcessPoolExecutor`` boundary, and it rebuilds everything it needs from
the spec alone — which is what makes parallel execution (and cache misses
in a fresh process) self-contained.

Expensive intermediate artifacts (profile, tool adaptation, hand binary)
are memoised per process and per (workload, scale, tool options), so the
many specs of one experiment share one profiling run and one adaptation
within each worker.  Under the default ``fork`` start method the pool's
workers even inherit artifacts already built by the parent.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Optional, Tuple

from ..guard import faultinject
from ..obs.tracer import NULL_TRACER
from ..profiling.collect import collect_profile
from ..profiling.profile import ProgramProfile
from ..sim.config import MachineConfig
from ..sim.machine import make_config, simulate
from ..tool.postpass import SSPPostPassTool, ToolOptions, ToolResult
from ..workloads import make_workload
from .spec import RunSpec

#: Variants whose run must leave the workload's expected output in the
#: heap (the ``perfect_*`` ablations alter memory behaviour, not results,
#: but are excluded to mirror the historical experiment harness).
_CHECKED_VARIANTS = ("base", "ssp")


class WorkloadArtifacts:
    """Lazily-built products for one (workload, scale, tool options)."""

    def __init__(self, name: str, scale: str,
                 tool_options: Optional[Dict[str, Any]] = None):
        self.name = name
        self.scale = scale
        self.tool_options = (ToolOptions(**tool_options)
                             if tool_options else None)
        self.workload = make_workload(name, scale)
        self.program = self.workload.build_program()
        #: Observability sink for the expensive builds below; callers that
        #: want spans (the CLI's ``--trace``) set this before the first
        #: access to :attr:`profile` / :attr:`tool_result`.
        self.tracer = NULL_TRACER
        self._profile: Optional[ProgramProfile] = None
        self._tool_result: Optional[ToolResult] = None
        self._hand_workload = None

    @property
    def profile(self) -> ProgramProfile:
        if self._profile is None:
            with self.tracer.span("collect_profile",
                                  category="profiling") as sp:
                self._profile = collect_profile(self.program,
                                                self.workload.build_heap)
                sp.set(baseline_cycles=self._profile.baseline_cycles,
                       total_miss_cycles=self._profile.total_miss_cycles())
        return self._profile

    @property
    def tool_result(self) -> ToolResult:
        if self._tool_result is None:
            tool = SSPPostPassTool(self.tool_options, tracer=self.tracer)
            # The heap factory enables the differential verify stage
            # (semantic-equivalence rollback) inside the tool.
            self._tool_result = tool.adapt(
                self.program, self.profile,
                heap_factory=self.workload.build_heap)
        return self._tool_result

    @property
    def delinquent_uids(self):
        return self.tool_result.delinquent_uids

    @property
    def hand_workload(self):
        if self._hand_workload is None:
            self._hand_workload = make_workload(self.name + ".hand",
                                                self.scale)
        return self._hand_workload

    # -- per-variant run inputs ------------------------------------------------------

    def run_inputs(self, variant: str):
        """(program, heap-building workload) for one variant."""
        if variant == "ssp":
            result = self.tool_result
            if result.adapted is None:
                # Adaptation degraded to a no-op (guard drops/rollback):
                # run the unadapted binary — never worse than no
                # adaptation, never an exception.
                return self.program, self.workload
            return result.adapted.program, self.workload
        if variant == "hand":
            return self.hand_workload.build_program(), self.hand_workload
        return self.program, self.workload


#: Per-process artifact memo: (workload, scale, frozen options) -> built.
_ARTIFACTS: Dict[Tuple, WorkloadArtifacts] = {}


def artifacts_for(spec: RunSpec) -> WorkloadArtifacts:
    key = (spec.workload, spec.scale, spec.tool_options)
    artifacts = _ARTIFACTS.get(key)
    if artifacts is None:
        artifacts = _ARTIFACTS[key] = WorkloadArtifacts(
            spec.workload, spec.scale, spec.tool_options_dict())
    return artifacts


def clear_artifact_cache() -> None:
    """Drop memoised artifacts (tests; long-lived worker hygiene)."""
    _ARTIFACTS.clear()


def config_for(spec: RunSpec,
               artifacts: Optional[WorkloadArtifacts] = None
               ) -> MachineConfig:
    """The machine configuration a spec resolves to."""
    config = make_config(spec.model)
    if spec.variant == "perfect_mem":
        config = config.with_perfect_memory()
    elif spec.variant == "perfect_dloads":
        artifacts = artifacts or artifacts_for(spec)
        config = config.with_perfect_loads(artifacts.delinquent_uids)
    if spec.config_overrides:
        overrides = {}
        for key, value in spec.config_overrides:
            if key == "perfect_load_uids":
                value = frozenset(value)
            overrides[key] = value
        config = dataclasses.replace(config, **overrides)
    return config


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one spec to completion; returns ``{"stats": ..., "wall_time"}``.

    The stats value is the JSON-safe :meth:`SimStats.to_dict` form (not the
    object) so the same payload crosses process boundaries and lands in
    the result cache without re-serialisation.
    """
    started = time.perf_counter()
    # Chaos sites: a worker that dies before doing any work, and a worker
    # that hangs long enough to surface as a timeout.  Both propagate to
    # the runner, which records the failure on the RunResult and moves on.
    faultinject.check("runner.worker_crash")
    if faultinject.fires("runner.worker_timeout"):
        time.sleep(0.05)
        raise TimeoutError("injected fault at site 'runner.worker_timeout'")
    artifacts = artifacts_for(spec)
    program, heap_workload = artifacts.run_inputs(spec.variant)
    heap = heap_workload.build_heap()
    stats = simulate(program, heap, spec.model,
                     config=config_for(spec, artifacts),
                     spawning=spec.effective_spawning,
                     max_cycles=spec.max_cycles)
    if spec.variant in _CHECKED_VARIANTS:
        heap_workload.check_output(heap)
    payload = {
        "stats": stats.to_dict(),
        "wall_time": time.perf_counter() - started,
    }
    if spec.variant == "ssp":
        # Attach the per-delinquent-load prefetch effectiveness so a later
        # cache hit can still report coverage/accuracy/timeliness without
        # re-simulating.  Keys are strings to survive the JSON round trip.
        payload["metrics"] = {
            "delinquent_uids": list(artifacts.delinquent_uids),
            "prefetch": {
                str(uid): row for uid, row in stats.prefetch_metrics(
                    artifacts.delinquent_uids).items()},
        }
    return payload
