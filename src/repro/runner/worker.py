"""Spec execution: build artifacts, simulate, serialise the result.

:func:`execute_spec` is the unit of work the runner schedules.  It is a
module-level function of one picklable argument so it can cross a
``ProcessPoolExecutor`` boundary, and it rebuilds everything it needs from
the spec alone — which is what makes parallel execution (and cache misses
in a fresh process) self-contained.

:func:`execute_task` is the supervised flavour: a :class:`WorkerTask`
adds the resilience contract — heartbeats for the watchdog, periodic
checkpoints, resume-from-checkpoint, and wall-clock/RSS budgets enforced
at checkpoint boundaries.  ``execute_spec`` is ``execute_task`` with
everything switched off, so both paths share one execution core.

Expensive intermediate artifacts (profile, tool adaptation, hand binary)
are memoised per process and per (workload, scale, tool options), so the
many specs of one experiment share one profiling run and one adaptation
within each worker.  Under the default ``fork`` start method the pool's
workers even inherit artifacts already built by the parent.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..guard import faultinject
from ..guard.errors import CheckpointError, ResourceBudgetError
from ..obs.tracer import NULL_TRACER
from ..profiling.collect import collect_profile
from ..profiling.profile import ProgramProfile
from ..resilience.checkpoint import CheckpointStore
from ..resilience.heartbeat import Heartbeat
from ..sim.config import MachineConfig
from ..sim.machine import make_config, make_simulator
from ..tool.postpass import SSPPostPassTool, ToolOptions, ToolResult
from ..workloads import make_workload
from .spec import RunSpec

#: Variants whose run must leave the workload's expected output in the
#: heap (the ``perfect_*`` ablations alter memory behaviour, not results,
#: but are excluded to mirror the historical experiment harness).
_CHECKED_VARIANTS = ("base", "ssp")


class WorkloadArtifacts:
    """Lazily-built products for one (workload, scale, tool options)."""

    def __init__(self, name: str, scale: str,
                 tool_options: Optional[Dict[str, Any]] = None):
        self.name = name
        self.scale = scale
        self.tool_options = (ToolOptions(**tool_options)
                             if tool_options else None)
        self.workload = make_workload(name, scale)
        self.program = self.workload.build_program()
        #: Observability sink for the expensive builds below; callers that
        #: want spans (the CLI's ``--trace``) set this before the first
        #: access to :attr:`profile` / :attr:`tool_result`.
        self.tracer = NULL_TRACER
        self._profile: Optional[ProgramProfile] = None
        self._tool_result: Optional[ToolResult] = None
        self._hand_workload = None

    @property
    def profile(self) -> ProgramProfile:
        if self._profile is None:
            with self.tracer.span("collect_profile",
                                  category="profiling") as sp:
                self._profile = collect_profile(self.program,
                                                self.workload.build_heap)
                sp.set(baseline_cycles=self._profile.baseline_cycles,
                       total_miss_cycles=self._profile.total_miss_cycles())
        return self._profile

    @property
    def tool_result(self) -> ToolResult:
        if self._tool_result is None:
            tool = SSPPostPassTool(self.tool_options, tracer=self.tracer)
            # The heap factory enables the differential verify stage
            # (semantic-equivalence rollback) inside the tool.
            self._tool_result = tool.adapt(
                self.program, self.profile,
                heap_factory=self.workload.build_heap)
        return self._tool_result

    @property
    def delinquent_uids(self):
        return self.tool_result.delinquent_uids

    @property
    def hand_workload(self):
        if self._hand_workload is None:
            self._hand_workload = make_workload(self.name + ".hand",
                                                self.scale)
        return self._hand_workload

    # -- per-variant run inputs ------------------------------------------------------

    def run_inputs(self, variant: str):
        """(program, heap-building workload) for one variant."""
        if variant == "ssp":
            result = self.tool_result
            if result.adapted is None:
                # Adaptation degraded to a no-op (guard drops/rollback):
                # run the unadapted binary — never worse than no
                # adaptation, never an exception.
                return self.program, self.workload
            return result.adapted.program, self.workload
        if variant == "hand":
            return self.hand_workload.build_program(), self.hand_workload
        return self.program, self.workload


#: Per-process artifact memo: (workload, scale, frozen options) -> built.
_ARTIFACTS: Dict[Tuple, WorkloadArtifacts] = {}


def artifacts_for(spec: RunSpec) -> WorkloadArtifacts:
    key = (spec.workload, spec.scale, spec.tool_options)
    artifacts = _ARTIFACTS.get(key)
    if artifacts is None:
        artifacts = _ARTIFACTS[key] = WorkloadArtifacts(
            spec.workload, spec.scale, spec.tool_options_dict())
    return artifacts


def clear_artifact_cache() -> None:
    """Drop memoised artifacts (tests; long-lived worker hygiene)."""
    _ARTIFACTS.clear()


def config_for(spec: RunSpec,
               artifacts: Optional[WorkloadArtifacts] = None
               ) -> MachineConfig:
    """The machine configuration a spec resolves to."""
    config = make_config(spec.model)
    if spec.variant == "perfect_mem":
        config = config.with_perfect_memory()
    elif spec.variant == "perfect_dloads":
        artifacts = artifacts or artifacts_for(spec)
        config = config.with_perfect_loads(artifacts.delinquent_uids)
    if spec.config_overrides:
        overrides = {}
        for key, value in spec.config_overrides:
            if key == "perfect_load_uids":
                value = frozenset(value)
            overrides[key] = value
        config = dataclasses.replace(config, **overrides)
    return config


@dataclass
class WorkerTask:
    """One supervised execution attempt, as picklable data.

    The plain ``execute_spec`` path is ``WorkerTask(spec)`` with every
    resilience feature off; the supervisor fills in the rest per attempt.
    """

    spec: RunSpec
    attempt: int = 1
    #: Heartbeat file this attempt keeps fresh (None = no heartbeats).
    heartbeat_path: Optional[str] = None
    #: Write a checkpoint every N simulated cycles (None = never).
    checkpoint_every: Optional[int] = None
    #: Root directory for checkpoints (None = the default
    #: ``REPRO_CHECKPOINT_DIR`` / ``.repro-cache/checkpoints``).  The
    #: service plane points this at ``<service-root>/checkpoints`` so a
    #: lease stolen by a worker on another host finds the victim's
    #: checkpoints over the shared filesystem.
    checkpoint_root: Optional[str] = None
    #: Start from the newest intact on-disk checkpoint, if any.
    resume: bool = False
    #: Soft wall-clock budget (seconds), checked at checkpoint cadence.
    deadline: Optional[float] = None
    #: Peak-RSS budget (MiB), checked at checkpoint cadence.
    rss_budget_mb: Optional[float] = None
    #: How long a fired ``worker.hang`` site sleeps.  >0 simulates a
    #: real hang for the watchdog to kill; 0 raises immediately (serial
    #: mode — there is no watchdog and a sleep would block the caller).
    hang_seconds: float = 0.0
    #: Align ``times``-bounded fault plans with the attempt number (set
    #: by the supervisor; see :func:`faultinject.sync_fired`).
    sync_faults: bool = False


#: Cycle cadence for heartbeats/budget checks when the task wants them
#: but checkpointing is off.
_PROGRESS_CADENCE = 50_000

#: Sites whose fired-counts follow the attempt number across the fork
#: boundary (a child's increments never reach the parent).
_WORKER_SITES = ("worker.hang", "worker.oom",
                 "runner.worker_crash", "runner.worker_timeout")


def _peak_rss_mb() -> Optional[float]:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    # Linux reports ru_maxrss in KiB.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def execute_task(task: WorkerTask) -> Dict[str, Any]:
    """Run one (possibly supervised) attempt to completion.

    Returns the same payload shape as :func:`execute_spec` plus a
    ``"resilience"`` record: checkpoints written, the cycle resumed
    from (or None), and any checkpoint files refused as damaged.
    """
    started = time.perf_counter()
    spec = task.spec
    if task.sync_faults:
        for site in _WORKER_SITES:
            faultinject.sync_fired(site, task.attempt - 1)
    heartbeat = (Heartbeat(Path(task.heartbeat_path))
                 if task.heartbeat_path else None)
    if heartbeat is not None:
        heartbeat.beat(stage="start")
    # Chaos sites: a worker that dies before doing any work, one that
    # hangs long enough to surface as a timeout, one that stops
    # heartbeating (watchdog path), and one that dies of memory
    # exhaustion (ladder path).
    faultinject.check("runner.worker_crash")
    if faultinject.fires("runner.worker_timeout"):
        time.sleep(0.05)
        raise TimeoutError("injected fault at site 'runner.worker_timeout'")
    if faultinject.fires("worker.hang"):
        if task.hang_seconds > 0:
            time.sleep(task.hang_seconds)
        raise faultinject.InjectedFault(
            "worker.hang", "injected fault at site 'worker.hang'")
    if faultinject.fires("worker.oom"):
        raise MemoryError("injected fault at site 'worker.oom'")

    resilience: Dict[str, Any] = {"checkpoints": 0,
                                  "resumed_from_cycle": None,
                                  "checkpoint_errors": []}
    store: Optional[CheckpointStore] = None
    key = spec.content_hash()
    if task.checkpoint_every or task.resume:
        store = CheckpointStore(root=task.checkpoint_root)

    artifacts = artifacts_for(spec)
    program, heap_workload = artifacts.run_inputs(spec.variant)
    heap = heap_workload.build_heap()
    sim = make_simulator(program, heap, spec.model,
                         config=config_for(spec, artifacts),
                         spawning=spec.effective_spawning,
                         max_cycles=spec.max_cycles)
    if task.resume and store is not None:
        errors: list = []
        loaded = store.load(key, errors)
        resilience["checkpoint_errors"] = errors
        if loaded is not None:
            state, header = loaded
            try:
                sim.restore(state["state"])
            except (CheckpointError, KeyError) as exc:
                resilience["checkpoint_errors"].append(str(exc))
            else:
                resilience["resumed_from_cycle"] = header.get("cycle", 0)

    cadence = task.checkpoint_every
    if cadence is None and (heartbeat is not None or task.deadline
                            or task.rss_budget_mb):
        cadence = _PROGRESS_CADENCE

    def on_checkpoint(running_sim) -> None:
        if heartbeat is not None:
            heartbeat.beat(cycle=running_sim.cycle, stage="simulate")
        if task.deadline is not None:
            elapsed = time.perf_counter() - started
            if elapsed > task.deadline:
                raise ResourceBudgetError(
                    f"{spec.label()} exceeded its {task.deadline}s "
                    f"wall-clock budget at cycle {running_sim.cycle} "
                    f"({elapsed:.1f}s elapsed)")
        if task.rss_budget_mb is not None:
            rss = _peak_rss_mb()
            if rss is not None and rss > task.rss_budget_mb:
                raise ResourceBudgetError(
                    f"{spec.label()} exceeded its {task.rss_budget_mb} "
                    f"MiB RSS budget at cycle {running_sim.cycle} "
                    f"({rss:.0f} MiB peak)")
        if store is not None and task.checkpoint_every:
            store.save(key, {"state": running_sim.snapshot()},
                       cycle=running_sim.cycle, label=spec.label())
            resilience["checkpoints"] += 1

    if spec.sample_interval:
        from ..sim.sampling import run_sampled
        stats = run_sampled(sim, spec.sample_interval, spec.sample_window,
                            checkpoint_every=cadence,
                            on_checkpoint=on_checkpoint)
    else:
        stats = sim.run(checkpoint_every=cadence,
                        on_checkpoint=on_checkpoint)
    if spec.variant in _CHECKED_VARIANTS:
        # After a restore the live heap is the snapshot's, not the one
        # this process built — always check what the simulator ran on.
        heap_workload.check_output(sim.heap)
    if store is not None:
        # The run completed; its checkpoints have served their purpose.
        store.discard(key)
    if heartbeat is not None:
        heartbeat.beat(cycle=stats.cycles, stage="done")

    payload: Dict[str, Any] = {
        "stats": stats.to_dict(),
        "wall_time": time.perf_counter() - started,
        "resilience": resilience,
    }
    if spec.variant == "ssp":
        # Attach the per-delinquent-load prefetch effectiveness so a later
        # cache hit can still report coverage/accuracy/timeliness without
        # re-simulating.  Keys are strings to survive the JSON round trip.
        payload["metrics"] = {
            "delinquent_uids": list(artifacts.delinquent_uids),
            "prefetch": {
                str(uid): row for uid, row in stats.prefetch_metrics(
                    artifacts.delinquent_uids).items()},
        }
    return payload


def execute_spec(spec: RunSpec) -> Dict[str, Any]:
    """Run one spec to completion; returns ``{"stats": ..., "wall_time"}``.

    The stats value is the JSON-safe :meth:`SimStats.to_dict` form (not the
    object) so the same payload crosses process boundaries and lands in
    the result cache without re-serialisation.
    """
    return execute_task(WorkerTask(spec=spec))
