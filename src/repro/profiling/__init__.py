"""Profiling feedback: cache profiles, block profiles, dynamic call graph."""

from .profile import ProgramProfile
from .collect import collect_profile
from .delinquent import (
    DEFAULT_COVERAGE,
    DEFAULT_MAX_LOADS,
    select_delinquent_loads,
)

__all__ = [
    "ProgramProfile", "collect_profile",
    "DEFAULT_COVERAGE", "DEFAULT_MAX_LOADS", "select_delinquent_loads",
]
