"""Profile data structures (Section 2.2's profiling feedback).

A :class:`ProgramProfile` bundles everything the post-pass tool consumes:

* the **cache profile** from the simulator — per-static-load access/miss
  counts and miss cycles ("the tool employs cache profile data from the
  simulator"),
* the **block profile** — execution counts per basic block, used by
  control-flow speculative slicing and trip-count estimation,
* the **dynamic call graph** for indirect call sites ("we instrument all
  the indirect procedural calls to capture the call graph during
  profiling").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.program import Program
from ..sim.caches import LoadStats


class ProgramProfile:
    """Profiling feedback for one program."""

    def __init__(self, program: Program,
                 load_stats: Dict[int, LoadStats],
                 exec_counts: Dict[int, int],
                 indirect_targets: Dict[int, Dict[str, int]],
                 baseline_cycles: int,
                 l1_latency: int = 2):
        self.program = program
        self.load_stats = load_stats
        self.exec_counts = exec_counts
        self.indirect_targets = indirect_targets
        self.baseline_cycles = baseline_cycles
        self.l1_latency = l1_latency
        self.block_freq: Dict[str, Dict[str, int]] = {}
        for name, func in program.functions.items():
            freqs: Dict[str, int] = {}
            for block in func.blocks:
                if block.instrs:
                    freqs[block.label] = exec_counts.get(
                        block.instrs[0].uid, 0)
            self.block_freq[name] = freqs

    # -- cache profile -----------------------------------------------------------

    def misses_of(self, uid: int) -> int:
        stats = self.load_stats.get(uid)
        return stats.l1_misses if stats else 0

    def miss_cycles_of(self, uid: int) -> int:
        stats = self.load_stats.get(uid)
        return stats.miss_cycles if stats else 0

    def total_misses(self) -> int:
        return sum(s.l1_misses for s in self.load_stats.values())

    def total_miss_cycles(self) -> int:
        return sum(s.miss_cycles for s in self.load_stats.values())

    def average_load_latency(self, uid: int) -> Optional[float]:
        """Mean observed latency of a static load, for dependence-graph
        edge annotation (Section 3.2)."""
        stats = self.load_stats.get(uid)
        if stats is None or stats.accesses == 0:
            return None
        return self.l1_latency + stats.miss_cycles / stats.accesses

    def load_latency_map(self) -> Dict[int, float]:
        return {uid: self.l1_latency + s.miss_cycles / s.accesses
                for uid, s in self.load_stats.items() if s.accesses}

    # -- block profile -----------------------------------------------------------

    def block_count(self, function: str, label: str) -> int:
        return self.block_freq.get(function, {}).get(label, 0)

    def executions_of(self, uid: int) -> int:
        return self.exec_counts.get(uid, 0)
