"""Profile collection: the two-pass flow of Figure 1.

"The first compilation pass generates the regular binary.  In the second
pass, we use the profiling information collected from running the original
binary to enhance the binary for SSP."

Two profiling runs are made:

1. a timing run on the baseline in-order model (``chk.c`` disabled) for the
   cache profile and the baseline cycle count, and
2. a functional run for exact per-instruction execution counts and the
   dynamic call graph of indirect calls.

Both runs need their own freshly initialised heap (programs mutate their
data), which is why the API takes a ``heap_factory``.
"""

from __future__ import annotations

from typing import Callable

from ..isa.interp import FunctionalInterpreter
from ..isa.memory import Heap
from ..isa.program import Program
from ..sim.config import MachineConfig, inorder_config
from ..sim.inorder import InOrderSimulator
from .profile import ProgramProfile


def collect_profile(program: Program,
                    heap_factory: Callable[[], Heap],
                    config: MachineConfig = None) -> ProgramProfile:
    """Profile ``program`` and return the tool's input feedback."""
    config = config or inorder_config()
    if not program.finalized:
        program.finalize()

    sim = InOrderSimulator(program, heap_factory(), config, spawning=False)
    stats = sim.run()

    interp = FunctionalInterpreter(program, heap_factory())
    interp.run()

    return ProgramProfile(
        program=program,
        load_stats=dict(sim.memory.load_stats),
        exec_counts=dict(interp.exec_counts),
        indirect_targets=dict(interp.indirect_targets),
        baseline_cycles=stats.cycles,
        l1_latency=config.l1.latency,
    )
