"""Delinquent-load identification (Section 2.2).

"For many programs, only a small number of static loads are responsible
for the vast majority of cache misses.  The tool uses the cache profiles
from the simulator to identify the top delinquent loads that contribute to
at least 90% of the cache misses."
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.tracer import Tracer, ensure_tracer
from .profile import ProgramProfile

DEFAULT_COVERAGE = 0.90
DEFAULT_MAX_LOADS = 10


def select_delinquent_loads(profile: ProgramProfile,
                            coverage: float = DEFAULT_COVERAGE,
                            max_loads: int = DEFAULT_MAX_LOADS,
                            min_misses: int = 16,
                            tracer: Optional[Tracer] = None) -> List[int]:
    """Static-load uids covering ``coverage`` of all L1 misses.

    Loads are ranked by miss count; selection stops once cumulative
    coverage is reached or ``max_loads`` are taken.  ``min_misses`` filters
    noise loads that would waste a hardware context.  An enabled
    ``tracer`` receives one ``delinquent_load`` event per selection — the
    per-static-load miss attribution of the observability event log.
    """
    tracer = ensure_tracer(tracer)
    ranked = sorted(profile.load_stats.items(),
                    key=lambda kv: kv[1].l1_misses, reverse=True)
    total = profile.total_misses()
    if total == 0:
        return []
    selected: List[int] = []
    covered = 0
    for uid, stats in ranked:
        if stats.l1_misses < min_misses:
            break
        selected.append(uid)
        covered += stats.l1_misses
        tracer.event("delinquent_load", category="profiling", uid=uid,
                     l1_misses=stats.l1_misses,
                     miss_cycles=profile.miss_cycles_of(uid),
                     cumulative_coverage=covered / total)
        if covered / total >= coverage or len(selected) >= max_loads:
            break
    tracer.counter("profiling.loads_ranked").add(len(ranked))
    tracer.counter("profiling.delinquent_selected").add(len(selected))
    return selected
