"""Itanium-like ISA: instructions, programs, builder, memory, semantics."""

from .instructions import (
    Instruction,
    alu,
    cmp,
    load,
    mov,
    nop,
    prefetch,
    store,
)
from .program import BasicBlock, Function, Program, ProgramError
from .builder import FunctionBuilder, build_function
from .memory import Heap, HEAP_BASE, WORD
from .asm import (
    AsmError,
    load_program,
    parse_assembly,
    round_trip,
    save_program,
)
from .interp import (
    ExecResult,
    ExecutionError,
    FunctionalInterpreter,
    ThreadState,
    execute,
    spawn_thread,
)

__all__ = [
    "Instruction", "alu", "cmp", "load", "mov", "nop", "prefetch", "store",
    "BasicBlock", "Function", "Program", "ProgramError",
    "FunctionBuilder", "build_function",
    "Heap", "HEAP_BASE", "WORD",
    "ExecResult", "ExecutionError", "FunctionalInterpreter", "ThreadState",
    "execute", "spawn_thread",
    "AsmError", "load_program", "parse_assembly", "round_trip",
    "save_program",
]
