"""Architectural (functional) semantics shared by all execution engines.

A :class:`ThreadState` is one hardware thread context's architectural state.
:func:`execute` steps one instruction functionally and reports what happened
in an :class:`ExecResult`; both timing simulators (``repro.sim.inorder``,
``repro.sim.ooo``) and the fast :class:`FunctionalInterpreter` are built on
it, so there is exactly one definition of what each opcode *does*.

Speculative threads never modify the main thread's architectural state: they
have their own :class:`ThreadState`, may not execute stores (the emitter
guarantees it; :func:`execute` enforces it), and loads of garbage addresses
return 0 instead of faulting — the deferred-exception behaviour the paper
relies on ("the SSP paradigm does not require p-slice computation to satisfy
the correctness constraints").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .instructions import Instruction
from .memory import Heap
from .program import Program
from . import registers as regs


class ExecutionError(Exception):
    """Raised for run-time errors in the *main* thread (bad address, etc.)."""


_RELATIONS: Dict[str, Callable[[int, int], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_ALU: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
}

#: Number of live-in buffer slots per spawn site (the RSE backing-store
#: region is small; Table 2 shows slices need < 8 live-ins).
LIB_SLOTS = 16


class ThreadState:
    """Architectural state of one hardware thread context."""

    __slots__ = ("tid", "pc", "regs", "preds", "call_stack", "rfi_stack",
                 "lib_out", "lib_in", "speculative", "halted", "killed")

    def __init__(self, tid: int, pc: int, speculative: bool = False):
        self.tid = tid
        self.pc = pc
        self.regs: Dict[str, int] = {regs.ZERO: 0}
        self.preds: Dict[str, bool] = {regs.TRUE_PREDICATE: True}
        # Each frame is (return_pc, saved_regs) — a register-stack window.
        self.call_stack: List[tuple] = []
        self.rfi_stack: List[int] = []
        # Staging buffer this thread writes live-ins into before a spawn.
        self.lib_out: List[int] = [0] * LIB_SLOTS
        # Snapshot of the parent's lib_out taken at spawn time.
        self.lib_in: List[int] = [0] * LIB_SLOTS
        self.speculative = speculative
        self.halted = False
        self.killed = False

    @property
    def done(self) -> bool:
        return self.halted or self.killed

    def read(self, reg: str) -> int:
        return self.regs.get(reg, 0)

    def read_pred(self, pred: str) -> bool:
        return self.preds.get(pred, False)


class ExecResult:
    """What one functional step did (consumed by the timing layer)."""

    __slots__ = ("next_pc", "mem_addr", "taken", "spawn_target", "executed",
                 "chk_taken")

    def __init__(self, next_pc: int, mem_addr: Optional[int] = None,
                 taken: Optional[bool] = None,
                 spawn_target: Optional[int] = None,
                 executed: bool = True, chk_taken: bool = False):
        self.next_pc = next_pc
        self.mem_addr = mem_addr
        self.taken = taken
        self.spawn_target = spawn_target
        self.executed = executed
        self.chk_taken = chk_taken


def execute(program: Program, heap: Heap, state: ThreadState,
            instr: Instruction, chk_fires: bool = False) -> ExecResult:
    """Execute ``instr`` architecturally on ``state``.

    ``chk_fires`` tells a ``chk.c`` whether a free hardware context is
    available (the timing model's decision); when false the check behaves
    like a nop, per Section 3.4.2.
    """
    pc = state.pc
    op = instr.op

    # Predication: a false qualifying predicate squashes the instruction.
    if instr.pred is not None and not state.preds.get(instr.pred, False):
        state.pc = pc + 1
        return ExecResult(pc + 1, executed=False)

    rd = state.regs

    if op in _ALU:
        a = rd.get(instr.srcs[0], 0)
        b = rd.get(instr.srcs[1], 0) if len(instr.srcs) > 1 else instr.imm
        rd[instr.dest] = _ALU[op](a, b)
        if instr.dest == regs.ZERO:
            rd[regs.ZERO] = 0
        state.pc = pc + 1
        return ExecResult(pc + 1)

    if op == "mov":
        rd[instr.dest] = rd.get(instr.srcs[0], 0) if instr.srcs else instr.imm
        if instr.dest == regs.ZERO:
            rd[regs.ZERO] = 0
        state.pc = pc + 1
        return ExecResult(pc + 1)

    if op == "ld":
        addr = rd.get(instr.srcs[0], 0) + (instr.imm or 0)
        if heap.valid(addr):
            rd[instr.dest] = heap.load(addr)
        elif state.speculative:
            rd[instr.dest] = 0     # deferred exception: NaT-like zero
            addr = None            # no memory access is made
        else:
            raise ExecutionError(
                f"bad load address {addr:#x} at pc {pc} ({instr})")
        state.pc = pc + 1
        return ExecResult(pc + 1, mem_addr=addr)

    if op == "st":
        if state.speculative:
            raise ExecutionError(
                "speculative thread attempted a store — the emitter must "
                f"never place stores in p-slices ({instr} at pc {pc})")
        addr = rd.get(instr.srcs[0], 0) + (instr.imm or 0)
        if not heap.valid(addr):
            raise ExecutionError(
                f"bad store address {addr:#x} at pc {pc} ({instr})")
        heap.store(addr, rd.get(instr.srcs[1], 0))
        state.pc = pc + 1
        return ExecResult(pc + 1, mem_addr=addr)

    if op == "lfetch":
        addr = rd.get(instr.srcs[0], 0) + (instr.imm or 0)
        if not heap.valid(addr):
            addr = None            # non-faulting prefetch: dropped
        state.pc = pc + 1
        return ExecResult(pc + 1, mem_addr=addr)

    if op == "cmp":
        a = rd.get(instr.srcs[0], 0)
        b = rd.get(instr.srcs[1], 0) if len(instr.srcs) > 1 else instr.imm
        state.preds[instr.dest] = _RELATIONS[instr.relation](a, b)
        if instr.dest == regs.TRUE_PREDICATE:
            state.preds[regs.TRUE_PREDICATE] = True
        state.pc = pc + 1
        return ExecResult(pc + 1)

    if op == "br":
        target = program.branch_target[pc]
        state.pc = target
        return ExecResult(target, taken=True)

    if op == "br.cond":
        taken = state.preds.get(instr.pred, False) if instr.pred else True
        target = program.branch_target[pc] if taken else pc + 1
        state.pc = target
        return ExecResult(target, taken=taken)

    if op == "br.call":
        target = program.branch_target[pc]
        state.call_stack.append((pc + 1, dict(rd)))
        state.pc = target
        return ExecResult(target, taken=True)

    if op == "br.call.ind":
        fid = rd.get(instr.srcs[0], 0)
        if not 0 <= fid < len(program.function_by_id):
            if state.speculative:
                state.killed = True
                return ExecResult(pc, executed=False)
            raise ExecutionError(f"bad indirect call target {fid} at pc {pc}")
        target = program.function_entry[program.function_by_id[fid]]
        state.call_stack.append((pc + 1, dict(rd)))
        state.pc = target
        return ExecResult(target, taken=True)

    if op == "br.ret":
        if not state.call_stack:
            # Returning from the outermost frame ends the thread.
            state.halted = True
            return ExecResult(pc, taken=True)
        ret_pc, saved = state.call_stack.pop()
        ret_val = rd.get(regs.RET_VALUE, 0)
        state.regs = saved
        state.regs[regs.RET_VALUE] = ret_val
        state.pc = ret_pc
        return ExecResult(ret_pc, taken=True)

    if op == "chk.c":
        if chk_fires:
            # Lightweight exception: divert to the recovery stub, remember
            # where to resume.
            target = program.branch_target[pc]
            state.rfi_stack.append(pc + 1)
            state.pc = target
            return ExecResult(target, taken=True, chk_taken=True)
        state.pc = pc + 1
        return ExecResult(pc + 1, taken=False)

    if op == "rfi":
        if not state.rfi_stack:
            raise ExecutionError(f"rfi with no pending recovery at pc {pc}")
        target = state.rfi_stack.pop()
        state.pc = target
        return ExecResult(target, taken=True)

    if op == "spawn":
        target = program.branch_target[pc]
        state.pc = pc + 1
        return ExecResult(pc + 1, spawn_target=target)

    if op == "lib.st":
        state.lib_out[instr.imm] = rd.get(instr.srcs[0], 0)
        state.pc = pc + 1
        return ExecResult(pc + 1)

    if op == "lib.ld":
        rd[instr.dest] = state.lib_in[instr.imm]
        state.pc = pc + 1
        return ExecResult(pc + 1)

    if op == "kill":
        state.killed = True
        return ExecResult(pc)

    if op == "halt":
        state.halted = True
        return ExecResult(pc)

    if op == "nop":
        state.pc = pc + 1
        return ExecResult(pc + 1)

    raise ExecutionError(f"unimplemented opcode {op!r}")  # pragma: no cover


def spawn_thread(parent: ThreadState, tid: int, target_pc: int) -> ThreadState:
    """Create a speculative thread context started by ``parent``.

    The child receives a *snapshot* of the parent's live-in staging buffer —
    the values the parent's stub code copied there — modelling the on-chip
    RSE backing-store buffer of Section 2.1, which "eliminat[es] the
    possibility of inter-thread hazards where a register may be overwritten
    before a child thread has read it".
    """
    child = ThreadState(tid, target_pc, speculative=True)
    child.lib_in = list(parent.lib_out)
    return child


class FunctionalInterpreter:
    """Timing-free whole-program execution.

    Used by workload unit tests to validate program semantics and by the
    block/call-graph profilers.  Runs a single thread; ``chk.c`` never fires
    and ``spawn`` is ignored (a spawn with no free context is dropped, and
    functionally a p-slice has no architectural effect anyway).
    """

    def __init__(self, program: Program, heap: Heap,
                 max_steps: int = 50_000_000):
        if not program.finalized:
            program.finalize()
        self.program = program
        self.heap = heap
        self.max_steps = max_steps
        self.exec_counts: Dict[int, int] = {}
        self.indirect_targets: Dict[int, Dict[str, int]] = {}
        self.steps = 0

    def run(self, count: bool = True) -> ThreadState:
        """Run from the program entry until halt; returns the final state."""
        program = self.program
        state = ThreadState(tid=0,
                            pc=program.function_entry[program.entry])
        counts = self.exec_counts
        code = program.code
        steps = 0
        while not state.done:
            if steps >= self.max_steps:
                raise ExecutionError(
                    f"exceeded {self.max_steps} steps; infinite loop?")
            instr = code[state.pc]
            if count:
                uid = instr.uid
                counts[uid] = counts.get(uid, 0) + 1
            if instr.op == "br.call.ind":
                fid = state.regs.get(instr.srcs[0], 0)
                if 0 <= fid < len(program.function_by_id):
                    per_site = self.indirect_targets.setdefault(instr.uid, {})
                    name = program.function_by_id[fid]
                    per_site[name] = per_site.get(name, 0) + 1
            execute(program, self.heap, state, instr)
            steps += 1
        self.steps += steps
        return state
