"""Instruction set of the research Itanium-like ISA.

Every instruction the simulator executes — and that the post-pass tool
analyses and rewrites — is an :class:`Instruction`.  The opcode vocabulary
covers the subset of Itanium the paper's tool needs:

* integer ALU operations and moves,
* compares writing predicate registers,
* loads, stores and the non-binding ``lfetch`` prefetch,
* predicated branches, calls (direct and indirect) and returns,
* the SSP-specific opcodes of Section 3.4.2: ``chk.c`` (trigger check),
  ``spawn`` (bind a speculative thread to a free context), ``lib.st`` /
  ``lib.ld`` (live-in buffer transfer) and ``kill`` (thread self-kill),
* ``rfi`` — return from the lightweight recovery stub back to the
  instruction after the ``chk.c`` that raised it,
* ``nop`` and ``halt``.

Instructions are *mutable* value objects: the post-pass tool patches nops
into ``chk.c`` instructions in place, exactly as the paper's binary
adaptation replaces a nop slot (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------

ALU_OPS = frozenset({"add", "sub", "mul", "and", "or", "xor", "shl", "shr"})
CMP_RELATIONS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})

OP_MOV = "mov"
OP_CMP = "cmp"
OP_LOAD = "ld"
OP_STORE = "st"
OP_PREFETCH = "lfetch"
OP_BR = "br"
OP_BR_COND = "br.cond"
OP_CALL = "br.call"
OP_CALL_INDIRECT = "br.call.ind"
OP_RET = "br.ret"
OP_CHK_C = "chk.c"
OP_SPAWN = "spawn"
OP_LIB_ST = "lib.st"
OP_LIB_LD = "lib.ld"
OP_KILL = "kill"
OP_RFI = "rfi"
OP_NOP = "nop"
OP_HALT = "halt"

BRANCH_OPS = frozenset({OP_BR, OP_BR_COND, OP_CALL, OP_CALL_INDIRECT, OP_RET})
MEMORY_OPS = frozenset({OP_LOAD, OP_STORE, OP_PREFETCH})
SSP_OPS = frozenset({OP_CHK_C, OP_SPAWN, OP_LIB_ST, OP_LIB_LD, OP_KILL, OP_RFI})

ALL_OPS = (
    ALU_OPS
    | BRANCH_OPS
    | MEMORY_OPS
    | SSP_OPS
    | {OP_MOV, OP_CMP, OP_NOP, OP_HALT}
)

#: Fixed execution latencies (cycles) for non-memory operations.  Memory
#: operation latency is determined by the cache hierarchy at run time
#: (Section 3.2: "The latency of a memory operation is determined by cache
#: profiling, and the machine model provides latency estimates for other
#: instructions").
FIXED_LATENCY = {
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1, "shl": 1, "shr": 1,
    "mul": 3,
    OP_MOV: 1, OP_CMP: 1,
    OP_STORE: 1, OP_PREFETCH: 1,
    OP_BR: 1, OP_BR_COND: 1, OP_CALL: 1, OP_CALL_INDIRECT: 1, OP_RET: 1,
    OP_CHK_C: 1, OP_SPAWN: 1, OP_LIB_ST: 1, OP_LIB_LD: 1, OP_KILL: 1,
    OP_RFI: 1, OP_NOP: 1, OP_HALT: 1,
}


_UID_COUNTER = [0]


def _next_uid() -> int:
    _UID_COUNTER[0] += 1
    return _UID_COUNTER[0]


@dataclass
class Instruction:
    """One machine instruction.

    Attributes:
        op: opcode string (one of :data:`ALL_OPS`).
        dest: destination register (int or predicate), or ``None``.
        srcs: tuple of source register names.
        imm: immediate operand (ALU second operand, load/store displacement,
            live-in buffer slot, or ``mov`` immediate), or ``None``.
        target: control-flow target — a label for branches / ``chk.c`` /
            ``spawn``, a function name for calls.
        pred: qualifying predicate register; the instruction is a no-op when
            the predicate is false (Itanium predication).  ``None`` means
            always execute.
        relation: comparison relation for ``cmp``.
        uid: program-unique id, stable across rewrites; profiling and the
            dependence graph key on it.
        addr: linear "binary address", assigned by ``Program.finalize``.
    """

    op: str
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    imm: Optional[int] = None
    target: Optional[str] = None
    pred: Optional[str] = None
    relation: Optional[str] = None
    uid: int = field(default_factory=_next_uid)
    addr: int = -1

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown opcode: {self.op!r}")
        if self.op == OP_CMP and self.relation not in CMP_RELATIONS:
            raise ValueError(f"cmp needs a relation in {sorted(CMP_RELATIONS)}")

    # -- classification helpers used throughout analyses and the simulator --

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_load(self) -> bool:
        return self.op == OP_LOAD

    @property
    def is_store(self) -> bool:
        return self.op == OP_STORE

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_terminator(self) -> bool:
        """True for instructions that end a basic block unconditionally."""
        return self.op in (OP_BR, OP_RET, OP_HALT, OP_KILL, OP_RFI)

    @property
    def reads(self) -> Tuple[str, ...]:
        """All register names read by this instruction (incl. predicate)."""
        if self.pred is not None:
            return self.srcs + (self.pred,)
        return self.srcs

    @property
    def writes(self) -> Tuple[str, ...]:
        return (self.dest,) if self.dest is not None else ()

    def fixed_latency(self) -> int:
        """Execution latency for non-load ops; loads ask the cache."""
        return FIXED_LATENCY.get(self.op, 1)

    def copy(self) -> "Instruction":
        """A fresh instruction with identical operands but a new uid."""
        return Instruction(
            op=self.op, dest=self.dest, srcs=self.srcs, imm=self.imm,
            target=self.target, pred=self.pred, relation=self.relation,
        )

    # -- textual form, used by the disassembler and error messages ----------

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.pred is not None:
            parts.append(f"({self.pred})")
        parts.append(self.op if self.op != OP_CMP else f"cmp.{self.relation}")
        ops = []
        if self.dest is not None:
            ops.append(self.dest)
        ops.extend(self.srcs)
        if self.imm is not None:
            ops.append(str(self.imm))
        if self.target is not None:
            ops.append(self.target)
        if ops:
            parts.append(" " + ", ".join(ops))
        return "".join(parts)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def alu(op: str, dest: str, a: str, b: Optional[str] = None,
        imm: Optional[int] = None, pred: Optional[str] = None) -> Instruction:
    """Build an ALU instruction ``dest = a <op> (b | imm)``."""
    if op not in ALU_OPS:
        raise ValueError(f"{op!r} is not an ALU op")
    srcs = (a,) if b is None else (a, b)
    if b is None and imm is None:
        raise ValueError("ALU op needs a second register or an immediate")
    return Instruction(op=op, dest=dest, srcs=srcs, imm=imm, pred=pred)


def mov(dest: str, src: Optional[str] = None, imm: Optional[int] = None,
        pred: Optional[str] = None) -> Instruction:
    """``dest = src`` or ``dest = imm``."""
    if (src is None) == (imm is None):
        raise ValueError("mov takes exactly one of src, imm")
    srcs = (src,) if src is not None else ()
    return Instruction(op=OP_MOV, dest=dest, srcs=srcs, imm=imm, pred=pred)


def cmp(relation: str, dest_pred: str, a: str, b: Optional[str] = None,
        imm: Optional[int] = None, pred: Optional[str] = None) -> Instruction:
    """``dest_pred = a <relation> (b | imm)``."""
    srcs = (a,) if b is None else (a, b)
    if b is None and imm is None:
        raise ValueError("cmp needs a second register or an immediate")
    return Instruction(op=OP_CMP, dest=dest_pred, srcs=srcs, imm=imm,
                       relation=relation, pred=pred)


def load(dest: str, base: str, offset: int = 0,
         pred: Optional[str] = None) -> Instruction:
    """``dest = MEM[base + offset]``."""
    return Instruction(op=OP_LOAD, dest=dest, srcs=(base,), imm=offset,
                       pred=pred)


def store(base: str, src: str, offset: int = 0,
          pred: Optional[str] = None) -> Instruction:
    """``MEM[base + offset] = src``."""
    return Instruction(op=OP_STORE, srcs=(base, src), imm=offset, pred=pred)


def prefetch(base: str, offset: int = 0,
             pred: Optional[str] = None) -> Instruction:
    """Non-binding prefetch of ``MEM[base + offset]`` (Itanium lfetch)."""
    return Instruction(op=OP_PREFETCH, srcs=(base,), imm=offset, pred=pred)


def nop() -> Instruction:
    return Instruction(op=OP_NOP)
