"""Pre-decoded issue tables for the timing simulators' hot loops.

``repro.isa`` instructions are convenient value objects, but the per-cycle
issue path pays for that convenience on every tick: ``Instruction.reads``
builds a tuple per call, ``fixed_latency()`` is a dict probe, opcode
dispatch is a string-compare chain, and ``execute`` allocates an
:class:`~repro.isa.interp.ExecResult` per instruction.  This module decodes
a finalised :class:`~repro.isa.program.Program` **once** into flat
per-instruction tuples of plain ints/strings/callables so the simulators'
fast paths (``repro.sim.inorder``, ``repro.sim.ooo``) do zero dict lookups
and zero ``getattr`` per issued instruction.

:func:`step_decoded` is a semantics-preserving mirror of
:func:`repro.isa.interp.execute` over a decoded entry — byte-identical
architectural behaviour is the contract (enforced by the differential suite
in ``tests/test_sim_fastpath.py``), the only difference being that results
are plain tuples (shared singletons for the common cases) instead of
``ExecResult`` objects.

The decode cache is keyed on ``Program._decode_version``, bumped by every
``Program.finalize()`` — the tool's in-place nop→``chk.c`` patching is
always followed by a re-finalise (branch targets must be resolved), so a
stale table cannot be observed.  Like the simulators themselves, decoding
assumes the program is not mutated *between* ``finalize()`` and the run.
"""

from __future__ import annotations

import os
import weakref
from typing import Any, List, Optional, Tuple

from .instructions import (
    ALU_OPS,
    BRANCH_OPS,
    FIXED_LATENCY,
    Instruction,
    MEMORY_OPS,
)
from .interp import ExecutionError, ThreadState, _ALU, _RELATIONS
from .memory import HEAP_BASE, Heap
from .program import Program
from . import registers as regs

# ---------------------------------------------------------------------------
# Decoded-entry layout
# ---------------------------------------------------------------------------

#: Instruction kinds — small ints replacing opcode string dispatch.  The
#: branch kinds are contiguous (``K_BR <= kind <= K_RET``) so "is this a
#: branch" is a range check.
(K_ALU, K_MOV, K_CMP, K_LD, K_ST, K_LFETCH,
 K_BR, K_BRC, K_CALL, K_CALLI, K_RET,
 K_CHK, K_RFI, K_SPAWN, K_LIBST, K_LIBLD, K_KILL, K_HALT, K_NOP) = range(19)

_KIND_OF_OP = {
    "mov": K_MOV, "cmp": K_CMP, "ld": K_LD, "st": K_ST, "lfetch": K_LFETCH,
    "br": K_BR, "br.cond": K_BRC, "br.call": K_CALL,
    "br.call.ind": K_CALLI, "br.ret": K_RET,
    "chk.c": K_CHK, "rfi": K_RFI, "spawn": K_SPAWN,
    "lib.st": K_LIBST, "lib.ld": K_LIBLD,
    "kill": K_KILL, "halt": K_HALT, "nop": K_NOP,
}
for _op in ALU_OPS:
    _KIND_OF_OP[_op] = K_ALU

#: Structural-resource classes, matching the in-order issue logic exactly:
#: memory ops take a memory port; branches *plus* ``chk.c`` and ``spawn``
#: take a branch unit; everything else an integer unit.
RES_MEM, RES_BR, RES_INT = range(3)

#: Field indices of one decoded entry.
(D_KIND,    # int kind constant (K_*)
 D_OP,      # original opcode string (error messages, predictor-free debug)
 D_DEST,    # destination register name or None
 D_SRC0,    # first source register name or None
 D_SRC1,    # second source register name or None
 D_IMM,     # raw immediate (may be None; lib.st/lib.ld slot, ALU/cmp/mov)
 D_IMM0,    # displacement immediate with None folded to 0 (ld/st/lfetch)
 D_PRED,    # qualifying predicate register name or None
 D_READS,   # precomputed Instruction.reads tuple
 D_LAT,     # fixed latency (FIXED_LATENCY.get(op, 1))
 D_RES,     # structural-resource class (RES_*)
 D_TARGET,  # resolved absolute branch target (br/br.cond/br.call/chk.c/spawn)
 D_FN,      # bound ALU/relation callable for K_ALU/K_CMP, else None
 D_UID) = range(14)

DecodedEntry = Tuple[Any, ...]

# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

_DECODE_CACHE: "weakref.WeakKeyDictionary[Program, Tuple[int, List[DecodedEntry]]]" = \
    weakref.WeakKeyDictionary()


def _decode_one(program: Program, pc: int, instr: Instruction) -> DecodedEntry:
    op = instr.op
    kind = _KIND_OF_OP[op]
    srcs = instr.srcs
    if instr.is_memory:
        rescls = RES_MEM
    elif instr.is_branch or op in ("chk.c", "spawn"):
        rescls = RES_BR
    else:
        rescls = RES_INT
    fn = None
    if kind == K_ALU:
        fn = _ALU[op]
    elif kind == K_CMP:
        fn = _RELATIONS[instr.relation]
    return (
        kind,
        op,
        instr.dest,
        srcs[0] if srcs else None,
        srcs[1] if len(srcs) > 1 else None,
        instr.imm,
        instr.imm or 0,
        instr.pred,
        instr.reads,
        FIXED_LATENCY.get(op, 1),
        rescls,
        program.branch_target.get(pc),
        fn,
        instr.uid,
    )


def decode_program(program: Program) -> List[DecodedEntry]:
    """Decode ``program`` into flat issue tuples; cached per finalise."""
    if not program.finalized:
        program.finalize()
    version = getattr(program, "_decode_version", 0)
    cached = _DECODE_CACHE.get(program)
    if cached is not None and cached[0] == version:
        return cached[1]
    table = [_decode_one(program, pc, instr)
             for pc, instr in enumerate(program.code)]
    _DECODE_CACHE[program] = (version, table)
    return table


def resolve_fast_path(fast_path: Optional[bool]) -> bool:
    """Resolve a simulator's ``fast_path`` constructor argument.

    ``None`` (the default) enables the fast path unless the
    ``REPRO_SIM_LEGACY`` environment variable is set truthy — the escape
    hatch CI uses to pin a legacy-interpretation baseline for the speedup
    gate, and users can use to cross-check a suspect run.
    """
    if fast_path is not None:
        return fast_path
    return os.environ.get("REPRO_SIM_LEGACY", "") not in ("1", "true", "yes")


# ---------------------------------------------------------------------------
# Functional step over a decoded entry
# ---------------------------------------------------------------------------

#: Shared result singletons: (mem_addr, taken, spawn_target, executed,
#: chk_taken).  Only memory ops and spawn allocate a fresh tuple.
R_MEM, R_TAKEN, R_SPAWN, R_EXECUTED, R_CHK = range(5)
_R_PLAIN = (None, None, None, True, False)
_R_SQUASH = (None, None, None, False, False)
_R_TAKEN = (None, True, None, True, False)
_R_NOT_TAKEN = (None, False, None, True, False)
_R_CHK_TAKEN = (None, True, None, True, True)

_RET_VALUE = regs.RET_VALUE
_ZERO = regs.ZERO
_TRUE_PREDICATE = regs.TRUE_PREDICATE


def step_decoded(program: Program, heap: Heap, state: ThreadState,
                 d: DecodedEntry, chk_fires: bool = False) -> Tuple:
    """Architecturally step one decoded instruction.

    Mirror of :func:`repro.isa.interp.execute`, returning a plain
    ``(mem_addr, taken, spawn_target, executed, chk_taken)`` tuple.
    """
    pc = state.pc
    pred = d[D_PRED]
    preds = state.preds
    if pred is not None and not preds.get(pred, False):
        state.pc = pc + 1
        return _R_SQUASH

    rd = state.regs
    kind = d[D_KIND]

    if kind == K_ALU:
        src1 = d[D_SRC1]
        b = rd.get(src1, 0) if src1 is not None else d[D_IMM]
        dest = d[D_DEST]
        rd[dest] = d[D_FN](rd.get(d[D_SRC0], 0), b)
        if dest == _ZERO:
            rd[_ZERO] = 0
        state.pc = pc + 1
        return _R_PLAIN

    if kind == K_MOV:
        src = d[D_SRC0]
        dest = d[D_DEST]
        rd[dest] = rd.get(src, 0) if src is not None else d[D_IMM]
        if dest == _ZERO:
            rd[_ZERO] = 0
        state.pc = pc + 1
        return _R_PLAIN

    if kind == K_LD:
        addr = rd.get(d[D_SRC0], 0) + d[D_IMM0]
        if not addr & 7 and HEAP_BASE <= addr < heap.size:
            rd[d[D_DEST]] = heap._words.get(addr >> 3, 0)
        elif state.speculative:
            rd[d[D_DEST]] = 0      # deferred exception: NaT-like zero
            addr = None            # no memory access is made
        else:
            raise ExecutionError(
                f"bad load address {addr:#x} at pc {pc} "
                f"({program.code[pc]})")
        state.pc = pc + 1
        return (addr, None, None, True, False)

    if kind == K_ST:
        if state.speculative:
            raise ExecutionError(
                "speculative thread attempted a store — the emitter must "
                f"never place stores in p-slices ({program.code[pc]} "
                f"at pc {pc})")
        addr = rd.get(d[D_SRC0], 0) + d[D_IMM0]
        if addr & 7 or not HEAP_BASE <= addr < heap.size:
            raise ExecutionError(
                f"bad store address {addr:#x} at pc {pc} "
                f"({program.code[pc]})")
        heap._words[addr >> 3] = rd.get(d[D_SRC1], 0)
        state.pc = pc + 1
        return (addr, None, None, True, False)

    if kind == K_LFETCH:
        addr = rd.get(d[D_SRC0], 0) + d[D_IMM0]
        if addr & 7 or not HEAP_BASE <= addr < heap.size:
            addr = None            # non-faulting prefetch: dropped
        state.pc = pc + 1
        return (addr, None, None, True, False)

    if kind == K_CMP:
        src1 = d[D_SRC1]
        b = rd.get(src1, 0) if src1 is not None else d[D_IMM]
        dest = d[D_DEST]
        preds[dest] = d[D_FN](rd.get(d[D_SRC0], 0), b)
        if dest == _TRUE_PREDICATE:
            preds[_TRUE_PREDICATE] = True
        state.pc = pc + 1
        return _R_PLAIN

    if kind == K_BR:
        state.pc = d[D_TARGET]
        return _R_TAKEN

    if kind == K_BRC:
        # A false qualifying predicate was squashed above, and execute()
        # treats the predicate as the branch condition — an *executed*
        # br.cond is always taken.
        state.pc = d[D_TARGET]
        return _R_TAKEN

    if kind == K_CALL:
        state.call_stack.append((pc + 1, dict(rd)))
        state.pc = d[D_TARGET]
        return _R_TAKEN

    if kind == K_CALLI:
        fid = rd.get(d[D_SRC0], 0)
        if not 0 <= fid < len(program.function_by_id):
            if state.speculative:
                state.killed = True
                return _R_SQUASH
            raise ExecutionError(
                f"bad indirect call target {fid} at pc {pc}")
        state.call_stack.append((pc + 1, dict(rd)))
        state.pc = program.function_entry[program.function_by_id[fid]]
        return _R_TAKEN

    if kind == K_RET:
        if not state.call_stack:
            state.halted = True
            return _R_TAKEN
        ret_pc, saved = state.call_stack.pop()
        ret_val = rd.get(_RET_VALUE, 0)
        state.regs = saved
        saved[_RET_VALUE] = ret_val
        state.pc = ret_pc
        return _R_TAKEN

    if kind == K_CHK:
        if chk_fires:
            state.rfi_stack.append(pc + 1)
            state.pc = d[D_TARGET]
            return _R_CHK_TAKEN
        state.pc = pc + 1
        return _R_NOT_TAKEN

    if kind == K_RFI:
        if not state.rfi_stack:
            raise ExecutionError(f"rfi with no pending recovery at pc {pc}")
        state.pc = state.rfi_stack.pop()
        return _R_TAKEN

    if kind == K_SPAWN:
        state.pc = pc + 1
        return (None, None, d[D_TARGET], True, False)

    if kind == K_LIBST:
        state.lib_out[d[D_IMM]] = rd.get(d[D_SRC0], 0)
        state.pc = pc + 1
        return _R_PLAIN

    if kind == K_LIBLD:
        rd[d[D_DEST]] = state.lib_in[d[D_IMM]]
        state.pc = pc + 1
        return _R_PLAIN

    if kind == K_KILL:
        state.killed = True
        return _R_PLAIN

    if kind == K_HALT:
        state.halted = True
        return _R_PLAIN

    # K_NOP
    state.pc = pc + 1
    return _R_PLAIN
