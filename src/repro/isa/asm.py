"""Textual assembler/disassembler round-trip for IR programs.

``Program.disassemble()`` produces a readable listing; this module parses
that exact format back into a :class:`Program`, so adapted binaries can be
saved to and loaded from ``.s`` files — the post-pass tool's input and
output are then real on-disk artifacts, like the paper's binaries.

Grammar (one construct per line; ``;`` starts a comment)::

    .func NAME (N params)
    label:
    [ (pN) ] OPCODE [operands]

Operand order follows the disassembler: destination first, then sources,
then an immediate, then a control-flow target.
"""

from __future__ import annotations

import re
from typing import List, Optional

from . import registers as regs
from .instructions import ALL_OPS, ALU_OPS, CMP_RELATIONS, Instruction
from .program import Program


class AsmError(Exception):
    """Raised on unparsable assembly text."""


_FUNC_RE = re.compile(r"^\.func\s+(\S+)\s*(?:\((\d+)\s+params?\))?$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_PRED_RE = re.compile(r"^\((p\d+)\)")
_ADDR_RE = re.compile(r"^\d+\s+")


def _is_register(token: str) -> bool:
    return regs.is_int_register(token) or regs.is_pred_register(token)


def _parse_operands(op: str, relation: Optional[str],
                    tokens: List[str], line_no: int) -> Instruction:
    dest: Optional[str] = None
    srcs: List[str] = []
    imm: Optional[int] = None
    target: Optional[str] = None

    #: ops whose first operand is a destination register.
    has_dest = (op in ALU_OPS or op in ("mov", "ld", "lib.ld")
                or op == "cmp")

    rest = list(tokens)
    if has_dest:
        if not rest or not _is_register(rest[0]):
            raise AsmError(f"line {line_no}: {op} needs a destination")
        dest = rest.pop(0)
    for token in rest:
        if _is_register(token):
            srcs.append(token)
        elif re.fullmatch(r"-?\d+", token) or \
                re.fullmatch(r"0x[0-9a-fA-F]+", token):
            if imm is not None:
                raise AsmError(
                    f"line {line_no}: multiple immediates in {op}")
            imm = int(token, 0)
        else:
            if target is not None:
                raise AsmError(f"line {line_no}: multiple targets in {op}")
            target = token
    try:
        return Instruction(op=op, dest=dest, srcs=tuple(srcs), imm=imm,
                           target=target, relation=relation)
    except ValueError as exc:
        raise AsmError(f"line {line_no}: {exc}") from exc


def parse_assembly(text: str, entry: str = "main") -> Program:
    """Parse a disassembly listing back into a finalisable Program."""
    program = Program(entry=entry)
    func = None
    block = None
    pending_label: Optional[str] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        match = _FUNC_RE.match(line)
        if match:
            name = match.group(1)
            nparams = int(match.group(2) or 0)
            func = program.add_function(name, nparams)
            block = None
            pending_label = None
            continue
        match = _LABEL_RE.match(line)
        if match:
            if func is None:
                raise AsmError(f"line {line_no}: label outside a function")
            block = func.add_block(match.group(1))
            continue
        # Instruction line (possibly with a leading address column).
        if func is None:
            raise AsmError(f"line {line_no}: code outside a function")
        line = _ADDR_RE.sub("", line)
        pred = None
        pmatch = _PRED_RE.match(line)
        if pmatch:
            pred = pmatch.group(1)
            line = line[pmatch.end():].strip()
        parts = line.replace(",", " ").split()
        if not parts:
            continue
        mnemonic = parts[0]
        relation = None
        if mnemonic.startswith("cmp."):
            relation = mnemonic[4:]
            if relation not in CMP_RELATIONS:
                raise AsmError(f"line {line_no}: bad relation {relation}")
            mnemonic = "cmp"
        if mnemonic not in ALL_OPS:
            raise AsmError(f"line {line_no}: unknown opcode {mnemonic!r}")
        instr = _parse_operands(mnemonic, relation, parts[1:], line_no)
        instr.pred = pred
        if block is None:
            block = func.add_block("entry")
        block.append(instr)
    return program


def round_trip(program: Program) -> Program:
    """disassemble -> parse; the result finalises to identical code."""
    return parse_assembly(program.disassemble(),
                          entry=program.entry).finalize()


def save_program(program: Program, path: str) -> None:
    """Write a program's listing to ``path`` (a ``.s`` file)."""
    with open(path, "w") as handle:
        handle.write(program.disassemble())
        handle.write("\n")


def load_program(path: str, entry: str = "main") -> Program:
    """Load a program previously saved with :func:`save_program`."""
    with open(path) as handle:
        return parse_assembly(handle.read(), entry=entry).finalize()
