"""Fluent construction API for IR programs.

Workloads (and the SSP code emitter) build functions through
:class:`FunctionBuilder`, which manages block creation, fresh virtual
registers/predicates, and the calling convention.  Example::

    prog = Program(entry="main")
    fb = FunctionBuilder(prog.add_function("main"))
    t = fb.mov_imm(41)
    u = fb.add(t, imm=1)
    fb.halt()
    prog.finalize()
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from . import instructions as ins
from . import registers as regs
from .program import Function, Program


class FunctionBuilder:
    """Builds one :class:`Function`, block by block.

    Instructions are appended to the *current block*; :meth:`label` opens a
    new block (creating a fall-through edge when the previous block does not
    end in an unconditional transfer).  Register management:

    * :meth:`fresh` returns a new temporary integer register,
    * :meth:`fresh_pred` a new predicate register,
    * :meth:`arg` the i-th incoming argument register.

    Most emission helpers allocate and return a fresh destination register
    when ``dest`` is not given, so code reads like three-address SSA even
    though registers may be reused freely.
    """

    def __init__(self, func: Function, entry_label: str = "entry"):
        self.func = func
        self._temp_counter = 0
        self._pred_counter = 0
        self._label_counter = 0
        self._block = func.add_block(entry_label)

    # -- registers -----------------------------------------------------------

    def fresh(self) -> str:
        """Allocate a fresh temporary integer register."""
        reg = regs.temp_register(self._temp_counter)
        self._temp_counter += 1
        return reg

    def fresh_pred(self) -> str:
        """Allocate a fresh predicate register."""
        pred = regs.pred_register(self._pred_counter)
        self._pred_counter += 1
        return pred

    def arg(self, index: int) -> str:
        """The register holding the ``index``-th incoming argument.

        NOTE: argument registers are also the outgoing-argument registers,
        so they are clobbered by any call this function makes.  Functions
        that call others should grab their parameters once via
        :meth:`params` (which copies them to temporaries at entry) instead
        of reading ``arg(i)`` after a call.
        """
        return regs.arg_register(index)

    def params(self, count: int) -> List[str]:
        """Copy the first ``count`` incoming arguments into fresh temps.

        Emit this at function entry; the returned registers survive calls.
        """
        return [self.mov(regs.arg_register(i)) for i in range(count)]

    def fresh_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f".{hint}{self._label_counter}"

    # -- blocks ---------------------------------------------------------------

    def label(self, name: str) -> str:
        """Start a new basic block named ``name``; returns the label."""
        if not self._block.instrs and self._block.label.startswith(".fall"):
            # Drop the unused auto fall-through block emit() opened.
            self.func.remove_block(self._block.label)
        self._block = self.func.add_block(name)
        return name

    @property
    def current_block(self):
        return self._block

    def emit(self, instr: ins.Instruction) -> ins.Instruction:
        """Append a raw instruction to the current block.

        Control-transfer instructions end a basic block: after emitting a
        branch (or any terminator) the builder silently opens a fresh
        fall-through block, so CFG edges — including loop back edges — are
        always block-boundary edges.  Calls and ``chk.c`` do not end blocks
        (they fall through in the main thread's CFG).
        """
        emitted = self._block.append(instr)
        if instr.op in (ins.OP_BR, ins.OP_BR_COND) or instr.is_terminator:
            self._block = self.func.add_block(self.fresh_label("fall"))
        return emitted

    # -- arithmetic -----------------------------------------------------------

    def _alu(self, op: str, a: str, b: Optional[str], imm: Optional[int],
             dest: Optional[str], pred: Optional[str]) -> str:
        dest = dest or self.fresh()
        self.emit(ins.alu(op, dest, a, b, imm, pred))
        return dest

    def add(self, a: str, b: Optional[str] = None, imm: Optional[int] = None,
            dest: Optional[str] = None, pred: Optional[str] = None) -> str:
        return self._alu("add", a, b, imm, dest, pred)

    def sub(self, a: str, b: Optional[str] = None, imm: Optional[int] = None,
            dest: Optional[str] = None, pred: Optional[str] = None) -> str:
        return self._alu("sub", a, b, imm, dest, pred)

    def mul(self, a: str, b: Optional[str] = None, imm: Optional[int] = None,
            dest: Optional[str] = None, pred: Optional[str] = None) -> str:
        return self._alu("mul", a, b, imm, dest, pred)

    def and_(self, a: str, b: Optional[str] = None, imm: Optional[int] = None,
             dest: Optional[str] = None) -> str:
        return self._alu("and", a, b, imm, dest, None)

    def or_(self, a: str, b: Optional[str] = None, imm: Optional[int] = None,
            dest: Optional[str] = None) -> str:
        return self._alu("or", a, b, imm, dest, None)

    def xor(self, a: str, b: Optional[str] = None, imm: Optional[int] = None,
            dest: Optional[str] = None) -> str:
        return self._alu("xor", a, b, imm, dest, None)

    def shl(self, a: str, imm: int, dest: Optional[str] = None) -> str:
        return self._alu("shl", a, None, imm, dest, None)

    def shr(self, a: str, imm: int, dest: Optional[str] = None) -> str:
        return self._alu("shr", a, None, imm, dest, None)

    def mov(self, src: str, dest: Optional[str] = None,
            pred: Optional[str] = None) -> str:
        dest = dest or self.fresh()
        self.emit(ins.mov(dest, src=src, pred=pred))
        return dest

    def mov_imm(self, value: int, dest: Optional[str] = None,
                pred: Optional[str] = None) -> str:
        dest = dest or self.fresh()
        self.emit(ins.mov(dest, imm=value, pred=pred))
        return dest

    # -- compares -------------------------------------------------------------

    def cmp(self, relation: str, a: str, b: Optional[str] = None,
            imm: Optional[int] = None, dest: Optional[str] = None) -> str:
        dest = dest or self.fresh_pred()
        self.emit(ins.cmp(relation, dest, a, b, imm))
        return dest

    # -- memory ---------------------------------------------------------------

    def load(self, base: str, offset: int = 0, dest: Optional[str] = None,
             pred: Optional[str] = None) -> str:
        dest = dest or self.fresh()
        self.emit(ins.load(dest, base, offset, pred))
        return dest

    def store(self, base: str, src: str, offset: int = 0,
              pred: Optional[str] = None) -> None:
        self.emit(ins.store(base, src, offset, pred))

    def prefetch(self, base: str, offset: int = 0,
                 pred: Optional[str] = None) -> None:
        self.emit(ins.prefetch(base, offset, pred))

    # -- control flow ---------------------------------------------------------

    def br(self, target: str) -> None:
        self.emit(ins.Instruction(op=ins.OP_BR, target=target))

    def br_cond(self, pred: str, target: str) -> None:
        self.emit(ins.Instruction(op=ins.OP_BR_COND, pred=pred,
                                  target=target))

    def call(self, func_name: str, args: Sequence[str] = (),
             ret: Optional[str] = None) -> Optional[str]:
        """Call ``func_name``; move args into place; return result register.

        ``ret`` names the register to copy the callee's return value into;
        pass ``ret=None`` for void calls.
        """
        for i, src in enumerate(args):
            self.emit(ins.mov(regs.arg_register(i), src=src))
        self.emit(ins.Instruction(op=ins.OP_CALL, target=func_name))
        if ret is not None:
            self.emit(ins.mov(ret, src=regs.RET_VALUE))
            return ret
        return None

    def call_fresh(self, func_name: str, args: Sequence[str] = ()) -> str:
        """Call and capture the return value into a fresh register."""
        dest = self.fresh()
        self.call(func_name, args, ret=dest)
        return dest

    def call_indirect(self, func_id_reg: str, args: Sequence[str] = (),
                      ret: Optional[str] = None) -> Optional[str]:
        """Indirect call through a register holding a function id."""
        for i, src in enumerate(args):
            self.emit(ins.mov(regs.arg_register(i), src=src))
        self.emit(ins.Instruction(op=ins.OP_CALL_INDIRECT,
                                  srcs=(func_id_reg,)))
        if ret is not None:
            self.emit(ins.mov(ret, src=regs.RET_VALUE))
            return ret
        return None

    def ret(self, value: Optional[str] = None) -> None:
        if value is not None:
            self.emit(ins.mov(regs.RET_VALUE, src=value))
        self.emit(ins.Instruction(op=ins.OP_RET))

    def halt(self) -> None:
        self.emit(ins.Instruction(op=ins.OP_HALT))

    def nop(self) -> None:
        self.emit(ins.nop())

    # -- SSP opcodes (used by the emitter and by hand-adapted workloads) ------

    def chk_c(self, stub_label: str) -> None:
        self.emit(ins.Instruction(op=ins.OP_CHK_C, target=stub_label))

    def spawn(self, slice_label: str) -> None:
        self.emit(ins.Instruction(op=ins.OP_SPAWN, target=slice_label))

    def lib_store(self, slot: int, src: str) -> None:
        self.emit(ins.Instruction(op=ins.OP_LIB_ST, srcs=(src,), imm=slot))

    def lib_load(self, slot: int, dest: Optional[str] = None) -> str:
        dest = dest or self.fresh()
        self.emit(ins.Instruction(op=ins.OP_LIB_LD, dest=dest, imm=slot))
        return dest

    def kill(self) -> None:
        self.emit(ins.Instruction(op=ins.OP_KILL))

    def rfi(self) -> None:
        self.emit(ins.Instruction(op=ins.OP_RFI))


def build_function(program: Program, name: str, num_params: int = 0,
                   entry_label: str = "entry") -> FunctionBuilder:
    """Create a function in ``program`` and return a builder for it."""
    return FunctionBuilder(program.add_function(name, num_params),
                           entry_label)
