"""Simulated flat memory with a bump allocator.

Workloads lay out their pointer data structures here before simulation (the
role the OS loader and ``malloc`` play for the paper's benchmarks), and the
simulator's loads/stores read and write it.  Addresses are byte addresses;
storage is word (8-byte) granular, which is the only access size the ISA
defines (Itanium ``ld8``/``st8``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class MemoryError_(Exception):
    """Raised on out-of-range or misaligned access."""


WORD = 8

#: Heap base: leave the zero page unmapped so null-pointer bugs in workloads
#: fault loudly instead of silently reading 0.
HEAP_BASE = 0x1000


class Heap:
    """Word-granular flat memory with bump allocation.

    ``alloc`` hands out 8-byte-aligned chunks; ``load``/``store`` access
    64-bit words.  There is no ``free`` — the paper's kernels only allocate
    during setup.
    """

    def __init__(self, size_bytes: int = 1 << 24):
        if size_bytes % WORD:
            raise ValueError("heap size must be a multiple of 8")
        self.size = size_bytes
        # Sparse storage: word index -> value, zero when absent.  A dense
        # ``[0] * (size // 8)`` list cost more to allocate than a tiny
        # workload takes to simulate, and snapshots pickled megabytes of
        # zeros; workloads only ever touch what they allocate.
        self._words: Dict[int, int] = {}
        self._brk = HEAP_BASE

    def alloc(self, nbytes: int, align: int = WORD) -> int:
        """Allocate ``nbytes`` (rounded up to a word), return the address."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        if align < WORD or align & (align - 1):
            raise ValueError("alignment must be a power of two >= 8")
        self._brk = (self._brk + align - 1) & ~(align - 1)
        addr = self._brk
        self._brk += (nbytes + WORD - 1) & ~(WORD - 1)
        if self._brk > self.size:
            raise MemoryError_(
                f"heap exhausted: brk {self._brk:#x} > size {self.size:#x}")
        return addr

    def alloc_array(self, count: int, elem_bytes: int,
                    align: int = 64) -> int:
        """Allocate an array; defaults to cache-line alignment."""
        return self.alloc(count * elem_bytes, align)

    @property
    def brk(self) -> int:
        """Current top of the allocated heap."""
        return self._brk

    def _index(self, addr: int) -> int:
        if addr % WORD:
            raise MemoryError_(f"misaligned access at {addr:#x}")
        if not HEAP_BASE <= addr < self.size:
            raise MemoryError_(f"access out of range at {addr:#x}")
        return addr >> 3

    def load(self, addr: int) -> int:
        """Read the 64-bit word at ``addr``."""
        return self._words.get(self._index(addr), 0)

    def store(self, addr: int, value: int) -> None:
        """Write the 64-bit word at ``addr``."""
        self._words[self._index(addr)] = value

    def diff(self, other: "Heap", limit: int = 8
             ) -> List[Tuple[int, int, int]]:
        """First ``limit`` word mismatches vs ``other``: (addr, self, other).

        The differential verifier uses this to prove an adapted binary's
        memory effects match the original's.  A size mismatch is reported
        as one final entry carrying the two word counts.
        """
        out: List[Tuple[int, int, int]] = []
        words_a, words_b = self._words, other._words
        n = min(self.size, other.size) // WORD
        touched = set(words_a)
        touched.update(words_b)
        for idx in sorted(touched):
            if idx >= n:
                continue
            a = words_a.get(idx, 0)
            b = words_b.get(idx, 0)
            if a != b:
                out.append((idx * WORD, a, b))
                if len(out) >= limit:
                    return out
        if self.size != other.size:
            out.append((n * WORD, self.size // WORD, other.size // WORD))
        return out

    def valid(self, addr: int) -> bool:
        """True if ``addr`` is a mapped, aligned word address.

        Speculative threads may compute garbage addresses (the paper:
        "prefetching wrong addresses may hurt performance" but must not
        fault); the simulator uses this check to drop such prefetches the
        way Itanium's non-faulting ``lfetch`` does.
        """
        return addr % WORD == 0 and HEAP_BASE <= addr < self.size
