"""Register name spaces and the calling convention of the research ISA.

The ISA is modelled after the Itanium register model the paper assumes
(Section 2.1, Table 1): 128 integer registers, 64 predicate registers per
hardware thread context.  Registers are referred to by their string names
(``"r4"``, ``"p6"``); the integer register ``r0`` and the predicate ``p0``
are hardwired to 0 and True respectively, as on Itanium.

The calling convention mirrors Itanium's stacked-register convention in a
simplified form:

* arguments are passed in ``r32``, ``r33``, ... (``arg_register(i)``),
* the return value is passed in ``r8`` (``RET_VALUE``),
* ``r12`` is the stack pointer (``STACK_POINTER``).

Virtual registers created by :class:`repro.isa.builder.FunctionBuilder` are
drawn from the caller-local range starting at ``FIRST_TEMP``.
"""

from __future__ import annotations

NUM_INT_REGISTERS = 128
NUM_PRED_REGISTERS = 64

ZERO = "r0"
RET_VALUE = "r8"
STACK_POINTER = "r12"
TRUE_PREDICATE = "p0"

FIRST_ARG = 32
MAX_ARGS = 8
FIRST_TEMP = 40


def arg_register(index: int) -> str:
    """Return the register carrying positional argument ``index``."""
    if not 0 <= index < MAX_ARGS:
        raise ValueError(f"argument index {index} out of range [0, {MAX_ARGS})")
    return f"r{FIRST_ARG + index}"


def temp_register(index: int) -> str:
    """Return the ``index``-th temporary register name."""
    reg = FIRST_TEMP + index
    if reg >= NUM_INT_REGISTERS:
        raise ValueError(f"ran out of integer registers (requested temp {index})")
    return f"r{reg}"


def pred_register(index: int) -> str:
    """Return the ``index``-th allocatable predicate register (p1 upward)."""
    reg = 1 + index
    if reg >= NUM_PRED_REGISTERS:
        raise ValueError(f"ran out of predicate registers (requested {index})")
    return f"p{reg}"


def is_int_register(name: str) -> bool:
    """True if ``name`` names an integer register."""
    return name.startswith("r") and name[1:].isdigit()


def is_pred_register(name: str) -> bool:
    """True if ``name`` names a predicate register."""
    return name.startswith("p") and name[1:].isdigit()
