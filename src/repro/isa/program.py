"""Program representation: basic blocks, functions, whole programs.

The post-pass tool "reads in the compiler intermediate representation (IR)
and the control flow graph" where "the IR exactly matches the hardware
instructions in the binary" (Section 2.2).  This module is that
representation: a :class:`Program` is a set of :class:`Function` objects made
of :class:`BasicBlock` lists, and after :meth:`Program.finalize` it is *also*
the binary — a flat instruction array with resolved branch targets that the
simulator executes directly.

Labels are local to their function.  A fully-qualified label
``"func::label"`` may be used from anywhere (the SSP emitter uses this for
slice blocks attached at the end of a function).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from .instructions import (
    Instruction,
    OP_BR,
    OP_BR_COND,
    OP_CALL,
    OP_CHK_C,
    OP_SPAWN,
)


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, bad structure)."""


class BasicBlock:
    """A straight-line sequence of instructions with a single entry label."""

    def __init__(self, label: str, instrs: Optional[List[Instruction]] = None):
        self.label = label
        self.instrs: List[Instruction] = list(instrs) if instrs else []

    def append(self, instr: Instruction) -> Instruction:
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it transfers control, else ``None``."""
        if self.instrs and (self.instrs[-1].is_branch
                            or self.instrs[-1].is_terminator):
            return self.instrs[-1]
        return None

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BasicBlock({self.label!r}, {len(self.instrs)} instrs)"


class Function:
    """A named function: an ordered list of basic blocks.

    The block order is the layout order in the binary; fall-through edges go
    to the next block in this order.
    """

    def __init__(self, name: str, num_params: int = 0):
        self.name = name
        self.num_params = num_params
        self.blocks: List[BasicBlock] = []
        self._by_label: Dict[str, BasicBlock] = {}

    def add_block(self, label: str, index: Optional[int] = None) -> BasicBlock:
        """Create and append (or insert) a new empty block."""
        if label in self._by_label:
            raise ProgramError(f"duplicate label {label!r} in {self.name}")
        block = BasicBlock(label)
        if index is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(index, block)
        self._by_label[label] = block
        return block

    def remove_block(self, label: str) -> None:
        """Remove an (empty) block — used by the builder to drop unused
        auto-generated fall-through blocks."""
        block = self.block(label)
        if block.instrs:
            raise ProgramError(f"refusing to remove non-empty block {label!r}")
        self.blocks.remove(block)
        del self._by_label[label]

    def block(self, label: str) -> BasicBlock:
        try:
            return self._by_label[label]
        except KeyError:
            raise ProgramError(f"no block {label!r} in {self.name}") from None

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ProgramError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def instructions(self) -> Iterable[Instruction]:
        for block in self.blocks:
            yield from block.instrs

    def successors(self, block: BasicBlock) -> List[str]:
        """Labels of CFG successor blocks (intra-procedural).

        Calls are treated as falling through (the call returns); ``chk.c``
        is treated as a nop edge-wise — its recovery stub is not part of the
        main thread's CFG for analysis purposes, matching the paper's view
        that the adaptation does not perturb main-thread control flow.
        """
        succs: List[str] = []
        term = block.instrs[-1] if block.instrs else None
        layout_index = self.blocks.index(block)
        falls_through = True
        if term is not None:
            if term.op == OP_BR:
                succs.append(term.target)
                falls_through = False
            elif term.op == OP_BR_COND:
                succs.append(term.target)
            elif term.is_terminator:
                falls_through = False
        if falls_through and layout_index + 1 < len(self.blocks):
            succs.append(self.blocks[layout_index + 1].label)
        return succs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Function({self.name!r}, {len(self.blocks)} blocks)"


class Program:
    """A whole program: functions plus, after :meth:`finalize`, the binary.

    Finalisation flattens all functions into one linear instruction array
    (``code``), resolves labels and call targets to absolute indices
    (``branch_target``), assigns binary addresses, and numbers functions for
    indirect calls.  Analyses and both timing simulators work on the
    finalised form.
    """

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self.functions: Dict[str, Function] = {}
        #: lfetch uid -> delinquent-load uid it prefetches for, filled by
        #: the SSP emitter; the simulators hand it to the memory system so
        #: prefetch coverage/accuracy/timeliness can be attributed per
        #: delinquent load.
        self.prefetch_sources: Dict[int, int] = {}
        # Populated by finalize():
        self.code: List[Instruction] = []
        self.branch_target: Dict[int, int] = {}
        self.index_of_label: Dict[str, int] = {}
        self.function_of_index: List[str] = []
        self.block_of_index: List[str] = []
        self.function_entry: Dict[str, int] = {}
        self.function_id: Dict[str, int] = {}
        self.function_by_id: List[str] = []
        self._finalized = False

    # -- construction --------------------------------------------------------

    def add_function(self, name: str, num_params: int = 0) -> Function:
        if name in self.functions:
            raise ProgramError(f"duplicate function {name!r}")
        func = Function(name, num_params)
        self.functions[name] = func
        self._finalized = False
        return func

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise ProgramError(f"no function {name!r}") from None

    def instructions(self) -> Iterable[Instruction]:
        for func in self.functions.values():
            yield from func.instructions()

    def find_instruction(self, uid: int) -> Tuple[Function, BasicBlock, int]:
        """Locate an instruction by uid: (function, block, index in block)."""
        for func in self.functions.values():
            for block in func.blocks:
                for i, instr in enumerate(block.instrs):
                    if instr.uid == uid:
                        return func, block, i
        raise ProgramError(f"no instruction with uid {uid}")

    # -- finalisation ---------------------------------------------------------

    def _qualified(self, func: Function, label: str) -> str:
        return label if "::" in label else f"{func.name}::{label}"

    def finalize(self) -> "Program":
        """Flatten into the executable binary form.  Idempotent."""
        self.code = []
        self.branch_target = {}
        self.index_of_label = {}
        self.function_of_index = []
        self.block_of_index = []
        self.function_entry = {}
        self.function_id = {}
        self.function_by_id = []

        for fid, (name, func) in enumerate(self.functions.items()):
            self.function_id[name] = fid
            self.function_by_id.append(name)
            if func.blocks:
                self.function_entry[name] = len(self.code)
            for block in func.blocks:
                self.index_of_label[self._qualified(func, block.label)] = len(
                    self.code)
                for instr in block.instrs:
                    instr.addr = len(self.code)
                    self.code.append(instr)
                    self.function_of_index.append(name)
                    self.block_of_index.append(block.label)

        for idx, instr in enumerate(self.code):
            if instr.op in (OP_BR, OP_BR_COND, OP_CHK_C, OP_SPAWN):
                func_name = self.function_of_index[idx]
                key = instr.target if "::" in (instr.target or "") else \
                    f"{func_name}::{instr.target}"
                if key not in self.index_of_label:
                    raise ProgramError(
                        f"unresolved label {instr.target!r} in {func_name}")
                self.branch_target[idx] = self.index_of_label[key]
            elif instr.op == OP_CALL:
                if instr.target not in self.function_entry:
                    raise ProgramError(f"call to unknown {instr.target!r}")
                self.branch_target[idx] = self.function_entry[instr.target]
        self._finalized = True
        # Invalidate any pre-decoded issue table (repro.isa.decode): the
        # tool patches instructions in place and re-finalises, and the
        # decode cache keys on this counter.
        self._decode_version = getattr(self, "_decode_version", 0) + 1
        return self

    @property
    def finalized(self) -> bool:
        return self._finalized

    def label_index(self, func_name: str, label: str) -> int:
        """Absolute code index of ``label`` in ``func_name``."""
        key = label if "::" in label else f"{func_name}::{label}"
        try:
            return self.index_of_label[key]
        except KeyError:
            raise ProgramError(f"unknown label {key!r}") from None

    # -- cloning --------------------------------------------------------------

    def clone(self) -> "Program":
        """Deep copy preserving instruction uids.

        The post-pass tool clones the input binary before adaptation so the
        original remains runnable; uids are preserved so that profiles
        gathered on the original still name the same instructions in the
        clone (the paper's tool likewise keys profile data to binary
        addresses that survive adaptation).
        """
        other = Program(entry=self.entry)
        other.prefetch_sources = dict(self.prefetch_sources)
        for name, func in self.functions.items():
            new_func = other.add_function(name, func.num_params)
            for block in func.blocks:
                new_block = new_func.add_block(block.label)
                for instr in block.instrs:
                    new_block.append(dataclasses.replace(instr, addr=-1))
        return other

    # -- pretty printing ------------------------------------------------------

    def disassemble(self) -> str:
        """A readable listing of the whole program."""
        lines: List[str] = []
        for func in self.functions.values():
            lines.append(f".func {func.name} ({func.num_params} params)")
            for block in func.blocks:
                lines.append(f"{block.label}:")
                for instr in block.instrs:
                    addr = f"{instr.addr:5d}  " if instr.addr >= 0 else "       "
                    lines.append(f"  {addr}{instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = sum(len(b) for f in self.functions.values() for b in f.blocks)
        return f"Program({len(self.functions)} functions, {n} instrs)"
