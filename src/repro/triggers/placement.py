"""Trigger-point placement in the main thread (Section 3.3).

"The set of triggers should form a cut set on the control flow graph to
ensure that each execution path leading to the delinquent load has only one
trigger point. ... we only consider the nodes that control-dominate the
delinquent loads as potential trigger points ... the tool would first place
the trigger after the instruction that produces the last live-in to the
slice, and then move the trigger points to the immediate control dominant
nodes if the slack value of the immediate dominant node remains the same."

Placement policy implemented here:

* **chaining SP on a loop** — one trigger on every loop-entry edge (the cut
  set over paths into the loop), positioned in the predecessor block after
  the last live-in producer; hoisted to dominating blocks only when that
  does not move it past a live-in producer.
* **basic SP on a loop** — a trigger at the top of the loop header: the
  main thread re-triggers every iteration for the next one (Section 3.2.2).
* **any SP on a procedure** — a trigger in the entry block after the last
  live-in producer (for formals, after the parameter copies).

``minimizing the live-in copying takes precedence over increasing the
slack``: the trigger is never hoisted above a live-in def.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..isa.program import Function, Program
from ..analysis.cfg import CFG
from ..analysis.dataflow import instruction_defs
from ..analysis.regions import LOOP
from ..obs.tracer import Tracer, ensure_tracer
from ..scheduling.schedule import BASIC, CHAINING, ScheduledSlice


class TriggerPoint:
    """Where a chk.c goes: before ``function.block.instrs[index]``."""

    def __init__(self, function: str, block: str, index: int):
        self.function = function
        self.block = block
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TriggerPoint({self.function}:{self.block}@{self.index})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, TriggerPoint)
                and (self.function, self.block, self.index)
                == (other.function, other.block, other.index))

    def __hash__(self) -> int:
        return hash((self.function, self.block, self.index))


def _last_live_in_def_index(func: Function, label: str,
                            live_ins: Set[str]) -> Optional[int]:
    """Index just *after* the last def of any live-in in the block."""
    block = func.block(label)
    last = None
    for i, instr in enumerate(block.instrs):
        for reg in instruction_defs(instr):
            if reg in live_ins:
                last = i
    return None if last is None else last + 1


def _place_in_block(func: Function, label: str,
                    live_ins: Set[str]) -> TriggerPoint:
    """Trigger after the last live-in producer in ``label``.

    When no instruction in the block produces a live-in, every live-in is
    already available on block entry (formals, or values produced in a
    dominator), so the trigger goes at the block *start* — the earliest
    legal point, which maximises slack.  Placing it at the block end
    instead would move it past whatever the block computes, including —
    for a procedure whose delinquent load sits in its entry block — past
    the very load the slice prefetches for, making the prefetch
    permanently late.
    """
    after_def = _last_live_in_def_index(func, label, live_ins)
    if after_def is not None:
        return TriggerPoint(func.name, label, after_def)
    return TriggerPoint(func.name, label, 0)


def _hoisted_placement(func: Function, cfg: CFG, start_label: str,
                       live_ins: Set[str]) -> TriggerPoint:
    """Place after the last live-in producer, hoisting up the dominator
    chain ("move the trigger points to the immediate control dominant
    nodes").

    Walks from ``start_label`` toward the entry; the innermost dominating
    block that produces a live-in hosts the trigger, immediately after
    that producer — the earliest point where all live-ins exist, which
    maximises slack (e.g. launching a chain *before* a recursive descent
    whose return leads to the sliced loop).
    """
    from ..analysis.dominance import dominator_tree

    dom = dominator_tree(cfg)
    for label in dom.dominators_of(start_label):
        if not func.has_block(label):
            continue
        idx = _last_live_in_def_index(func, label, live_ins)
        if idx is not None:
            return TriggerPoint(func.name, label, idx)
    return _place_in_block(func, start_label, live_ins)


def place_triggers(program: Program, scheduled: ScheduledSlice,
                   cfgs: Dict[str, CFG],
                   tracer: Optional[Tracer] = None) -> List[TriggerPoint]:
    """Trigger points for one scheduled slice."""
    tracer = ensure_tracer(tracer)
    region = scheduled.region_slice.region
    func = program.function(region.function)
    cfg = cfgs[region.function]
    live_ins = set(scheduled.live_ins)

    if region.kind == LOOP and scheduled.kind == CHAINING:
        header = region.loop.header
        entry_preds = [p for p in cfg.predecessors(header)
                       if p not in region.blocks]
        if not entry_preds:
            entry_preds = [func.entry.label]
        points = sorted({_hoisted_placement(func, cfg, pred, live_ins)
                         for pred in set(entry_preds)},
                        key=lambda p: (p.block, p.index))
        policy = "loop-entry-cut"
    elif region.kind == LOOP and scheduled.kind == BASIC:
        # Per-iteration trigger at the loop header (live-in carried values
        # are available at the top of every iteration).
        points = [TriggerPoint(func.name, region.loop.header, 0)]
        policy = "loop-header"
    else:
        # Procedure region: after the last live-in producer in the entry
        # block.
        points = [_place_in_block(func, func.entry.label, live_ins)]
        policy = "procedure-entry"

    tracer.counter("triggers.placed").add(len(points))
    for point in points:
        tracer.event("trigger_point", category="triggers",
                     load_uid=scheduled.region_slice.load.uid,
                     function=point.function, block=point.block,
                     index=point.index, policy=policy)
    return points
