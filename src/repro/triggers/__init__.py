"""Trigger identification and placement (Section 3.3)."""

from .placement import TriggerPoint, place_triggers
from .mincut import edge_frequencies, optimal_trigger_cut

__all__ = ["TriggerPoint", "place_triggers", "edge_frequencies",
           "optimal_trigger_cut"]
