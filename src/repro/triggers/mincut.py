"""Optimal trigger cuts via max-flow min-cut (Section 3.3).

"As infrequent edges are filtered out in a pre-pass, the optimal solution
is to find the minimum total cost of the cut weighted by the frequency,
Σ_i (f_i * c_i) ... if we map the problem to the max-flow min-cut problem
by representing cost as capacity, the complexity for finding the optimal
cut is polynomial."

The paper notes that computing the precise per-edge triggering cost is
hard, so its tool falls back to the conservative dominance-based placement
(:mod:`repro.triggers.placement`).  This module provides the optimal
formulation as an alternative/validation mode: edges are weighted by
profiled frequency times a unit triggering cost, infrequent edges are
filtered, and the min cut separating the function entry from the delinquent
load's block is returned.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from ..analysis.cfg import CFG, EXIT

#: Edges below this fraction of the hottest edge are filtered pre-cut.
INFREQUENT_FRACTION = 0.001


def edge_frequencies(cfg: CFG, block_freq: Dict[str, int]
                     ) -> Dict[Tuple[str, str], float]:
    """Approximate edge frequencies from block counts: a block's count is
    split evenly over its successors (sufficient for cut weighting)."""
    freqs: Dict[Tuple[str, str], float] = {}
    for src in cfg.labels:
        succs = [s for s in cfg.successors(src)]
        if not succs:
            continue
        share = block_freq.get(src, 0) / len(succs)
        for dst in succs:
            freqs[(src, dst)] = share
    return freqs


def optimal_trigger_cut(cfg: CFG, block_freq: Dict[str, int],
                        target_block: str,
                        cost_per_trigger: float = 1.0
                        ) -> List[Tuple[str, str]]:
    """The min-cost edge cut separating the entry from ``target_block``.

    Every returned edge carries exactly one trigger; together they cover
    each path from the entry to the delinquent load exactly once.
    """
    freqs = edge_frequencies(cfg, block_freq)
    hottest = max(freqs.values(), default=0.0)
    graph = nx.DiGraph()
    for (src, dst), freq in freqs.items():
        if dst == EXIT:
            continue
        if hottest and freq <= hottest * INFREQUENT_FRACTION:
            continue
        # Cost = frequency * per-trigger cost; +1 epsilon keeps zero-freq
        # edges cuttable but non-free.
        graph.add_edge(src, dst,
                       capacity=freq * cost_per_trigger + 1e-9)
    if target_block not in graph or cfg.entry not in graph:
        return []
    if not nx.has_path(graph, cfg.entry, target_block):
        return []
    _, (reachable, unreachable) = nx.minimum_cut(graph, cfg.entry,
                                                 target_block)
    cut: List[Tuple[str, str]] = []
    for src in reachable:
        for dst in graph.successors(src):
            if dst in unreachable:
                cut.append((src, dst))
    return sorted(cut)
