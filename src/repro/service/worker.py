"""The service worker: pull leases, dedupe through the cache, simulate.

A :class:`ServiceWorker` is the miss path of the batch service.  Its
loop per job is:

1. claim a lease from the :class:`~repro.service.queue.JobQueue`
   (``O_EXCL`` lease file = in-flight dedupe);
2. look the spec up in the shared :class:`CacheBackend` — a hit means
   some other worker (or an earlier batch) already paid for this
   simulation, so the job completes as a **dedupe** without executing;
3. otherwise execute it — the default unit of work is
   :func:`repro.runner.worker.execute_task` with the *lease file as the
   heartbeat path*, so the same machinery that keeps the resilience
   watchdog fed keeps the lease visible as live — and write the result
   through the backend before retiring the job.

With a :class:`~repro.resilience.supervisor.ResilienceConfig` the
worker applies the single-machine supervisor's discipline at fleet
scope:

* **checkpoint/resume** — checkpoints land under
  ``<service-root>/checkpoints`` (shared, like everything else under
  the root), and a stolen or retried lease resumes from the previous
  owner's newest intact checkpoint, so a SIGKILL mid-job costs the
  fleet only the cycles since the last checkpoint and still lands on
  byte-identical SimStats;
* **degradation ladder** — a budget/OOM blowout walks the job down
  full → basic → top1 → unadapted *inside the lease*.  A degraded
  result is cached under the degraded spec's own content hash (it
  never masquerades as the full-capability result); the done record
  publishes the rung and the executed spec so clients can follow the
  redirect.

Run one worker per core per host; any number of hosts sharing the
service root cooperate through the same queue.  A worker crash merely
lets its lease go stale (or its pid be probed as dead); the job is
re-executed elsewhere (at-least-once), and content addressing makes
the duplicate write byte-identical.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from pathlib import Path
from typing import Callable, Dict, Optional, Set, Tuple

from ..guard import faultinject
from ..resilience.ladder import STEP_FULL, degrade_spec, ladder_steps
from ..resilience.supervisor import (
    _BUDGET_KINDS,
    ResilienceConfig,
    classify_failure,
)
from ..runner.spec import RunSpec
from ..runner.worker import WorkerTask, execute_spec, execute_task
from .backend import CacheBackend
from .queue import JobQueue, Lease, default_worker_id

#: Exit status of a ``worker.crash`` chaos death (``os._exit`` — no
#: cleanup, no summary, the lease left dangling; as close to SIGKILL as
#: a site can self-inflict).
CRASH_EXIT_STATUS = 23


class ServiceWorker:
    """One queue consumer bound to a shared backend."""

    def __init__(self, queue: JobQueue, backend: CacheBackend,
                 task_fn: Callable[..., Dict] = execute_spec,
                 telemetry=None,
                 worker_id: Optional[str] = None,
                 resilience: Optional[ResilienceConfig] = None):
        """
        Args:
            queue: the shared job queue.
            backend: the shared result store (the dedupe authority).
            task_fn: spec -> payload unit of work.  The default
                ``execute_spec`` is upgraded to a heartbeating
                ``execute_task`` automatically; a custom ``task_fn``
                (tests, alternative executors) is called as
                ``task_fn(spec)`` after one lease beat.
            telemetry: optional
                :class:`~repro.runner.telemetry.RunnerTelemetry`
                receiving launch/complete/failure events for jobs this
                worker executes (dedupes are left to the batch client,
                which knows whose batch they saved).
            worker_id: stable tag for lease/done records; defaults to
                ``<hostname>-<pid>``.
            resilience: per-job supervisor discipline (checkpoint
                cadence, resume, wall-clock/RSS budgets, ladder
                descent).  None = execute plainly, as before.
        """
        self.queue = queue
        self.backend = backend
        self.task_fn = task_fn
        self.telemetry = telemetry
        self.worker_id = worker_id or default_worker_id()
        self.resilience = resilience
        #: Shared checkpoint namespace: stolen leases resume from the
        #: victim's checkpoints through the same service root.
        self.checkpoint_root = Path(queue.root) / "checkpoints"
        self.started = time.time()
        # Counters mirrored into the summary file for cross-process
        # assertions ("exactly one simulation per unique spec hash").
        self.executed = 0
        self.deduped = 0
        self.failures = 0
        self.requeues = 0
        self.stolen = 0
        self.degraded = 0
        self.resumes = 0
        self.checkpoints = 0
        #: step -> count of jobs that completed at that ladder rung
        #: (full-capability completions are not recorded here).
        self.ladder: Dict[str, int] = {}
        #: Hashes this worker itself simulated / terminally failed —
        #: the batch client uses these to avoid double-counting
        #: telemetry for results it harvests.
        self.executed_hashes: Set[str] = set()
        self.failed_hashes: Set[str] = set()

    # -- one job ---------------------------------------------------------------------

    def step(self, prefer=None) -> Optional[str]:
        """Process at most one job; returns its hash, or None if starved."""
        lease = self.queue.claim(self.worker_id, prefer=prefer)
        if lease is None:
            return None
        if lease.stolen:
            self.stolen += 1
        return self._process(lease)

    def _process(self, lease: Lease) -> str:
        spec, digest = lease.spec, lease.hash
        if faultinject.fires("worker.crash"):
            # Chaos: die holding the lease, before any work lands.
            # Recovery is the dead-pid probe / visibility timeout: some
            # other worker steals the lease and re-executes.
            os._exit(CRASH_EXIT_STATUS)
        entry = self.backend.get(spec)
        if entry is not None:
            self.deduped += 1
            lease.complete(executed=False,
                           wall_time=entry.get("wall_time", 0.0),
                           worker=self.worker_id)
            return digest
        if self.telemetry is not None:
            self.telemetry.record_launch(spec.label())
        try:
            payload, executed_spec, step = self._execute(spec, lease)
        except Exception as exc:  # noqa: BLE001 - routed to the queue
            message = f"{type(exc).__name__}: {exc}"
            fault_site = (exc.site if isinstance(
                exc, faultinject.InjectedFault) else None)
            requeued = lease.fail(
                message, worker=self.worker_id, fault_site=fault_site,
                traceback_text=traceback.format_exc(limit=8))
            if requeued:
                self.requeues += 1
            else:
                self.failures += 1
                self.failed_hashes.add(digest)
                if self.telemetry is not None:
                    self.telemetry.record_failure(spec.label(), message,
                                                  lease.attempt)
            return digest
        wall = payload.get("wall_time", 0.0)
        res_record = payload.get("resilience") or {}
        self.checkpoints += int(res_record.get("checkpoints") or 0)
        resumed_from = res_record.get("resumed_from_cycle")
        if resumed_from is not None:
            self.resumes += 1
            if self.telemetry is not None:
                self.telemetry.record_resume(spec.label(), resumed_from)
        metrics = dict(payload.get("metrics") or {})
        meta: Optional[Dict] = None
        if step != STEP_FULL:
            # Same convention as Runner._run_supervised: the rung rides
            # in the cached metrics, and (because the degraded result
            # lives under its own content hash) the done record carries
            # the redirect clients need to find it.
            self.degraded += 1
            self.ladder[step] = self.ladder.get(step, 0) + 1
            resilience_meta = {"ladder_step": step}
            if res_record.get("reasons"):
                resilience_meta["reasons"] = list(res_record["reasons"])
            metrics["resilience"] = resilience_meta
            meta = {
                "ladder_step": step,
                "executed_spec": executed_spec.key(),
                "executed_hash": executed_spec.content_hash(),
            }
        if resumed_from is not None:
            meta = dict(meta or {})
            meta["resumed_from_cycle"] = resumed_from
        self.backend.put(executed_spec, payload["stats"], wall,
                         metrics=metrics or None)
        if faultinject.fires("worker.crash"):
            # Chaos, late flavour: die after the backend put but before
            # the done record.  Recovery: the next claimer's backend
            # lookup hits, and the job completes as a dedupe.
            os._exit(CRASH_EXIT_STATUS)
        lease.complete(executed=True, wall_time=wall,
                       worker=self.worker_id, meta=meta)
        self.executed += 1
        self.executed_hashes.add(digest)
        if self.telemetry is not None:
            self.telemetry.record_complete(spec.label(), wall,
                                           lease.attempt, digest)
        return digest

    def _execute(self, spec: RunSpec,
                 lease: Lease) -> Tuple[Dict, RunSpec, str]:
        """One supervised execution: (payload, executed spec, rung)."""
        if self.task_fn is not execute_spec:
            lease.beat(stage="execute")
            return self.task_fn(spec), spec, STEP_FULL
        cfg = self.resilience
        # The lease file doubles as the heartbeat file: the worker's
        # periodic beats (every checkpoint / progress cadence) are
        # exactly what keeps the lease from being stolen mid-simulation.
        if cfg is None:
            payload = execute_task(WorkerTask(
                spec=spec, attempt=lease.attempt,
                heartbeat_path=str(lease.path)))
            return payload, spec, STEP_FULL
        checkpointing = bool(cfg.checkpoint_every)
        # A stolen or retried lease means a previous owner may have left
        # checkpoints behind — resume rather than restart.
        resume = checkpointing and (cfg.resume or lease.stolen
                                    or lease.attempt > 1)
        steps = ladder_steps(spec)
        reasons: list = []
        for idx, step in enumerate(steps):
            executed_spec = degrade_spec(spec, step)
            try:
                payload = execute_task(WorkerTask(
                    spec=executed_spec, attempt=lease.attempt,
                    heartbeat_path=str(lease.path),
                    checkpoint_every=cfg.checkpoint_every,
                    checkpoint_root=(str(self.checkpoint_root)
                                     if checkpointing else None),
                    resume=resume,
                    deadline=cfg.deadline,
                    rss_budget_mb=cfg.rss_budget_mb))
            except Exception as exc:  # noqa: BLE001 - classified below
                kind = classify_failure(exc)
                if kind in _BUDGET_KINDS and idx + 1 < len(steps):
                    # Resource pressure: the same capability level will
                    # blow the same budget — descend the ladder now.
                    reasons.append(f"{step}: {kind}: {exc}")
                    if self.telemetry is not None:
                        self.telemetry.record_degraded(
                            spec.label(), steps[idx + 1], kind)
                    lease.beat(stage=f"degrade:{steps[idx + 1]}")
                    continue
                raise
            if reasons:
                payload.setdefault("resilience", {})["reasons"] = reasons
            return payload, executed_spec, step
        raise RuntimeError(  # pragma: no cover - unreachable by design
            f"{spec.label()}: degradation ladder exhausted")

    # -- the loop --------------------------------------------------------------------

    def drain(self, prefer=None, max_jobs: Optional[int] = None,
              idle_exit: Optional[float] = None,
              poll: float = 0.1) -> int:
        """Consume jobs until the queue starves; returns jobs processed.

        With ``idle_exit`` the worker lingers that many seconds after
        the queue empties (a daemon-ish mode for CI: it survives gaps
        between submissions); without it, one starved claim ends the
        drain.  ``max_jobs`` bounds the total for tests.
        """
        processed = 0
        idle_since: Optional[float] = None
        while max_jobs is None or processed < max_jobs:
            digest = self.step(prefer=prefer)
            if digest is not None:
                processed += 1
                idle_since = None
                continue
            if idle_exit is None:
                break
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if now - idle_since > idle_exit:
                break
            time.sleep(poll)
        return processed

    # -- summary ---------------------------------------------------------------------

    def summary(self) -> Dict:
        doc = {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "started": self.started,
            "finished": time.time(),
            "executed": self.executed,
            "deduped": self.deduped,
            "failures": self.failures,
            "requeues": self.requeues,
            "stolen_leases": self.stolen,
            "degraded": self.degraded,
            "ladder": dict(self.ladder),
            "resumes": self.resumes,
            "checkpoints": self.checkpoints,
            "backend": self.backend.counters_snapshot(),
        }
        faults = faultinject.snapshot()
        if faults is not None:
            doc["faults"] = faults
        return doc

    def write_summary(self, path: Optional[os.PathLike] = None) -> Path:
        """Persist the counters (default ``<root>/workers/<id>.json``)
        so a multi-process run can audit who simulated what.

        Crash-safe like :meth:`ResultCache.put`: private temp file,
        flush + fsync, atomic rename — a reader (``collect_fleet``)
        sees the old complete summary or the new one, never a torn one.
        """
        if path is None:
            workers_dir = self.queue.root / "workers"
            workers_dir.mkdir(parents=True, exist_ok=True)
            path = workers_dir / f"{self.worker_id}.json"
        path = Path(path)
        blob = json.dumps(self.summary(), sort_keys=True, indent=2)
        if faultinject.fires("worker.summary.torn"):
            # Chaos: a half-written summary at the final path (the
            # pre-hardening failure mode).  collect_fleet must skip and
            # count it, never raise.
            path.write_text(blob[:max(1, len(blob) // 2)],
                            encoding="utf-8")
            return path
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path
