"""The service worker: pull leases, dedupe through the cache, simulate.

A :class:`ServiceWorker` is the miss path of the batch service.  Its
loop per job is:

1. claim a lease from the :class:`~repro.service.queue.JobQueue`
   (``O_EXCL`` lease file = in-flight dedupe);
2. look the spec up in the shared :class:`CacheBackend` — a hit means
   some other worker (or an earlier batch) already paid for this
   simulation, so the job completes as a **dedupe** without executing;
3. otherwise execute it — the default unit of work is
   :func:`repro.runner.worker.execute_task` with the *lease file as the
   heartbeat path*, so the same machinery that keeps the resilience
   watchdog fed keeps the lease visible as live — and write the result
   through the backend before retiring the job.

Run one worker per core per host; any number of hosts sharing the
service root cooperate through the same queue.  A worker crash merely
lets its lease go stale; the job is re-executed elsewhere
(at-least-once), and content addressing makes the duplicate write
byte-identical.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Set

from ..runner.worker import WorkerTask, execute_spec, execute_task
from .backend import CacheBackend
from .queue import JobQueue, Lease, default_worker_id


class ServiceWorker:
    """One queue consumer bound to a shared backend."""

    def __init__(self, queue: JobQueue, backend: CacheBackend,
                 task_fn: Callable[..., Dict] = execute_spec,
                 telemetry=None,
                 worker_id: Optional[str] = None):
        """
        Args:
            queue: the shared job queue.
            backend: the shared result store (the dedupe authority).
            task_fn: spec -> payload unit of work.  The default
                ``execute_spec`` is upgraded to a heartbeating
                ``execute_task`` automatically; a custom ``task_fn``
                (tests, alternative executors) is called as
                ``task_fn(spec)`` after one lease beat.
            telemetry: optional
                :class:`~repro.runner.telemetry.RunnerTelemetry`
                receiving launch/complete/failure events for jobs this
                worker executes (dedupes are left to the batch client,
                which knows whose batch they saved).
            worker_id: stable tag for lease/done records; defaults to
                ``<hostname>-<pid>``.
        """
        self.queue = queue
        self.backend = backend
        self.task_fn = task_fn
        self.telemetry = telemetry
        self.worker_id = worker_id or default_worker_id()
        self.started = time.time()
        # Counters mirrored into the summary file for cross-process
        # assertions ("exactly one simulation per unique spec hash").
        self.executed = 0
        self.deduped = 0
        self.failures = 0
        self.requeues = 0
        self.stolen = 0
        #: Hashes this worker itself simulated / terminally failed —
        #: the batch client uses these to avoid double-counting
        #: telemetry for results it harvests.
        self.executed_hashes: Set[str] = set()
        self.failed_hashes: Set[str] = set()

    # -- one job ---------------------------------------------------------------------

    def step(self, prefer=None) -> Optional[str]:
        """Process at most one job; returns its hash, or None if starved."""
        lease = self.queue.claim(self.worker_id, prefer=prefer)
        if lease is None:
            return None
        if lease.stolen:
            self.stolen += 1
        return self._process(lease)

    def _process(self, lease: Lease) -> str:
        spec, digest = lease.spec, lease.hash
        entry = self.backend.get(spec)
        if entry is not None:
            self.deduped += 1
            lease.complete(executed=False,
                           wall_time=entry.get("wall_time", 0.0),
                           worker=self.worker_id)
            return digest
        if self.telemetry is not None:
            self.telemetry.record_launch(spec.label())
        try:
            payload = self._execute(spec, lease)
        except Exception as exc:  # noqa: BLE001 - routed to the queue
            message = f"{type(exc).__name__}: {exc}"
            requeued = lease.fail(message, worker=self.worker_id)
            if requeued:
                self.requeues += 1
            else:
                self.failures += 1
                self.failed_hashes.add(digest)
                if self.telemetry is not None:
                    self.telemetry.record_failure(spec.label(), message,
                                                  lease.attempt)
            return digest
        wall = payload.get("wall_time", 0.0)
        self.backend.put(spec, payload["stats"], wall,
                         metrics=payload.get("metrics"))
        lease.complete(executed=True, wall_time=wall,
                       worker=self.worker_id)
        self.executed += 1
        self.executed_hashes.add(digest)
        if self.telemetry is not None:
            self.telemetry.record_complete(spec.label(), wall,
                                           lease.attempt, digest)
        return digest

    def _execute(self, spec, lease: Lease) -> Dict:
        if self.task_fn is execute_spec:
            # The lease file doubles as the heartbeat file: the worker's
            # periodic beats (resilience machinery, every checkpoint /
            # progress cadence) are exactly what keeps the lease from
            # being stolen mid-simulation.
            return execute_task(WorkerTask(spec=spec,
                                           attempt=lease.attempt,
                                           heartbeat_path=str(lease.path)))
        lease.beat(stage="execute")
        return self.task_fn(spec)

    # -- the loop --------------------------------------------------------------------

    def drain(self, prefer=None, max_jobs: Optional[int] = None,
              idle_exit: Optional[float] = None,
              poll: float = 0.1) -> int:
        """Consume jobs until the queue starves; returns jobs processed.

        With ``idle_exit`` the worker lingers that many seconds after
        the queue empties (a daemon-ish mode for CI: it survives gaps
        between submissions); without it, one starved claim ends the
        drain.  ``max_jobs`` bounds the total for tests.
        """
        processed = 0
        idle_since: Optional[float] = None
        while max_jobs is None or processed < max_jobs:
            digest = self.step(prefer=prefer)
            if digest is not None:
                processed += 1
                idle_since = None
                continue
            if idle_exit is None:
                break
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if now - idle_since > idle_exit:
                break
            time.sleep(poll)
        return processed

    # -- summary ---------------------------------------------------------------------

    def summary(self) -> Dict:
        return {
            "worker": self.worker_id,
            "pid": os.getpid(),
            "started": self.started,
            "finished": time.time(),
            "executed": self.executed,
            "deduped": self.deduped,
            "failures": self.failures,
            "requeues": self.requeues,
            "stolen_leases": self.stolen,
            "backend": self.backend.counters_snapshot(),
        }

    def write_summary(self, path: Optional[os.PathLike] = None) -> Path:
        """Persist the counters (default ``<root>/workers/<id>.json``)
        so a multi-process run can audit who simulated what."""
        if path is None:
            workers_dir = self.queue.root / "workers"
            workers_dir.mkdir(parents=True, exist_ok=True)
            path = workers_dir / f"{self.worker_id}.json"
        path = Path(path)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.summary(), sort_keys=True,
                                  indent=2), encoding="utf-8")
        os.replace(tmp, path)
        return path
