"""Cache backend abstraction: local, sharded and tiered result stores.

The content-addressed result cache is the product of the batch service —
simulation is only the miss path — so this module generalises the
single-directory :class:`~repro.runner.cache.ResultCache` into a
:class:`CacheBackend` protocol with three implementations:

* :class:`LocalDirBackend` — the classic one-directory store, format
  unchanged (every existing ``.repro-cache`` keeps working);
* :class:`ShardedBackend` — fans entries across N roots by spec-hash
  prefix, so a shared store can be spread over directories, mount
  points or (eventually) remote volumes without a rehash;
* :class:`TieredBackend` — a local write-through tier in front of a
  shared root: reads hit the local tier first and promote shared hits
  into it, writes land in both, so each host converges on a hot local
  working set while the shared root stays authoritative.

Every backend owns :class:`~repro.runner.cache.CacheCounters` whose
hit/miss/put/evict/quarantine/promotion snapshot flows through
:class:`~repro.runner.telemetry.RunnerTelemetry` into metrics documents
and the ``repro report`` renderer.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Sequence

try:
    from typing import Protocol
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore[assignment]

from ..runner.cache import CacheCounters, ResultCache
from ..runner.spec import RunSpec

#: Environment variables configuring the service-shaped backend.
ENV_SERVICE_ROOT = "REPRO_SERVICE_ROOT"
ENV_SERVICE_SHARDS = "REPRO_SERVICE_SHARDS"
ENV_SERVICE_LOCAL_TIER = "REPRO_SERVICE_LOCAL_TIER"

#: Default service root when the CLI is used without --root or the env.
DEFAULT_SERVICE_ROOT = ".repro-service"

#: Hash-prefix hex digits used to pick a shard (16**8 buckets folded
#: onto N shards keeps the distribution uniform for any practical N).
_SHARD_PREFIX_DIGITS = 8


class CacheBackend(Protocol):
    """What the runner, the service worker and the GC expect of a store.

    ``ResultCache`` satisfies this natively; composite backends delegate
    to it.  All implementations must be safe for concurrent use by
    multiple processes (and hosts sharing a filesystem): ``put`` is
    atomic-rename crash-safe and ``get`` quarantines, never serves, a
    torn entry.
    """

    kind: str
    counters: CacheCounters

    def get(self, spec: RunSpec) -> Optional[Dict]: ...

    def put(self, spec: RunSpec, stats_dict: Dict,
            wall_time: float = 0.0,
            metrics: Optional[Dict] = None) -> Path: ...

    def stats(self) -> Dict: ...

    def clear(self, stale_only: bool = False) -> int: ...

    def evict(self, max_bytes: Optional[int] = None,
              max_age: Optional[float] = None,
              now: Optional[float] = None) -> int: ...

    def counters_snapshot(self) -> Dict: ...


class LocalDirBackend(ResultCache):
    """The single-directory store, under whatever root it is given.

    This is :class:`~repro.runner.cache.ResultCache` by another name:
    the subsystem's canonical local backend, with the on-disk format
    (``<root>/<code-salt>/<spec-hash>.json``) unchanged.
    """


class ShardedBackend:
    """Fans entries across N shard roots by spec-hash prefix.

    The shard index is ``int(hash[:8], 16) % n`` — a pure function of
    the spec hash, so every client and worker (on any host) agrees on
    an entry's home without coordination, and adding capacity is an
    explicit re-shard rather than a silent rehash.
    """

    kind = "sharded"

    def __init__(self, roots: Sequence[os.PathLike],
                 salt: Optional[str] = None):
        if not roots:
            raise ValueError("ShardedBackend needs at least one root")
        self.shards = [LocalDirBackend(root=root, salt=salt)
                       for root in roots]

    @classmethod
    def create(cls, root: os.PathLike, shards: int,
               salt: Optional[str] = None) -> "ShardedBackend":
        """N ``shard-XX`` directories under one parent root."""
        base = Path(root)
        return cls([base / f"shard-{i:02d}" for i in range(max(1, shards))],
                   salt=salt)

    def shard_for(self, spec: RunSpec) -> LocalDirBackend:
        prefix = spec.content_hash()[:_SHARD_PREFIX_DIGITS]
        return self.shards[int(prefix, 16) % len(self.shards)]

    # -- CacheBackend ----------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[Dict]:
        return self.shard_for(spec).get(spec)

    def put(self, spec: RunSpec, stats_dict: Dict,
            wall_time: float = 0.0,
            metrics: Optional[Dict] = None) -> Path:
        return self.shard_for(spec).put(spec, stats_dict, wall_time,
                                        metrics=metrics)

    @property
    def counters(self) -> CacheCounters:
        merged = CacheCounters()
        for shard in self.shards:
            merged.merge(shard.counters)
        return merged

    def counters_snapshot(self) -> Dict:
        return {"kind": self.kind, "shards": len(self.shards),
                **self.counters.snapshot()}

    def stats(self) -> Dict:
        shard_stats = [shard.stats() for shard in self.shards]
        return {
            "kind": self.kind,
            "root": str(Path(self.shards[0].root).parent),
            "current_salt": self.shards[0].salt,
            "entries": sum(s["entries"] for s in shard_stats),
            "bytes": sum(s["bytes"] for s in shard_stats),
            "quarantined": sum(s["quarantined"] for s in shard_stats),
            "shards": shard_stats,
            "generations": [gen for s in shard_stats
                            for gen in s["generations"]],
        }

    def clear(self, stale_only: bool = False) -> int:
        return sum(shard.clear(stale_only=stale_only)
                   for shard in self.shards)

    def evict(self, max_bytes: Optional[int] = None,
              max_age: Optional[float] = None,
              now: Optional[float] = None) -> int:
        per_shard = (None if max_bytes is None
                     else max(0, max_bytes // len(self.shards)))
        return sum(shard.evict(max_bytes=per_shard, max_age=max_age,
                               now=now)
                   for shard in self.shards)


class TieredBackend:
    """A local write-through tier in front of a shared (slower) root.

    Reads try the local tier first; a shared hit is *promoted* — written
    through into the local tier — so each host's hot working set settles
    locally while the shared root stays the authoritative store.  Writes
    land in the shared root first (other hosts must see the result),
    then the local tier.
    """

    kind = "tiered"

    def __init__(self, local: CacheBackend, shared: CacheBackend):
        self.local = local
        self.shared = shared
        self.counters = CacheCounters()

    # -- CacheBackend ----------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[Dict]:
        entry = self.local.get(spec)
        if entry is not None:
            self.counters.hits += 1
            return entry
        entry = self.shared.get(spec)
        if entry is None:
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        self.counters.promotions += 1
        self.local.put(spec, entry["stats"],
                       entry.get("wall_time", 0.0),
                       metrics=entry.get("metrics"))
        return entry

    def put(self, spec: RunSpec, stats_dict: Dict,
            wall_time: float = 0.0,
            metrics: Optional[Dict] = None) -> Path:
        path = self.shared.put(spec, stats_dict, wall_time,
                               metrics=metrics)
        self.local.put(spec, stats_dict, wall_time, metrics=metrics)
        self.counters.puts += 1
        return path

    def counters_snapshot(self) -> Dict:
        return {"kind": self.kind, **self.counters.snapshot(),
                "local": self.local.counters_snapshot(),
                "shared": self.shared.counters_snapshot()}

    def stats(self) -> Dict:
        local, shared = self.local.stats(), self.shared.stats()
        return {
            "kind": self.kind,
            "root": shared.get("root", ""),
            "entries": shared["entries"],
            "bytes": shared["bytes"],
            "quarantined": shared["quarantined"] + local["quarantined"],
            "local": local,
            "shared": shared,
            "generations": shared.get("generations", []),
        }

    def clear(self, stale_only: bool = False) -> int:
        return (self.shared.clear(stale_only=stale_only)
                + self.local.clear(stale_only=stale_only))

    def evict(self, max_bytes: Optional[int] = None,
              max_age: Optional[float] = None,
              now: Optional[float] = None) -> int:
        evicted = self.shared.evict(max_bytes=max_bytes, max_age=max_age,
                                    now=now)
        evicted += self.local.evict(max_bytes=max_bytes, max_age=max_age,
                                    now=now)
        self.counters.evictions += evicted
        return evicted


def backend_for(root: os.PathLike, shards: int = 0,
                local_tier: Optional[os.PathLike] = None,
                salt: Optional[str] = None) -> CacheBackend:
    """The shared backend for one service root.

    The store lives under ``<root>/cache`` — flat by default, sharded
    when ``shards > 1`` — optionally fronted by a ``local_tier``
    write-through directory (typically host-local fast storage).
    """
    cache_root = Path(root) / "cache"
    backend: CacheBackend
    if shards and shards > 1:
        backend = ShardedBackend.create(cache_root, shards, salt=salt)
    else:
        backend = LocalDirBackend(root=cache_root, salt=salt)
    if local_tier:
        backend = TieredBackend(LocalDirBackend(root=local_tier,
                                                salt=salt), backend)
    return backend
