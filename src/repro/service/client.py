"""Async batch API: ``submit(specs) -> batch_id``, ``status``, ``fetch``.

A batch is content-addressed like everything else in the service: its id
is a digest of its member spec hashes, so resubmitting the same batch —
from the same client or another one — is idempotent and lands on the
same manifest.  ``submit`` enqueues only the specs the shared backend
does not already hold; ``status`` folds queue state and backend
occupancy into per-batch progress; ``fetch`` materialises
:class:`~repro.runner.executor.RunResult` objects from the backend once
the batch is complete.

:meth:`ServiceClient.run_batch` is the synchronous convenience the
:class:`~repro.runner.executor.Runner` delegates to when a service root
is configured: submit, then *participate* — the client runs an inline
:class:`~repro.service.worker.ServiceWorker` while waiting, preferring
its own jobs, so a lone process still completes (it is its own worker)
while any external workers share the load and concurrent clients dedupe
against each other through the queue and the backend.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..runner.executor import RunResult
from ..runner.spec import RunSpec
from ..runner.worker import execute_spec
from ..sim.stats import SimStats
from .backend import (
    DEFAULT_SERVICE_ROOT,
    ENV_SERVICE_LOCAL_TIER,
    ENV_SERVICE_ROOT,
    ENV_SERVICE_SHARDS,
    CacheBackend,
    backend_for,
)
from .queue import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_POISON_THRESHOLD,
    DEFAULT_VISIBILITY_TIMEOUT,
    JobQueue,
)
from .worker import ServiceWorker

#: Hex digits of the batch digest used as the batch id.
_BATCH_ID_DIGITS = 12


@dataclass
class ServiceConfig:
    """Where the service lives and how its queue behaves."""

    root: Path
    #: Shard the shared store across N roots (0/1 = flat local dir).
    shards: int = 0
    #: Optional host-local write-through tier in front of the shared root.
    local_tier: Optional[Path] = None
    visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    #: Lease steals before the queue quarantines a job as poison.
    poison_threshold: int = DEFAULT_POISON_THRESHOLD
    #: Client poll cadence while waiting on a batch: the *base* of a
    #: bounded exponential backoff (idle polls double the sleep up to
    #: ``poll_max``, with deterministic batch-hash jitter so a thousand
    #: waiting clients never thunder in phase).
    poll: float = 0.05
    #: Ceiling of the idle-poll backoff.
    poll_max: float = 2.0
    #: Whether a waiting client also works the queue (recommended: a
    #: lone client then never deadlocks waiting for absent workers).
    inline_worker: bool = True

    @classmethod
    def from_environment(cls) -> Optional["ServiceConfig"]:
        """Config from ``REPRO_SERVICE_*``, or None when no root is set."""
        root = os.environ.get(ENV_SERVICE_ROOT)
        if not root:
            return None
        shards = int(os.environ.get(ENV_SERVICE_SHARDS) or 0)
        local_tier = os.environ.get(ENV_SERVICE_LOCAL_TIER) or None
        return cls(root=Path(root), shards=shards,
                   local_tier=Path(local_tier) if local_tier else None)

    @classmethod
    def resolve(cls, root: Optional[os.PathLike] = None
                ) -> "ServiceConfig":
        """Explicit root > environment > ``.repro-service``."""
        if root is not None:
            env = cls.from_environment()
            if env is not None and Path(root) == env.root:
                return env
            return cls(root=Path(root))
        return cls.from_environment() or cls(
            root=Path(DEFAULT_SERVICE_ROOT))

    def make_backend(self, salt: Optional[str] = None) -> CacheBackend:
        return backend_for(self.root, shards=self.shards,
                           local_tier=self.local_tier, salt=salt)

    def make_queue(self) -> JobQueue:
        return JobQueue(self.root,
                        visibility_timeout=self.visibility_timeout,
                        max_attempts=self.max_attempts,
                        poison_threshold=self.poison_threshold)


def batch_id_for(hashes: Sequence[str]) -> str:
    """Content address of a batch: digest of its sorted member hashes."""
    digest = hashlib.sha256("\n".join(sorted(set(hashes))).encode())
    return digest.hexdigest()[:_BATCH_ID_DIGITS]


class ServiceClient:
    """Submit/status/fetch against one service root."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 backend: Optional[CacheBackend] = None,
                 config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig.resolve(root)
        self.root = self.config.root
        self.queue = self.config.make_queue()
        self.backend = backend if backend is not None \
            else self.config.make_backend()
        self.batches_dir = self.root / "batches"

    # -- submit ----------------------------------------------------------------------

    def submit(self, specs: Sequence[RunSpec]) -> str:
        """Enqueue a batch; returns its (content-addressed) batch id.

        Specs the shared backend already holds are not enqueued — the
        cache is the product, the queue only carries misses.  Duplicate
        specs within the batch collapse to one job, and a concurrent
        identical submission from another client collapses against the
        same pending files.
        """
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.content_hash(), spec)
        batch_id = batch_id_for(list(unique))
        enqueued = 0
        cached = 0
        for digest, spec in unique.items():
            if self.backend.get(spec) is not None:
                cached += 1
                continue
            _, new = self.queue.submit(spec)
            enqueued += int(new)
        manifest = {
            "batch": batch_id,
            "created": time.time(),
            "hashes": list(unique),
            "specs": [spec.key() for spec in unique.values()],
            "labels": [spec.label() for spec in unique.values()],
            "enqueued": enqueued,
            "cached_at_submit": cached,
        }
        self.batches_dir.mkdir(parents=True, exist_ok=True)
        path = self.batches_dir / f"{batch_id}.json"
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(manifest, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, path)
        return batch_id

    def load_batch(self, batch_id: str) -> Dict:
        path = self.batches_dir / f"{batch_id}.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(f"unknown batch {batch_id!r} under "
                           f"{self.root}") from None

    def _batch_specs(self, manifest: Dict) -> List[RunSpec]:
        return [RunSpec.from_key(key) for key in manifest["specs"]]

    # -- status ----------------------------------------------------------------------

    def status(self, batch_id: str) -> Dict:
        """Per-batch progress: done/failed/poisoned/running/queued/
        lost/missing.

        ``poisoned`` jobs are terminal (the batch completes around
        them, reported as failures with their quarantine diagnostic).
        ``lost`` flags a done record whose backend entry did not
        survive (torn put, eviction) — the wait loop resubmits those.
        """
        manifest = self.load_batch(batch_id)
        states: Dict[str, str] = {}
        for spec in self._batch_specs(manifest):
            digest = spec.content_hash()
            if self.backend.get(spec) is not None:
                states[digest] = "done"
                continue
            state = self.queue.state_of(digest)
            if state == "done" and not self._locate_done(spec):
                # The queue says finished but no result survives
                # anywhere (not even under a degraded hash): the write
                # was torn or the entry evicted.  at-least-once covers
                # this too — resubmission, not a hang.
                state = "lost"
            states[digest] = state
        counts = {state: 0 for state in
                  ("done", "failed", "poisoned", "running", "queued",
                   "lost", "missing")}
        for state in states.values():
            counts[state] = counts.get(state, 0) + 1
        total = len(states)
        terminal = counts["done"] + counts["failed"] + counts["poisoned"]
        return {
            "batch": batch_id,
            "total": total,
            **counts,
            "complete": terminal >= total,
            "states": states,
        }

    def _locate_done(self, spec: RunSpec) -> Optional[Dict]:
        """The surviving backend entry behind an ok done record — under
        the spec's own hash, or the executed (degraded) spec's hash the
        record redirects to.  None = the result is lost."""
        record = self.queue.read_done(spec.content_hash())
        if record is None or not record.get("ok"):
            return None
        entry = self.backend.get(spec)
        if entry is not None:
            return entry
        executed_key = record.get("executed_spec")
        if record.get("executed_hash") and executed_key:
            return self.backend.get(RunSpec.from_key(executed_key))
        return None

    # -- fetch -----------------------------------------------------------------------

    def fetch(self, batch_id: str) -> List[RunResult]:
        """Results for a complete batch, in manifest (submission) order.

        Raises :class:`RuntimeError` while work is still outstanding —
        poll :meth:`status` or use :meth:`wait` first.
        """
        manifest = self.load_batch(batch_id)
        results: List[RunResult] = []
        outstanding: List[str] = []
        for spec in self._batch_specs(manifest):
            result = self._result_for(spec)
            if result is None:
                outstanding.append(spec.label())
            else:
                results.append(result)
        if outstanding:
            raise RuntimeError(
                f"batch {batch_id} has {len(outstanding)} unfinished "
                f"job(s): {', '.join(outstanding[:5])}")
        return results

    def _result_for(self, spec: RunSpec,
                    executed_locally: Optional[set] = None
                    ) -> Optional[RunResult]:
        """A terminal RunResult for one spec, or None while in flight.

        A done record may redirect to a *degraded* spec (the ladder ran
        on a worker): the result then comes from the degraded hash,
        honestly labelled through its metrics' ``resilience`` rung.  A
        poisoned job surfaces as a terminal failure carrying the
        quarantine diagnostic — never a hang.
        """
        digest = spec.content_hash()
        cached = (executed_locally is None
                  or digest not in executed_locally)
        entry = self.backend.get(spec)
        if entry is None:
            entry = self._locate_done(spec)
        if entry is not None:
            return RunResult(
                spec, stats=SimStats.from_dict(entry["stats"]),
                cached=cached, wall_time=entry.get("wall_time", 0.0),
                stats_dict=entry["stats"],
                metrics=entry.get("metrics") or {})
        record = self.queue.read_done(digest)
        if record is not None and not record.get("ok"):
            return RunResult(spec, attempts=record.get("attempts", 1),
                             error=record.get("error", "failed"))
        poisoned = self.queue.read_poisoned(digest)
        if poisoned is not None:
            detail = (poisoned.get("last_error")
                      or "every worker died or wedged mid-job")
            return RunResult(
                spec, attempts=int(poisoned.get("attempts") or 0),
                error=f"poisoned after {poisoned.get('steals', 0)} "
                      f"lease steal(s): {detail}",
                metrics={"poisoned": poisoned})
        return None

    # -- wait / synchronous driving --------------------------------------------------

    def _poll_delay(self, idle_rounds: int, key: str) -> float:
        """Bounded exponential backoff with deterministic hash jitter.

        Idle polls double the sleep from ``config.poll`` up to
        ``config.poll_max``.  The jitter in [0, 0.5) of the delay is a
        pure function of ``(key, round)`` — the batch id is itself a
        digest of the member spec hashes, so a fleet of clients waiting
        on *different* batches desynchronises while a replay of the
        same batch sleeps identically (chaos runs stay reproducible).
        """
        base = max(self.config.poll, 1e-4)
        delay = min(self.config.poll_max,
                    base * (2 ** min(idle_rounds, 16)))
        digest = hashlib.sha256(f"{key}:{idle_rounds}".encode()).digest()
        jitter = int.from_bytes(digest[:4], "big") / 2 ** 33
        return delay * (1.0 + jitter)

    @staticmethod
    def _progress_fingerprint(state: Dict) -> tuple:
        return (state.get("done", 0), state.get("failed", 0),
                state.get("poisoned", 0), state.get("running", 0),
                state.get("queued", 0))

    def wait(self, batch_id: str, timeout: Optional[float] = None,
             task_fn: Callable[..., Dict] = execute_spec,
             inline_worker: Optional[bool] = None,
             telemetry=None) -> Dict:
        """Block until the batch completes (or the timeout lapses).

        With ``inline_worker`` (default: the config's setting) the
        waiting client claims and executes jobs itself, preferring the
        batch's own hashes.  Returns the final :meth:`status` dict —
        poisoned jobs count as terminal, so a poisoned batch returns
        (with ``status["poisoned"] > 0``) rather than hanging.  Idle
        polls back off exponentially (:meth:`_poll_delay`).
        """
        manifest = self.load_batch(batch_id)
        hashes = set(manifest["hashes"])
        inline = (self.config.inline_worker if inline_worker is None
                  else inline_worker)
        worker = (ServiceWorker(self.queue, self.backend, task_fn=task_fn,
                                telemetry=telemetry)
                  if inline else None)
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        idle_rounds = 0
        last_fingerprint: Optional[tuple] = None
        while True:
            state = self.status(batch_id)
            if state["complete"]:
                return state
            progressed = False
            if worker is not None:
                progressed = worker.step(prefer=hashes) is not None
            self._heal_missing(state, manifest)
            fingerprint = self._progress_fingerprint(state)
            if fingerprint != last_fingerprint:
                progressed = True
                last_fingerprint = fingerprint
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"batch {batch_id} incomplete after {timeout}s: "
                    f"{state['done']}/{state['total']} done")
            if progressed:
                idle_rounds = 0
            else:
                time.sleep(self._poll_delay(idle_rounds, batch_id))
                idle_rounds += 1

    def _heal_missing(self, state: Dict, manifest: Dict) -> None:
        """Resubmit jobs that fell through every crack: a ``missing``
        job lost both its result and its pending file, a ``lost`` one
        finished but its backend entry did not survive (torn put,
        eviction).  at-least-once includes losing races — and losing
        writes."""
        if state.get("missing") or state.get("lost"):
            for spec in self._batch_specs(manifest):
                if state["states"].get(spec.content_hash()) in (
                        "missing", "lost"):
                    self.queue.resubmit(spec)

    def run_batch(self, specs: Sequence[RunSpec], telemetry=None,
                  task_fn: Callable[..., Dict] = execute_spec,
                  timeout: Optional[float] = None) -> List[RunResult]:
        """Submit + drain + fetch: the Runner's service-mode path.

        Returns one :class:`RunResult` per unique spec.  Results this
        client's inline worker simulated itself are ``cached=False``
        (they were real executions and were recorded in ``telemetry``
        as completions); results other workers or earlier batches paid
        for surface as dedupe hits.
        """
        unique: Dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.content_hash(), spec)
        batch_id = self.submit(list(unique.values()))
        manifest = self.load_batch(batch_id)
        worker = (ServiceWorker(self.queue, self.backend, task_fn=task_fn,
                                telemetry=telemetry)
                  if self.config.inline_worker else None)
        remaining = dict(unique)
        results: Dict[str, RunResult] = {}
        recorded: set = set()
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        idle_rounds = 0
        while remaining:
            progressed = False
            executed = worker.executed_hashes if worker else set()
            for digest, spec in list(remaining.items()):
                result = self._result_for(spec, executed_locally=executed)
                if result is None:
                    continue
                results[digest] = result
                del remaining[digest]
                progressed = True
                if telemetry is None or digest in recorded:
                    continue
                recorded.add(digest)
                if result.ok and result.cached:
                    # Another worker (or a concurrent client) paid for
                    # this simulation: a service-level dedupe.
                    telemetry.record_dedupe(spec.label(), digest)
                elif not result.ok and (worker is None or digest not in
                                        worker.failed_hashes):
                    telemetry.record_failure(spec.label(),
                                             result.error or "failed",
                                             result.attempts)
            if not remaining:
                break
            if worker is not None:
                progressed |= worker.step(prefer=set(remaining)) is not None
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"service batch incomplete after {timeout}s: "
                    f"{len(results)}/{len(unique)} done")
            if not progressed:
                status = self.status(batch_id)
                self._heal_missing(status, manifest)
                time.sleep(self._poll_delay(idle_rounds, batch_id))
                idle_rounds += 1
            else:
                idle_rounds = 0
        return [results[digest] for digest in unique]
