"""File/dir-based work queue with leases, heartbeats and at-least-once.

The queue is three directories under a service root shared by every
client and worker (one host or many, over a shared filesystem)::

    <root>/queue/
      pending/<spec-hash>.json     submitted jobs (spec in key() form)
      leases/<spec-hash>.lease     in-flight claims, heartbeat-refreshed
      done/<spec-hash>.json        terminal records (ok or failed)
      poisoned/<spec-hash>.json    quarantined jobs (structured diagnostic)

Everything is keyed by the spec's content hash, which is what makes the
semantics simple:

* **submission is idempotent** — a second submit of the same spec (from
  any client, any time) is a no-op while the job is pending, in flight,
  or done;
* **in-flight dedupe** — a lease file is created with ``O_EXCL``, so
  exactly one worker holds a spec at a time;
* **at-least-once, not exactly-once** — a worker that dies mid-job stops
  refreshing its lease (the heartbeat writer is
  :class:`repro.resilience.heartbeat.Heartbeat`, judged by file mtime
  exactly like the watchdog supervisor judges its workers); after
  ``visibility_timeout`` seconds of silence any other worker may steal
  the lease and re-execute.  Duplicate execution is harmless because
  results are content-addressed: both workers write byte-identical
  entries to the same cache address.
* **dead-owner fast path** — lease payloads record the owner's pid and
  host; a claimer (or ``gc``) on the same host probes ``os.kill(pid,
  0)`` and steals immediately when the owner is gone, so a crashed
  worker's job is redelivered in seconds instead of waiting out the
  visibility timeout.
* **poison quarantine** — at-least-once must not mean *forever*: a job
  whose lease is stolen ``poison_threshold`` times (every owner died or
  wedged mid-execution — the signature of a job that kills its workers)
  is tombstoned to ``poisoned/`` with a structured diagnostic instead
  of being redelivered again.  Poisoned jobs are terminal to waiting
  clients, surfaced by ``service status``/``service top``, reaped by
  ``service gc``, and revivable only by an explicit ``resubmit``.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..guard import faultinject
from ..resilience.heartbeat import Heartbeat, heartbeat_age
from ..runner.spec import RunSpec

#: Default seconds of lease silence before another worker may steal it.
DEFAULT_VISIBILITY_TIMEOUT = 60.0

#: Execution attempts per job before it is failed terminally.
DEFAULT_MAX_ATTEMPTS = 3

#: Lease steals before a job is quarantined as poison (every owner so
#: far died or wedged mid-job; stop feeding it workers).
DEFAULT_POISON_THRESHOLD = 3

_HOSTNAME = socket.gethostname()


def default_worker_id() -> str:
    """host-pid tag identifying a queue participant in leases/records."""
    return f"{_HOSTNAME}-{os.getpid()}"


def _write_json_atomic(path: Path, payload: Dict) -> None:
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _read_lease_payload(path: Path) -> Optional[Dict]:
    """Last lease/heartbeat payload, or None — distinguishing a missing
    file (no recovery to record) from unreadable garbage, which is the
    ``queue.lease.corrupt`` failure handled by falling back to mtime."""
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        faultinject.record_recovery("queue.lease.corrupt")
        return None
    return payload if isinstance(payload, dict) else None


def _owner_is_dead(payload: Optional[Dict]) -> bool:
    """True when a lease payload names a same-host pid that no longer
    exists.  Cross-host owners (shared filesystem) are never probeable;
    an unreadable payload falls back to the mtime-based timeout."""
    if not payload or payload.get("host") != _HOSTNAME:
        return False
    pid = payload.get("pid")
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except OSError:  # pragma: no cover - e.g. EPERM: alive, other user
        return False
    return False


@dataclass
class Lease:
    """One worker's exclusive claim on one pending job."""

    queue: "JobQueue"
    hash: str
    spec: RunSpec
    job: Dict
    path: Path
    #: True when this claim displaced a stale lease (previous owner died
    #: or wedged past the visibility timeout).
    stolen: bool = False
    _heartbeat: Heartbeat = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._heartbeat = Heartbeat(self.path)

    @property
    def attempt(self) -> int:
        return int(self.job.get("attempts", 0)) + 1

    def beat(self, *, cycle: Optional[int] = None,
             stage: Optional[str] = None) -> None:
        """Refresh the lease mtime so the claim stays visible as live."""
        self._heartbeat.beat(cycle=cycle, stage=stage)

    def release(self) -> None:
        """Give the claim up without completing it (job stays pending)."""
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - racing steal
            pass

    def complete(self, *, executed: bool, wall_time: float = 0.0,
                 worker: str = "",
                 meta: Optional[Dict] = None) -> None:
        """Terminal success: write the done record, retire the job.

        ``meta`` rides along in the done record — the service worker
        uses it to publish the degradation rung and the executed
        (possibly degraded) spec so clients can find the result under
        its honest content hash.
        """
        record = {
            "hash": self.hash,
            "spec": self.job.get("spec"),
            "label": self.job.get("label", ""),
            "ok": True,
            "executed": executed,
            "attempts": self.attempt,
            "wall_time": wall_time,
            "worker": worker,
            "completed": time.time(),
        }
        if meta:
            record.update(meta)
        self.queue._write_done(self.hash, record)
        self.queue._retire_pending(self.hash)
        self.release()

    def fail(self, error: str, worker: str = "",
             fault_site: Optional[str] = None,
             traceback_text: Optional[str] = None) -> bool:
        """Attempt failed: requeue if budget remains, else fail terminally.

        Returns True when the job went back to pending (another attempt
        will happen), False when a terminal failure record was written.
        ``fault_site``/``traceback_text`` persist in the requeued job so
        a later poison tombstone can say what kept killing the job.
        """
        attempts = self.attempt
        if attempts < self.queue.max_attempts:
            job = dict(self.job)
            job["attempts"] = attempts
            job["last_error"] = error
            job["last_worker"] = worker
            if fault_site is not None:
                job["last_fault_site"] = fault_site
            if traceback_text is not None:
                job["last_traceback"] = traceback_text
            _write_json_atomic(self.queue.pending_dir / f"{self.hash}.json",
                               job)
            self.release()
            return True
        self.queue._write_done(self.hash, {
            "hash": self.hash,
            "spec": self.job.get("spec"),
            "label": self.job.get("label", ""),
            "ok": False,
            "executed": True,
            "attempts": attempts,
            "error": error,
            "fault_site": fault_site,
            "traceback": traceback_text,
            "worker": worker,
            "completed": time.time(),
        })
        self.queue._retire_pending(self.hash)
        self.release()
        return False


class JobQueue:
    """The shared pending/leases/done directories under one root."""

    def __init__(self, root: os.PathLike,
                 visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poison_threshold: int = DEFAULT_POISON_THRESHOLD):
        self.root = Path(root)
        self.visibility_timeout = visibility_timeout
        self.max_attempts = max(1, int(max_attempts))
        self.poison_threshold = max(1, int(poison_threshold))
        queue_root = self.root / "queue"
        self.pending_dir = queue_root / "pending"
        self.lease_dir = queue_root / "leases"
        self.done_dir = queue_root / "done"
        self.poisoned_dir = queue_root / "poisoned"

    def ensure(self) -> "JobQueue":
        for directory in (self.pending_dir, self.lease_dir,
                          self.done_dir, self.poisoned_dir):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    # -- submission ------------------------------------------------------------------

    def submit(self, spec: RunSpec) -> "tuple[str, bool]":
        """Enqueue one spec; returns ``(hash, newly_enqueued)``.

        Content-addressed and idempotent: already pending or already
        done means no new job file is written.
        """
        self.ensure()
        digest = spec.content_hash()
        if (self.done_dir / f"{digest}.json").exists():
            return digest, False
        if (self.poisoned_dir / f"{digest}.json").exists():
            # Quarantine is terminal; only an explicit resubmit revives.
            return digest, False
        path = self.pending_dir / f"{digest}.json"
        if path.exists():
            return digest, False
        _write_json_atomic(path, {
            "hash": digest,
            "spec": spec.key(),
            "label": spec.label(),
            "submitted": time.time(),
            "attempts": 0,
        })
        return digest, True

    def resubmit(self, spec: RunSpec) -> str:
        """Force a spec back onto the queue (self-heal of a lost job, or
        an operator reviving a quarantined one): drops any terminal
        record — done *or* poisoned — so ``submit`` enqueues anew."""
        digest = spec.content_hash()
        for terminal in (self.done_dir / f"{digest}.json",
                         self.poisoned_dir / f"{digest}.json"):
            try:
                terminal.unlink()
            except FileNotFoundError:
                pass
        return self.submit(spec)[0]

    # -- claiming --------------------------------------------------------------------

    def claim(self, worker_id: str,
              prefer: Optional[Iterable[str]] = None) -> Optional[Lease]:
        """Acquire a lease on some pending job, or None when starved.

        ``prefer`` biases claim order toward the given spec hashes (a
        client draining its own batch works its jobs first but still
        helps with anything else in the queue).
        """
        self.ensure()
        preferred = set(prefer) if prefer else set()
        candidates = sorted(self.pending_dir.glob("*.json"),
                            key=lambda p: (p.stem not in preferred,
                                           p.name))
        for path in candidates:
            digest = path.stem
            if (self.done_dir / f"{digest}.json").exists():
                # Completed elsewhere; retire the stale pending file.
                self._retire_pending(digest)
                continue
            if (self.poisoned_dir / f"{digest}.json").exists():
                # Quarantined elsewhere; never redeliver.
                self._retire_pending(digest)
                continue
            acquired = self._acquire_lease(digest, worker_id)
            if acquired is None:
                continue
            lease_path, stolen, corpse = acquired
            job = _read_json(path)
            if job is None:
                # Pending file vanished (or is torn) between listing and
                # read — drop the claim and move on.
                try:
                    lease_path.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                continue
            if stolen:
                # Every steal means the previous owner died or wedged
                # mid-job.  Count them on the job itself (the pending
                # file outlives leases), and quarantine once the job
                # has burned through the poison budget of workers.
                job["steals"] = int(job.get("steals", 0)) + 1
                faultinject.record_recovery("worker.crash")
                if job["steals"] >= self.poison_threshold:
                    self.poison(digest, job, corpse=corpse,
                                worker=worker_id)
                    try:
                        lease_path.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                    continue
                _write_json_atomic(path, job)
            return Lease(queue=self, hash=digest,
                         spec=RunSpec.from_key(job["spec"]), job=job,
                         path=lease_path, stolen=stolen)
        return None

    def _acquire_lease(self, digest: str, worker_id: str):
        """(lease_path, stolen, prev_payload) on success, None when the
        lease is live in someone else's hands.  ``prev_payload`` is the
        displaced owner's last lease/heartbeat payload on a steal (its
        corpse — diagnostic input for poison tombstones), else None."""
        lease_path = self.lease_dir / f"{digest}.lease"
        stolen = False
        corpse: Optional[Dict] = None
        try:
            fd = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                         0o644)
        except FileExistsError:
            corpse = _read_lease_payload(lease_path)
            if not _owner_is_dead(corpse):
                age = heartbeat_age(lease_path)
                if age is None or age <= self.visibility_timeout:
                    return None
            if faultinject.fires("queue.steal.race"):
                # Chaos: pretend a rival won the election below.
                # Yielding (and retrying on a later claim) is exactly
                # the designed loser behaviour, so recovery is
                # immediate.
                faultinject.record_recovery("queue.steal.race")
                return None
            # Stale or dead-owned lease: steal it.  os.replace is the
            # election — only the first stealer's rename succeeds; the
            # loser's raises.
            tombstone = lease_path.with_name(
                lease_path.name + f".expired.{os.getpid()}")
            try:
                os.replace(lease_path, tombstone)
            except OSError:
                return None
            try:
                tombstone.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            stolen = True
            try:
                fd = os.open(lease_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                # A third worker slipped in after the steal; yield.
                return None
        payload = {"worker": worker_id, "pid": os.getpid(),
                   "host": _HOSTNAME, "time": time.time(),
                   "stolen": stolen}
        try:
            os.write(fd, json.dumps(payload).encode("utf-8"))
        finally:
            os.close(fd)
        if faultinject.fires("queue.lease.corrupt"):
            # Chaos: scribble over the payload we just wrote.  Liveness
            # falls back to the file's mtime (which our own heartbeats
            # keep fresh); readers record the recovery when they hit
            # the garbage.
            try:
                lease_path.write_bytes(b"\x00corrupt lease{")
            except OSError:  # pragma: no cover - racing delete
                pass
        return lease_path, stolen, corpse

    # -- poison quarantine -----------------------------------------------------------

    def poison(self, digest: str, job: Dict,
               corpse: Optional[Dict] = None, worker: str = "") -> Path:
        """Tombstone a job that keeps killing its workers.

        The structured diagnostic records everything an operator needs
        to decide between fixing and reviving (``resubmit``): attempt
        and steal counts, the last owner's identity and final
        heartbeat, and the last recorded error/fault site/traceback
        from any failed attempt.
        """
        corpse = corpse or {}
        last_worker = corpse.get("worker") or job.get("last_worker")
        if not last_worker and corpse.get("pid"):
            last_worker = f"{corpse.get('host', '?')}-{corpse['pid']}"
        record = {
            "hash": digest,
            "spec": job.get("spec"),
            "label": job.get("label", ""),
            "poisoned": time.time(),
            "by": worker,
            "attempts": int(job.get("attempts", 0)),
            "steals": int(job.get("steals", 0)),
            "last_worker": last_worker,
            "last_heartbeat": {
                key: corpse[key] for key in ("time", "cycle", "stage")
                if corpse.get(key) is not None},
            "last_error": job.get("last_error"),
            "last_fault_site": job.get("last_fault_site"),
            "traceback": job.get("last_traceback"),
        }
        self.ensure()
        path = self.poisoned_dir / f"{digest}.json"
        _write_json_atomic(path, record)
        self._retire_pending(digest)
        return path

    def read_poisoned(self, digest: str) -> Optional[Dict]:
        return _read_json(self.poisoned_dir / f"{digest}.json")

    def poisoned_hashes(self) -> List[str]:
        self.ensure()
        return [path.stem for path in
                sorted(self.poisoned_dir.glob("*.json"))]

    # -- completion / inspection -----------------------------------------------------

    def _write_done(self, digest: str, record: Dict) -> None:
        self.ensure()
        _write_json_atomic(self.done_dir / f"{digest}.json", record)

    def _retire_pending(self, digest: str) -> None:
        try:
            (self.pending_dir / f"{digest}.json").unlink()
        except FileNotFoundError:
            pass

    def read_done(self, digest: str) -> Optional[Dict]:
        return _read_json(self.done_dir / f"{digest}.json")

    def state_of(self, digest: str) -> str:
        """One of ``done``/``failed``/``poisoned``/``running``/
        ``queued``/``missing``."""
        record = self.read_done(digest)
        if record is not None:
            return "done" if record.get("ok") else "failed"
        if (self.poisoned_dir / f"{digest}.json").exists():
            return "poisoned"
        lease_age = heartbeat_age(self.lease_dir / f"{digest}.lease")
        if lease_age is not None and lease_age <= self.visibility_timeout:
            return "running"
        if (self.pending_dir / f"{digest}.json").exists():
            return "queued"
        return "missing"

    def counts(self) -> Dict[str, int]:
        self.ensure()
        leases = list(self.lease_dir.glob("*.lease"))
        fresh = sum(
            1 for lease in leases
            if (heartbeat_age(lease) or 0.0) <= self.visibility_timeout)
        done = failed = 0
        for path in self.done_dir.glob("*.json"):
            record = _read_json(path)
            if record is not None and record.get("ok"):
                done += 1
            else:
                failed += 1
        return {
            "pending": len(list(self.pending_dir.glob("*.json"))),
            "leased": fresh,
            "stale_leases": len(leases) - fresh,
            "done": done,
            "failed": failed,
            "poisoned": len(list(self.poisoned_dir.glob("*.json"))),
        }

    def pending_hashes(self) -> List[str]:
        self.ensure()
        return [path.stem for path in
                sorted(self.pending_dir.glob("*.json"))]

    # -- housekeeping ----------------------------------------------------------------

    def gc(self, max_age: Optional[float] = None,
           now: Optional[float] = None) -> int:
        """Reap aged-out done records and poison tombstones, orphan
        steal tombstones, dead-owned leases (``os.kill(pid, 0)`` probe
        — redelivery in seconds, not a visibility timeout) and stale
        leases of retired jobs; returns how many files were removed."""
        self.ensure()
        now = time.time() if now is None else now
        removed = 0
        if max_age is not None:
            for path in self.done_dir.glob("*.json"):
                record = _read_json(path)
                completed = (record or {}).get("completed", 0.0)
                if now - completed > max_age:
                    try:
                        path.unlink()
                        removed += 1
                    except FileNotFoundError:  # pragma: no cover
                        pass
            for path in self.poisoned_dir.glob("*.json"):
                record = _read_json(path)
                poisoned = (record or {}).get("poisoned", 0.0)
                if now - poisoned > max_age:
                    try:
                        path.unlink()
                        removed += 1
                    except FileNotFoundError:  # pragma: no cover
                        pass
        for tombstone in self.lease_dir.glob("*.lease.expired.*"):
            try:
                tombstone.unlink()
                removed += 1
            except FileNotFoundError:  # pragma: no cover
                pass
        for lease in self.lease_dir.glob("*.lease"):
            digest = lease.stem
            pending_path = self.pending_dir / f"{digest}.json"
            age = heartbeat_age(lease, now=now)
            corpse = _read_lease_payload(lease)
            dead = _owner_is_dead(corpse)
            stale = age is not None and age > self.visibility_timeout
            if not dead and (pending_path.exists() or not stale):
                continue
            if dead:
                # Reaping a dead owner's lease is a steal by other
                # means: count it against the job's poison budget so
                # gc-redelivered crashes still converge on quarantine.
                faultinject.record_recovery("worker.crash")
                job = _read_json(pending_path)
                if job is not None:
                    job["steals"] = int(job.get("steals", 0)) + 1
                    if job["steals"] >= self.poison_threshold:
                        self.poison(digest, job, corpse=corpse,
                                    worker="gc")
                    else:
                        _write_json_atomic(pending_path, job)
            try:
                lease.unlink()
                removed += 1
            except FileNotFoundError:  # pragma: no cover
                pass
        return removed
