"""Sharded cache backends, a multi-host job queue, and an async batch API.

``repro.service`` scales the runner's content-addressed result cache
from one directory on one host to a shared store worked by many
processes on many hosts:

* :mod:`~repro.service.backend` — the :class:`CacheBackend` protocol and
  its local, sharded and tiered implementations (plus eviction/GC);
* :mod:`~repro.service.queue` — a file/dir work queue with ``O_EXCL``
  leases, heartbeat-refreshed visibility, and at-least-once delivery
  made harmless by content addressing;
* :mod:`~repro.service.worker` — the queue consumer (one per core per
  host) that dedupes through the backend and simulates misses;
* :mod:`~repro.service.client` — ``submit(specs) -> batch_id``,
  ``status(batch_id)``, ``fetch(batch_id)``, and the synchronous
  ``run_batch`` path the :class:`~repro.runner.executor.Runner`
  delegates to when ``REPRO_SERVICE_ROOT`` is configured.
"""

from .backend import (
    DEFAULT_SERVICE_ROOT,
    ENV_SERVICE_LOCAL_TIER,
    ENV_SERVICE_ROOT,
    ENV_SERVICE_SHARDS,
    CacheBackend,
    LocalDirBackend,
    ShardedBackend,
    TieredBackend,
    backend_for,
)
from .client import ServiceClient, ServiceConfig, batch_id_for
from .queue import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_POISON_THRESHOLD,
    DEFAULT_VISIBILITY_TIMEOUT,
    JobQueue,
    Lease,
    default_worker_id,
)
from .worker import ServiceWorker

__all__ = [
    "CacheBackend", "LocalDirBackend", "ShardedBackend", "TieredBackend",
    "backend_for",
    "DEFAULT_SERVICE_ROOT", "ENV_SERVICE_ROOT", "ENV_SERVICE_SHARDS",
    "ENV_SERVICE_LOCAL_TIER",
    "JobQueue", "Lease", "default_worker_id",
    "DEFAULT_VISIBILITY_TIMEOUT", "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_POISON_THRESHOLD",
    "ServiceWorker",
    "ServiceClient", "ServiceConfig", "batch_id_for",
]
