"""The SSP post-pass adaptation tool (the paper's contribution)."""

from .postpass import (
    RegionDecision,
    SSPPostPassTool,
    ToolOptions,
    ToolResult,
)

__all__ = ["RegionDecision", "SSPPostPassTool", "ToolOptions", "ToolResult"]
