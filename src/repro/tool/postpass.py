"""The post-pass binary adaptation tool — the paper's contribution.

Drives the full Figure 1 flow on a profiled binary:

1. identify delinquent loads from the cache profile (≥90% coverage),
2. build the analyses (CFGs, latency-annotated dependence graphs, dynamic
   call graph, region graph with profiled trip counts),
3. slice each delinquent load's address (context-sensitive + control-flow
   speculative slicing),
4. walk the region graph outward per load, scheduling each candidate region
   for both basic and chaining SP, and select region + model by the
   reduced-miss-cycle threshold (Section 3.4.1),
5. combine slices that share dependence-graph nodes in the same region,
6. place triggers and emit the SSP-enhanced binary (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..isa.interp import LIB_SLOTS
from ..isa.program import Program
from ..analysis.callgraph import CallGraph
from ..analysis.cfg import CFG
from ..analysis.depgraph import DependenceGraph
from ..analysis.regions import LOOP, Region, RegionGraph
from ..codegen.emit import AdaptedBinary, SSPEmitter
from ..profiling.delinquent import select_delinquent_loads
from ..profiling.profile import ProgramProfile
from ..scheduling.basic import BasicScheduler
from ..scheduling.chaining import ChainingScheduler
from ..scheduling.schedule import BASIC, CHAINING, ScheduledSlice
from ..scheduling.slack import reduced_miss_cycles
from ..slicing.regional import (
    RegionSlice,
    merge_region_slices,
    restrict_to_region,
)
from ..slicing.slicer import ContextSensitiveSlicer, ProgramSlice
from ..slicing.speculative import executed_instruction_uids
from ..triggers.placement import place_triggers
from ..obs.tracer import Tracer, ensure_tracer


@dataclass
class ToolOptions:
    """Knobs of the post-pass tool (Section 3.4.1 heuristics)."""

    #: Delinquent-load coverage of total misses.
    coverage: float = 0.90
    max_delinquent_loads: int = 10
    #: reduced-miss-cycle threshold = cutoff_percentage * load miss cycles
    #: ("the value is calculated as the product of the cutoff percentage
    #: and the miss cycles from cache profiling").
    cutoff_percentage: float = 0.10
    #: "we also stop the traversal of the region graph when it is nested
    #: several levels deep".
    max_region_nesting: int = 3
    #: Trip counts below this use basic SP ("if the trip count is small").
    small_trip_count: float = 8.0
    #: "To avoid a slice becoming too big that often leads to wrong
    #: address calculations".
    max_slice_size: int = 64
    max_live_ins: int = LIB_SLOTS
    #: Ablation: restrict the tool to basic SP (no chaining), to measure
    #: the paper's claim that "long-range prefetching using chaining
    #: triggers is the key to high performance".
    disable_chaining: bool = False


@dataclass
class RegionDecision:
    """One row of the region/model selection trace (for reports/ablation)."""

    load_uid: int
    region_name: str
    kind: str
    slack_per_iteration: float
    reduced_miss_cycles: float
    threshold: float
    selected: bool
    reason: str = ""


@dataclass
class ToolResult:
    """Everything the tool produced."""

    adapted: Optional[AdaptedBinary]
    delinquent_uids: List[int]
    decisions: List[RegionDecision] = field(default_factory=list)

    @property
    def program(self) -> Program:
        if self.adapted is None:
            raise ValueError("adaptation produced no slices")
        return self.adapted.program

    def table2_row(self) -> Dict[str, float]:
        """#slices, #interprocedural, average size, average #live-ins."""
        records = self.adapted.records if self.adapted else []
        n = len(records)
        return {
            "slices": n,
            "interproc": sum(1 for r in records if r.interprocedural),
            "avg_size": (sum(r.emitted_size for r in records) / n
                         if n else 0.0),
            "avg_live_ins": (sum(r.num_live_ins for r in records) / n
                             if n else 0.0),
        }

    def kinds(self) -> List[str]:
        return [r.kind for r in (self.adapted.records
                                 if self.adapted else [])]


class SSPPostPassTool:
    """Adapts a profiled binary for software-based speculative
    precomputation."""

    def __init__(self, options: Optional[ToolOptions] = None,
                 tracer: Optional[Tracer] = None):
        self.options = options or ToolOptions()
        #: Observability sink; defaults to the inert null tracer so the
        #: instrumented flow below costs nothing when tracing is off.
        self.tracer = ensure_tracer(tracer)

    # -- the full flow -------------------------------------------------------------

    def adapt(self, program: Program,
              profile: ProgramProfile) -> ToolResult:
        """Run the post-pass and return the adapted binary + trace.

        Each pipeline stage runs under a tracer span (profiling →
        analysis → slicing → scheduling → triggers → codegen) recording
        its wall time and Table-2 material metrics.
        """
        opts = self.options
        tracer = self.tracer
        if not program.finalized:
            program.finalize()

        with tracer.span("profiling") as sp:
            delinquent = select_delinquent_loads(
                profile, opts.coverage, opts.max_delinquent_loads,
                tracer=tracer)
            sp.set(delinquent_loads=len(delinquent),
                   delinquent_miss_cycles=sum(
                       profile.miss_cycles_of(uid) for uid in delinquent))
        result = ToolResult(adapted=None, delinquent_uids=delinquent)
        if not delinquent:
            return result

        with tracer.span("analysis") as sp:
            cfgs: Dict[str, CFG] = {}
            depgraphs: Dict[str, DependenceGraph] = {}
            latency = profile.load_latency_map()
            for name, func in program.functions.items():
                if not func.blocks:
                    continue
                cfg = CFG(func)
                cfgs[name] = cfg
                depgraphs[name] = DependenceGraph(func, cfg, latency,
                                                  profile.l1_latency)
            callgraph = CallGraph(program, profile.indirect_targets)
            region_graph = RegionGraph(program, callgraph,
                                       profile.block_freq)
            executed = executed_instruction_uids(
                program, profile.block_freq,
                exec_counts=profile.exec_counts)
            slicer = ContextSensitiveSlicer(program, callgraph, depgraphs,
                                            executed, tracer=tracer)
            sp.set(functions=len(cfgs), regions=len(region_graph.regions))

        locate = self._locate_instructions(program)
        with tracer.span("slicing") as sp:
            slices: Dict[int, Tuple[str, str, Instruction,
                                    ProgramSlice]] = {}
            size_hist = tracer.histogram("slice_size")
            for uid in delinquent:
                if uid not in locate:
                    continue
                func_name, block_label, instr = locate[uid]
                if func_name not in depgraphs:
                    continue
                program_slice = slicer.slice_load_address(instr, func_name)
                slices[uid] = (func_name, block_label, instr,
                               program_slice)
                size_hist.observe(program_slice.size())
            sp.set(slices=len(slices),
                   interprocedural=sum(
                       1 for _, _, _, s in slices.values()
                       if s.interprocedural))

        with tracer.span("scheduling") as sp:
            selections: List[Tuple[RegionSlice, str]] = []
            for uid, (func_name, block_label, instr,
                      program_slice) in slices.items():
                selection = self._select_region(
                    instr, func_name, block_label, program_slice,
                    region_graph, depgraphs, profile, result.decisions)
                if selection is not None:
                    selections.append(selection)
            merged = self._combine(selections)
            scheduled_slices: List[ScheduledSlice] = []
            live_in_hist = tracer.histogram("live_ins")
            slack_hist = tracer.histogram("slack_per_iteration")
            dropped_live_ins = 0
            for region_slice, kind in merged:
                scheduled = self._schedule(region_slice, kind,
                                           region_graph, depgraphs)
                if scheduled is None:
                    continue
                if len(scheduled.live_ins) > opts.max_live_ins:
                    dropped_live_ins += 1
                    continue
                live_in_hist.observe(len(scheduled.live_ins))
                slack_hist.observe(scheduled.slack_per_iteration)
                scheduled_slices.append(scheduled)
            sp.set(selections=len(selections), merged=len(merged),
                   scheduled=len(scheduled_slices),
                   dropped_live_ins=dropped_live_ins)
        if not scheduled_slices:
            return result

        with tracer.span("triggers") as sp:
            placements: List[Tuple[ScheduledSlice, list]] = []
            total_triggers = 0
            for scheduled in scheduled_slices:
                triggers = place_triggers(program, scheduled, cfgs,
                                          tracer=tracer)
                if not triggers:
                    continue
                total_triggers += len(triggers)
                placements.append((scheduled, triggers))
            sp.set(slices_with_triggers=len(placements),
                   triggers_placed=total_triggers)
        if not placements:
            return result

        with tracer.span("codegen") as sp:
            emitter = SSPEmitter(program, tracer=tracer)
            for scheduled, triggers in placements:
                emitter.add_slice(scheduled, triggers)
            if emitter.records:
                result.adapted = emitter.finalize()
            sp.set(slices_emitted=len(emitter.records),
                   emitted_instructions=sum(
                       r.emitted_size for r in emitter.records))
        return result

    # -- helpers ---------------------------------------------------------------------

    def _locate_instructions(self, program: Program
                             ) -> Dict[int, Tuple[str, str, Instruction]]:
        out: Dict[int, Tuple[str, str, Instruction]] = {}
        for name, func in program.functions.items():
            for block in func.blocks:
                for instr in block.instrs:
                    out[instr.uid] = (name, block.label, instr)
        return out

    def _region_uids(self, region: Region,
                     region_graph: RegionGraph) -> set:
        return {i.uid for i in region_graph.instructions_in(region)}

    def _select_region(self, load: Instruction, func_name: str,
                       block_label: str,
                       program_slice: ProgramSlice,
                       region_graph: RegionGraph,
                       depgraphs: Dict[str, DependenceGraph],
                       profile: ProgramProfile,
                       decisions: List[RegionDecision]
                       ) -> Optional[Tuple[RegionSlice, str]]:
        """Region-based traversal with the reduced-miss-cycle threshold."""
        opts = self.options
        miss_cycles = profile.miss_cycles_of(load.uid)
        executions = max(1, profile.executions_of(load.uid))
        miss_per_iteration = miss_cycles / executions
        threshold = opts.cutoff_percentage * miss_cycles

        start = region_graph.region_of_block(func_name, block_label)
        best: Optional[Tuple[float, RegionSlice, str]] = None
        for depth, region in enumerate(region_graph.outward_chain(start)):
            if depth >= opts.max_region_nesting:
                break
            region_slice = restrict_to_region(
                program_slice, region, region_graph, depgraphs)
            if region_slice is None:
                continue
            if region_slice.size() > opts.max_slice_size:
                break
            region_uids = self._region_uids(region, region_graph)
            candidates = self._score_models(region_slice, region,
                                            region_uids, profile,
                                            miss_per_iteration)
            for kind, scheduled, reduced in candidates:
                selected = reduced >= threshold
                decisions.append(RegionDecision(
                    load_uid=load.uid, region_name=region.name, kind=kind,
                    slack_per_iteration=scheduled.slack_per_iteration,
                    reduced_miss_cycles=reduced, threshold=threshold,
                    selected=False))
            kind, scheduled, reduced = self._choose_model(
                candidates, region)
            if best is None or reduced > best[0]:
                best = (reduced, region_slice, kind)
            if reduced >= threshold:
                decisions[-1].selected = True
                decisions[-1].reason = "threshold met"
                return region_slice, kind
        if best is not None and best[0] > 0:
            # "If none of the regions reduce the miss cycles beyond the
            # threshold percentage, we pick the region with the largest
            # percentage of miss cycles."
            decisions.append(RegionDecision(
                load_uid=load.uid, region_name=best[1].region.name,
                kind=best[2], slack_per_iteration=0.0,
                reduced_miss_cycles=best[0], threshold=threshold,
                selected=True, reason="best effort"))
            return best[1], best[2]
        return None

    def _score_models(self, region_slice: RegionSlice, region: Region,
                      region_uids: set, profile: ProgramProfile,
                      miss_per_iteration: float
                      ) -> List[Tuple[str, ScheduledSlice, float]]:
        entries = max(1, region.entries or 1)
        trips = max(1.0, region.trip_count)
        out: List[Tuple[str, ScheduledSlice, float]] = []
        basic = BasicScheduler(tracer=self.tracer).schedule(
            region_slice, region_uids)
        out.append((BASIC, basic, entries * reduced_miss_cycles(
            basic.slack_per_iteration, trips, miss_per_iteration)))
        if region.kind == LOOP and not self.options.disable_chaining:
            chain = ChainingScheduler(tracer=self.tracer).schedule(
                region_slice, region_uids)
            out.append((CHAINING, chain, entries * reduced_miss_cycles(
                chain.slack_per_iteration, trips, miss_per_iteration)))
        return out

    def _choose_model(self, candidates, region: Region):
        """Basic vs chaining (Section 3.4.1): small trip counts or a larger
        basic slack pick basic SP; otherwise chaining."""
        by_kind = {kind: (kind, sched, reduced)
                   for kind, sched, reduced in candidates}
        if CHAINING not in by_kind:
            return by_kind[BASIC]
        basic = by_kind[BASIC]
        chain = by_kind[CHAINING]
        if region.trip_count < self.options.small_trip_count:
            return basic
        if basic[1].slack_per_iteration > chain[1].slack_per_iteration:
            return basic
        return chain

    def _combine(self, selections: List[Tuple[RegionSlice, str]]
                 ) -> List[Tuple[RegionSlice, str]]:
        """Merge slices that share a region (and thus dependence nodes)."""
        groups: Dict[str, List[Tuple[RegionSlice, str]]] = {}
        for region_slice, kind in selections:
            groups.setdefault(region_slice.region.name, []).append(
                (region_slice, kind))
        out: List[Tuple[RegionSlice, str]] = []
        for items in groups.values():
            slices = [rs for rs, _ in items]
            kinds = {kind for _, kind in items}
            merged = merge_region_slices(slices)
            kind = CHAINING if CHAINING in kinds else BASIC
            out.append((merged, kind))
        return out

    def _schedule(self, region_slice: RegionSlice, kind: str,
                  region_graph: RegionGraph,
                  depgraphs: Dict[str, DependenceGraph]
                  ) -> Optional[ScheduledSlice]:
        region_uids = self._region_uids(region_slice.region, region_graph)
        if kind == CHAINING:
            return ChainingScheduler(tracer=self.tracer).schedule(
                region_slice, region_uids)
        return BasicScheduler(tracer=self.tracer).schedule(
            region_slice, region_uids)
