"""The post-pass binary adaptation tool — the paper's contribution.

Drives the full Figure 1 flow on a profiled binary:

1. identify delinquent loads from the cache profile (≥90% coverage),
2. build the analyses (CFGs, latency-annotated dependence graphs, dynamic
   call graph, region graph with profiled trip counts),
3. slice each delinquent load's address (context-sensitive + control-flow
   speculative slicing),
4. walk the region graph outward per load, scheduling each candidate region
   for both basic and chaining SP, and select region + model by the
   reduced-miss-cycle threshold (Section 3.4.1),
5. combine slices that share dependence-graph nodes in the same region,
6. place triggers and emit the SSP-enhanced binary (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..guard import (
    DROP_LOAD,
    ERROR,
    ROLLBACK,
    WARNING,
    Diagnostic,
    GuardReport,
    recovery_boundary,
)
from ..isa.instructions import Instruction
from ..isa.interp import LIB_SLOTS
from ..isa.memory import Heap
from ..isa.program import Program
from ..analysis.callgraph import CallGraph
from ..analysis.cfg import CFG
from ..analysis.depgraph import DependenceGraph
from ..analysis.regions import LOOP, Region, RegionGraph
from ..codegen.emit import AdaptedBinary, SSPEmitter
from ..codegen.verify import differential_check
from ..profiling.delinquent import select_delinquent_loads
from ..profiling.profile import ProgramProfile
from ..scheduling.basic import BasicScheduler
from ..scheduling.chaining import ChainingScheduler
from ..scheduling.schedule import BASIC, CHAINING, ScheduledSlice
from ..scheduling.slack import reduced_miss_cycles
from ..slicing.regional import (
    RegionSlice,
    merge_region_slices,
    restrict_to_region,
)
from ..slicing.slicer import ContextSensitiveSlicer, ProgramSlice
from ..slicing.speculative import executed_instruction_uids
from ..triggers.placement import place_triggers
from ..obs.tracer import Tracer, ensure_tracer


@dataclass
class ToolOptions:
    """Knobs of the post-pass tool (Section 3.4.1 heuristics)."""

    #: Delinquent-load coverage of total misses.
    coverage: float = 0.90
    max_delinquent_loads: int = 10
    #: reduced-miss-cycle threshold = cutoff_percentage * load miss cycles
    #: ("the value is calculated as the product of the cutoff percentage
    #: and the miss cycles from cache profiling").
    cutoff_percentage: float = 0.10
    #: "we also stop the traversal of the region graph when it is nested
    #: several levels deep".
    max_region_nesting: int = 3
    #: Trip counts below this use basic SP ("if the trip count is small").
    small_trip_count: float = 8.0
    #: "To avoid a slice becoming too big that often leads to wrong
    #: address calculations".
    max_slice_size: int = 64
    max_live_ins: int = LIB_SLOTS
    #: Ablation: restrict the tool to basic SP (no chaining), to measure
    #: the paper's claim that "long-range prefetching using chaining
    #: triggers is the key to high performance".
    disable_chaining: bool = False
    #: Run the differential semantic-equivalence check on the adapted
    #: binary (needs a heap factory) and roll back on mismatch.
    differential_verify: bool = True


#: :class:`ToolOptions` overrides for each rung of the resilience
#: degradation ladder (see :mod:`repro.resilience.ladder`): when a run
#: blows its budgets the supervisor re-adapts with progressively weaker
#: speculation — basic SP only, then basic SP for the single worst
#: delinquent load — before giving up on adaptation entirely.  Kept here,
#: next to the knobs they override, so tool and ladder cannot drift.
DEGRADATION_PRESETS: Dict[str, Dict[str, object]] = {
    "basic": {"disable_chaining": True},
    "top1": {"disable_chaining": True, "max_delinquent_loads": 1},
}


@dataclass
class RegionDecision:
    """One row of the region/model selection trace (for reports/ablation)."""

    load_uid: int
    region_name: str
    kind: str
    slack_per_iteration: float
    reduced_miss_cycles: float
    threshold: float
    selected: bool
    reason: str = ""


@dataclass
class ToolResult:
    """Everything the tool produced."""

    adapted: Optional[AdaptedBinary]
    delinquent_uids: List[int]
    decisions: List[RegionDecision] = field(default_factory=list)
    #: Degradation ledger: diagnostics, rollbacks, per-load counts.
    guard: GuardReport = field(default_factory=GuardReport)

    @property
    def program(self) -> Program:
        if self.adapted is None:
            raise ValueError("adaptation produced no slices")
        return self.adapted.program

    def table2_row(self) -> Dict[str, float]:
        """#slices, #interprocedural, average size, average #live-ins."""
        records = self.adapted.records if self.adapted else []
        n = len(records)
        return {
            "slices": n,
            "interproc": sum(1 for r in records if r.interprocedural),
            "avg_size": (sum(r.emitted_size for r in records) / n
                         if n else 0.0),
            "avg_live_ins": (sum(r.num_live_ins for r in records) / n
                             if n else 0.0),
        }

    def kinds(self) -> List[str]:
        return [r.kind for r in (self.adapted.records
                                 if self.adapted else [])]


class SSPPostPassTool:
    """Adapts a profiled binary for software-based speculative
    precomputation."""

    def __init__(self, options: Optional[ToolOptions] = None,
                 tracer: Optional[Tracer] = None):
        self.options = options or ToolOptions()
        #: Observability sink; defaults to the inert null tracer so the
        #: instrumented flow below costs nothing when tracing is off.
        self.tracer = ensure_tracer(tracer)

    # -- the full flow -------------------------------------------------------------

    def adapt(self, program: Program, profile: ProgramProfile,
              heap_factory: Optional[Callable[[], Heap]] = None
              ) -> ToolResult:
        """Run the post-pass and return the adapted binary + trace.

        Each pipeline stage runs under a tracer span (profiling →
        analysis → slicing → scheduling → triggers → codegen → verify)
        recording its wall time and Table-2 material metrics.

        The flow is *guarded*: every per-load / per-slice step runs
        inside a recovery boundary, so a failure drops that load or
        slice (with a structured diagnostic on ``result.guard``) instead
        of aborting the run, and a semantic-equivalence mismatch rolls
        the adaptation back.  ``adapt`` itself never raises for pipeline
        faults — the worst outcome is a no-op adaptation.  The
        differential verify stage needs ``heap_factory`` (a fresh heap
        per functional run) and is skipped when it is not provided.
        """
        report = GuardReport()
        result = ToolResult(adapted=None, delinquent_uids=[],
                            guard=report)
        final: List[Tuple[ScheduledSlice, list]] = []
        with recovery_boundary(report, "pipeline", tracer=self.tracer):
            final = self._adapt_guarded(program, profile, heap_factory,
                                        result)
        self._account(report, result.delinquent_uids,
                      final if result.adapted is not None else [])
        if report.diagnostics or report.rollbacks:
            self.tracer.event("guard.summary", category="guard",
                              summary=report.summary())
        return result

    def _adapt_guarded(self, program: Program, profile: ProgramProfile,
                       heap_factory: Optional[Callable[[], Heap]],
                       result: ToolResult
                       ) -> List[Tuple[ScheduledSlice, list]]:
        opts = self.options
        tracer = self.tracer
        report = result.guard
        if not program.finalized:
            program.finalize()

        with tracer.span("profiling") as sp:
            delinquent = select_delinquent_loads(
                profile, opts.coverage, opts.max_delinquent_loads,
                tracer=tracer)
            sp.set(delinquent_loads=len(delinquent),
                   delinquent_miss_cycles=sum(
                       profile.miss_cycles_of(uid) for uid in delinquent))
        result.delinquent_uids = delinquent
        if not delinquent:
            return []

        with tracer.span("analysis") as sp:
            cfgs: Dict[str, CFG] = {}
            depgraphs: Dict[str, DependenceGraph] = {}
            latency = profile.load_latency_map()
            for name, func in program.functions.items():
                if not func.blocks:
                    continue
                cfg = CFG(func)
                cfgs[name] = cfg
                depgraphs[name] = DependenceGraph(func, cfg, latency,
                                                  profile.l1_latency)
            callgraph = CallGraph(program, profile.indirect_targets)
            region_graph = RegionGraph(program, callgraph,
                                       profile.block_freq)
            executed = executed_instruction_uids(
                program, profile.block_freq,
                exec_counts=profile.exec_counts)
            slicer = ContextSensitiveSlicer(program, callgraph, depgraphs,
                                            executed, tracer=tracer)
            sp.set(functions=len(cfgs), regions=len(region_graph.regions))

        locate = self._locate_instructions(program)
        with tracer.span("slicing") as sp:
            slices: Dict[int, Tuple[str, str, Instruction,
                                    ProgramSlice]] = {}
            size_hist = tracer.histogram("slice_size")
            for uid in delinquent:
                if uid not in locate:
                    continue
                func_name, block_label, instr = locate[uid]
                if func_name not in depgraphs:
                    continue
                with recovery_boundary(report, "slicing", tracer=tracer,
                                       load_uid=uid, function=func_name):
                    program_slice = slicer.slice_load_address(instr,
                                                              func_name)
                    slices[uid] = (func_name, block_label, instr,
                                   program_slice)
                    size_hist.observe(program_slice.size())
            sp.set(slices=len(slices),
                   interprocedural=sum(
                       1 for _, _, _, s in slices.values()
                       if s.interprocedural),
                   failed=len(report.failures_in("slicing")))

        with tracer.span("scheduling") as sp:
            selections: List[Tuple[RegionSlice, str]] = []
            for uid, (func_name, block_label, instr,
                      program_slice) in slices.items():
                with recovery_boundary(report, "scheduling",
                                       tracer=tracer, load_uid=uid,
                                       function=func_name):
                    selection = self._select_region(
                        instr, func_name, block_label, program_slice,
                        region_graph, depgraphs, profile,
                        result.decisions)
                    if selection is not None:
                        selections.append(selection)
                    else:
                        self._note_negative_slack(
                            report, result.decisions, uid, func_name)
            merged = self._combine(selections)
            scheduled_slices: List[ScheduledSlice] = []
            live_in_hist = tracer.histogram("live_ins")
            slack_hist = tracer.histogram("slack_per_iteration")
            dropped_live_ins = 0
            for region_slice, kind in merged:
                with recovery_boundary(
                        report, "scheduling", tracer=tracer,
                        load_uid=region_slice.load.uid,
                        function=region_slice.region.function):
                    scheduled = self._schedule(region_slice, kind,
                                               region_graph, depgraphs)
                    if scheduled is None:
                        continue
                    if len(scheduled.live_ins) > opts.max_live_ins:
                        dropped_live_ins += 1
                        continue
                    live_in_hist.observe(len(scheduled.live_ins))
                    slack_hist.observe(scheduled.slack_per_iteration)
                    scheduled_slices.append(scheduled)
            sp.set(selections=len(selections), merged=len(merged),
                   scheduled=len(scheduled_slices),
                   dropped_live_ins=dropped_live_ins)
        if not scheduled_slices:
            return []

        with tracer.span("triggers") as sp:
            placements: List[Tuple[ScheduledSlice, list]] = []
            total_triggers = 0
            for scheduled in scheduled_slices:
                with recovery_boundary(
                        report, "triggers", tracer=tracer,
                        load_uid=scheduled.load.uid,
                        function=scheduled.region_slice.region.function):
                    triggers = place_triggers(program, scheduled, cfgs,
                                              tracer=tracer)
                    if not triggers:
                        continue
                    total_triggers += len(triggers)
                    placements.append((scheduled, triggers))
            sp.set(slices_with_triggers=len(placements),
                   triggers_placed=total_triggers)
        if not placements:
            return []

        with tracer.span("codegen") as sp:
            adapted, emitted = self._emit_guarded(program, placements,
                                                  report)
            result.adapted = adapted
            sp.set(slices_emitted=(len(adapted.records) if adapted
                                   else 0),
                   emitted_instructions=sum(
                       r.emitted_size for r in (adapted.records
                                                if adapted else [])),
                   failed=len(report.failures_in("codegen")))

        if result.adapted is not None and opts.differential_verify and \
                heap_factory is not None:
            with tracer.span("verify") as sp:
                emitted = self._verify_and_rollback(
                    program, emitted, result, heap_factory)
                sp.set(rollbacks=len(report.rollbacks),
                       equivalent=result.adapted is not None)
        return emitted

    # -- guarded codegen & verification ------------------------------------------------

    def _emit_all(self, program: Program,
                  placements: List[Tuple[ScheduledSlice, list]]
                  ) -> Optional[AdaptedBinary]:
        """One emission attempt from the pristine original program."""
        emitter = SSPEmitter(program, tracer=self.tracer)
        for scheduled, triggers in placements:
            emitter.add_slice(scheduled, triggers)
        if not emitter.records:
            return None
        return emitter.finalize()

    def _emit_guarded(self, program: Program,
                      placements: List[Tuple[ScheduledSlice, list]],
                      report: GuardReport
                      ) -> Tuple[Optional[AdaptedBinary],
                                 List[Tuple[ScheduledSlice, list]]]:
        """Emit all slices; on failure, isolate and drop the bad ones.

        Emission always restarts from a fresh clone of the original
        program, so dropping a slice can never leave half-applied edits
        behind.
        """
        adapted: Optional[AdaptedBinary] = None
        with recovery_boundary(report, "codegen",
                               tracer=self.tracer) as b:
            adapted = self._emit_all(program, placements)
        if b.ok:
            return adapted, list(placements)
        survivors: List[Tuple[ScheduledSlice, list]] = []
        for item in placements:
            scheduled = item[0]
            with recovery_boundary(
                    report, "codegen", tracer=self.tracer,
                    load_uid=scheduled.load.uid,
                    function=scheduled.region_slice.region.function) as b:
                self._emit_all(program, [item])
            if b.ok:
                survivors.append(item)
        if not survivors:
            return None, []
        with recovery_boundary(report, "codegen",
                               tracer=self.tracer) as b:
            adapted = self._emit_all(program, survivors)
        if b.ok:
            return adapted, survivors
        return None, []

    def _verify_and_rollback(self, program: Program,
                             placements: List[Tuple[ScheduledSlice,
                                                    list]],
                             result: ToolResult,
                             heap_factory: Callable[[], Heap]
                             ) -> List[Tuple[ScheduledSlice, list]]:
        """Differential check + per-function rollback loop.

        Re-emission always starts from the pristine original, so a
        rolled-back function is byte-identical to the unadapted input by
        construction.
        """
        report = result.guard
        tracer = self.tracer
        remaining = list(placements)
        for _ in range(len(placements) + 1):
            diff = differential_check(program, result.adapted.program,
                                      heap_factory)
            tracer.event("differential_check", category="verify",
                         **diff.to_dict())
            if diff.equivalent:
                return remaining
            culprit = diff.function
            report.record(Diagnostic(
                stage="verify", error="VerifyError", severity=ERROR,
                policy=ROLLBACK, message=diff.reason, function=culprit))
            tracer.counter("guard.failed.verify").add()
            drop = [p for p in remaining
                    if culprit is not None
                    and p[0].region_slice.region.function == culprit]
            if not drop:
                # Unknown culprit (or nothing left to drop): whole-binary
                # rollback.
                report.record_rollback(None, diff.reason)
                result.adapted = None
                return []
            report.record_rollback(culprit, diff.reason)
            remaining = [p for p in remaining if p not in drop]
            if not remaining:
                result.adapted = None
                return []
            with recovery_boundary(report, "codegen",
                                   tracer=tracer) as b:
                result.adapted = self._emit_all(program, remaining)
            if not b.ok or result.adapted is None:
                report.record_rollback(
                    None, "re-emission after rollback failed")
                result.adapted = None
                return []
        report.record_rollback(None, "differential check kept failing")
        result.adapted = None
        return []

    def _note_negative_slack(self, report: GuardReport,
                             decisions: List[RegionDecision],
                             uid: int, func_name: str) -> None:
        """Record why a load was dropped when every candidate schedule
        came back with negative slack (informational: the selection
        heuristic already refuses such slices)."""
        neg = [d for d in decisions
               if d.load_uid == uid and d.slack_per_iteration < 0]
        if not neg:
            return
        diagnostic = Diagnostic(
            stage="scheduling", error="ScheduleError", severity=WARNING,
            policy=DROP_LOAD,
            message=("all candidate regions scheduled with negative "
                     f"slack (min {min(d.slack_per_iteration for d in neg):.1f}); "
                     "load dropped"),
            load_uid=uid, function=func_name)
        report.record(diagnostic)
        self.tracer.event("guard.failure", category="guard",
                          **diagnostic.to_dict())

    def _account(self, report: GuardReport, delinquent: List[int],
                 placements: List[Tuple[ScheduledSlice, list]]) -> None:
        """Final adapted / skipped / failed load bookkeeping."""
        delinquent_set = set(delinquent)
        covered: set = set()
        for scheduled, _ in placements:
            covered |= (set(scheduled.region_slice.delinquent_uids)
                        & delinquent_set)
        failed = {d.load_uid for d in report.diagnostics
                  if d.load_uid is not None and d.severity != WARNING}
        failed = (failed & delinquent_set) - covered
        report.adapted_loads = len(covered)
        report.failed_loads = len(failed)
        report.skipped_loads = (len(delinquent_set) - len(covered)
                                - len(failed))

    # -- helpers ---------------------------------------------------------------------

    def _locate_instructions(self, program: Program
                             ) -> Dict[int, Tuple[str, str, Instruction]]:
        out: Dict[int, Tuple[str, str, Instruction]] = {}
        for name, func in program.functions.items():
            for block in func.blocks:
                for instr in block.instrs:
                    out[instr.uid] = (name, block.label, instr)
        return out

    def _region_uids(self, region: Region,
                     region_graph: RegionGraph) -> set:
        return {i.uid for i in region_graph.instructions_in(region)}

    def _select_region(self, load: Instruction, func_name: str,
                       block_label: str,
                       program_slice: ProgramSlice,
                       region_graph: RegionGraph,
                       depgraphs: Dict[str, DependenceGraph],
                       profile: ProgramProfile,
                       decisions: List[RegionDecision]
                       ) -> Optional[Tuple[RegionSlice, str]]:
        """Region-based traversal with the reduced-miss-cycle threshold."""
        opts = self.options
        miss_cycles = profile.miss_cycles_of(load.uid)
        executions = max(1, profile.executions_of(load.uid))
        miss_per_iteration = miss_cycles / executions
        threshold = opts.cutoff_percentage * miss_cycles

        start = region_graph.region_of_block(func_name, block_label)
        best: Optional[Tuple[float, RegionSlice, str]] = None
        for depth, region in enumerate(region_graph.outward_chain(start)):
            if depth >= opts.max_region_nesting:
                break
            region_slice = restrict_to_region(
                program_slice, region, region_graph, depgraphs)
            if region_slice is None:
                continue
            if region_slice.size() > opts.max_slice_size:
                break
            region_uids = self._region_uids(region, region_graph)
            candidates = self._score_models(region_slice, region,
                                            region_uids, profile,
                                            miss_per_iteration)
            for kind, scheduled, reduced in candidates:
                selected = reduced >= threshold
                decisions.append(RegionDecision(
                    load_uid=load.uid, region_name=region.name, kind=kind,
                    slack_per_iteration=scheduled.slack_per_iteration,
                    reduced_miss_cycles=reduced, threshold=threshold,
                    selected=False))
            kind, scheduled, reduced = self._choose_model(
                candidates, region)
            if best is None or reduced > best[0]:
                best = (reduced, region_slice, kind)
            if reduced >= threshold:
                decisions[-1].selected = True
                decisions[-1].reason = "threshold met"
                return region_slice, kind
        if best is not None and best[0] > 0:
            # "If none of the regions reduce the miss cycles beyond the
            # threshold percentage, we pick the region with the largest
            # percentage of miss cycles."
            decisions.append(RegionDecision(
                load_uid=load.uid, region_name=best[1].region.name,
                kind=best[2], slack_per_iteration=0.0,
                reduced_miss_cycles=best[0], threshold=threshold,
                selected=True, reason="best effort"))
            return best[1], best[2]
        return None

    def _score_models(self, region_slice: RegionSlice, region: Region,
                      region_uids: set, profile: ProgramProfile,
                      miss_per_iteration: float
                      ) -> List[Tuple[str, ScheduledSlice, float]]:
        entries = max(1, region.entries or 1)
        trips = max(1.0, region.trip_count)
        out: List[Tuple[str, ScheduledSlice, float]] = []
        basic = BasicScheduler(tracer=self.tracer).schedule(
            region_slice, region_uids)
        out.append((BASIC, basic, entries * reduced_miss_cycles(
            basic.slack_per_iteration, trips, miss_per_iteration)))
        if region.kind == LOOP and not self.options.disable_chaining:
            chain = ChainingScheduler(tracer=self.tracer).schedule(
                region_slice, region_uids)
            out.append((CHAINING, chain, entries * reduced_miss_cycles(
                chain.slack_per_iteration, trips, miss_per_iteration)))
        return out

    def _choose_model(self, candidates, region: Region):
        """Basic vs chaining (Section 3.4.1): small trip counts or a larger
        basic slack pick basic SP; otherwise chaining."""
        by_kind = {kind: (kind, sched, reduced)
                   for kind, sched, reduced in candidates}
        if CHAINING not in by_kind:
            return by_kind[BASIC]
        basic = by_kind[BASIC]
        chain = by_kind[CHAINING]
        if region.trip_count < self.options.small_trip_count:
            return basic
        if basic[1].slack_per_iteration > chain[1].slack_per_iteration:
            return basic
        return chain

    def _combine(self, selections: List[Tuple[RegionSlice, str]]
                 ) -> List[Tuple[RegionSlice, str]]:
        """Merge slices that share a region (and thus dependence nodes)."""
        groups: Dict[str, List[Tuple[RegionSlice, str]]] = {}
        for region_slice, kind in selections:
            groups.setdefault(region_slice.region.name, []).append(
                (region_slice, kind))
        out: List[Tuple[RegionSlice, str]] = []
        for items in groups.values():
            slices = [rs for rs, _ in items]
            kinds = {kind for _, kind in items}
            merged = merge_region_slices(slices)
            kind = CHAINING if CHAINING in kinds else BASIC
            out.append((merged, kind))
        return out

    def _schedule(self, region_slice: RegionSlice, kind: str,
                  region_graph: RegionGraph,
                  depgraphs: Dict[str, DependenceGraph]
                  ) -> Optional[ScheduledSlice]:
        region_uids = self._region_uids(region_slice.region, region_graph)
        if kind == CHAINING:
            return ChainingScheduler(tracer=self.tracer).schedule(
                region_slice, region_uids)
        return BasicScheduler(tracer=self.tracer).schedule(
            region_slice, region_uids)
