"""Command-line interface: ``ssp-postpass``.

Runs the post-pass flow on a named benchmark workload and reports the
adaptation and its effect::

    ssp-postpass mcf --scale small --model inorder
    ssp-postpass --list
    ssp-postpass --experiments figure8 table2 --jobs 4
    ssp-postpass treeadd.df --trace out.jsonl --metrics-json metrics.json
    ssp-postpass report treeadd.df --scale tiny
    ssp-postpass report --from metrics.json
    ssp-postpass cache stats
    ssp-postpass cache clear [--stale]
    ssp-postpass runs
    ssp-postpass service submit em3d health --variant ssp
    ssp-postpass service worker --idle-exit 5
    ssp-postpass service status BATCH && ssp-postpass service fetch BATCH
    ssp-postpass service top --watch 2
    ssp-postpass mcf --profile profile.json --trace out.jsonl
    ssp-postpass bench record --pin && ssp-postpass bench compare

All simulations go through :mod:`repro.runner`: results are cached under
``.repro-cache/`` (disable with ``--no-cache``) and ``--jobs N`` fans each
experiment's simulation batch out over N worker processes.

Observability (:mod:`repro.obs`): ``--trace FILE`` writes a JSONL event
log plus a Perfetto-loadable Chrome trace next to it, ``--metrics-json``
a structured metrics document, ``--gantt`` the ASCII context-occupancy
chart, and ``--telemetry-json`` the runner's cache/wall-time summary; the
``report`` subcommand renders a human-readable observability report.
``--profile FILE`` attaches the cycle-attribution profiler to the
simulation (in-process) and writes its phase/stall/tick document to
FILE; with ``--trace`` the profiler's counter tracks ride along in the
Perfetto trace.  ``service top`` renders fleet-wide telemetry for a
service root (``--watch`` refreshes), and ``bench record`` /
``bench compare`` maintain the append-only ``BENCH_history.jsonl``
ledger and gate throughput against the pinned ``BENCH_baseline.json``
(nonzero exit on a statistically significant regression).

Robustness (:mod:`repro.guard`): every run prints a one-line guard
summary; exit codes distinguish success (0) from tool/simulation failure
(1), usage errors (2), a degraded adaptation — some delinquent loads
dropped by fault isolation — (3), and a semantic-equivalence rollback
(4).  ``--inject SITE[:PROB[:TIMES]]`` (with ``--inject-seed``) arms the
deterministic fault-injection harness; ``--inject list`` prints the
sites.

Service mode (:mod:`repro.service`): ``service submit`` enqueues a batch
of runs on a shared root (``--root`` or ``REPRO_SERVICE_ROOT``), any
number of ``service worker`` processes — on any host sharing the root —
drain the queue into the shared content-addressed backend, and ``service
status``/``fetch`` poll and collect results.  ``service gc`` prunes aged
queue records and evicts cold cache entries by size/age budget.

Resilience (:mod:`repro.resilience`): ``--checkpoint-every N`` writes a
crash-safe checkpoint every N simulated cycles, ``--resume`` continues a
killed run from its last good checkpoint (``ssp-postpass runs`` lists
what is resumable), and ``--deadline SECS`` puts each run under the
supervisor's wall-clock budget.  Any of these flags routes execution
through the watchdog supervisor: hung workers are killed and retried
with backoff, repeated failures trip a per-spec circuit breaker to
serial execution, and budget blowouts descend the degradation ladder
(chaining SP → basic SP → top-1 load → unadapted).  **Exit codes are
unchanged by supervision**: a run that completes — even degraded down
the ladder, which is recorded in telemetry and
``RunResult.metrics["resilience"]`` rather than the exit code — still
exits 0/3/4 per the guard semantics above; only a spec the supervisor
had to *skip* (ladder and retries exhausted) surfaces as failure (1).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..guard import faultinject
from ..guard.faultinject import FaultInjector, FaultSpec, describe_sites
from ..obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace_events,
    collect_metrics,
    jsonl_records,
    render_report,
    write_chrome_trace,
    write_jsonl,
)
from ..runner import (
    ResultCache,
    Runner,
    RunSpec,
    WorkloadArtifacts,
    artifacts_for,
)
from ..workloads import PAPER_ORDER, workload_names

#: Exit codes.  0/1/2 keep their conventional meanings; 3 and 4 let
#: scripts distinguish a run that *succeeded but degraded* (some loads
#: dropped by the guard) from one where the semantic-equivalence check
#: rolled the adaptation back.  5 and 6 are service-plane terminals: a
#: batch with poison-quarantined jobs (workers kept dying on them) vs.
#: a wait that blew its ``--deadline`` — operators page on the former
#: and retry the latter.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3
EXIT_ROLLED_BACK = 4
EXIT_POISONED = 5
EXIT_DEADLINE = 6


def _guard_exit_code(guard, base: int) -> int:
    """Fold the guard report into the exit code (rollback > degraded)."""
    if guard.rolled_back:
        return EXIT_ROLLED_BACK
    if guard.degraded:
        return EXIT_DEGRADED
    return base


def _make_runner(args) -> Runner:
    resilience = None
    if (getattr(args, "deadline", None) is not None
            or getattr(args, "checkpoint_every", None) is not None
            or getattr(args, "resume", False)):
        from ..resilience import ResilienceConfig
        resilience = ResilienceConfig(
            deadline=args.deadline,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume)
    if args.no_cache:
        # Also force standalone mode: service dedupe flows through the
        # shared backend, which --no-cache explicitly opts out of.
        return Runner(jobs=args.jobs, cache=None, resilience=resilience,
                      service=None)
    # Default cache AND service resolution stay inside Runner, so the
    # CLI honours REPRO_CACHE_DIR / REPRO_SERVICE_ROOT identically to
    # library use.
    return Runner(jobs=args.jobs, resilience=resilience)


def _observed_artifacts(spec: RunSpec, tracer) -> WorkloadArtifacts:
    """Fresh (non-memoised) artifacts so every pass runs under ``tracer``.

    The shared :func:`artifacts_for` memo may already hold a fully-built
    profile/adaptation for this spec, in which case no spans would be
    recorded; an observed run pays the rebuild to get a complete trace.
    """
    artifacts = WorkloadArtifacts(spec.workload, spec.scale,
                                  spec.tool_options_dict())
    artifacts.tracer = tracer
    return artifacts


def _print_prefetch_effectiveness(stats, delinquent_uids,
                                  run_metrics=None) -> None:
    """Per-delinquent-load coverage / accuracy / timeliness lines.

    Prefers the prefetch attribution the worker attached to the run
    (``RunResult.metrics``): it was computed in the executing process,
    whose instruction uids are authoritative.  A ladder-degraded run
    executes a binary built in a child whose uid numbering differs from
    this process's, so looking its stats up with local uids finds
    nothing.  Falls back to local attribution for in-process runs.
    """
    if run_metrics and run_metrics.get("prefetch"):
        prefetch = {int(uid): row
                    for uid, row in run_metrics["prefetch"].items()}
    else:
        prefetch = stats.prefetch_metrics(delinquent_uids)
    if not prefetch:
        return
    print("      prefetch effectiveness per delinquent load:")
    for uid in sorted(prefetch):
        m = prefetch[uid]
        print(f"        load {uid}: coverage {m['coverage']:6.1%}  "
              f"accuracy {m['accuracy']:6.1%}  "
              f"timeliness {m['timeliness']:6.1%}  "
              f"(L1 misses {m['l1_misses']}, "
              f"prefetches {m['prefetches_issued']})")


def _adapt_and_report(name: str, scale: str, model: str,
                      show_disassembly: bool, runner: Runner,
                      trace: Optional[str] = None,
                      metrics_json: Optional[str] = None,
                      gantt: Optional[str] = None,
                      profile_out: Optional[str] = None,
                      profile_interval: Optional[int] = None,
                      sample=None) -> int:
    observing = bool(trace or metrics_json or gantt)
    profiler = None
    if profile_out:
        from ..obs import CycleProfiler, DEFAULT_INTERVAL
        profiler = CycleProfiler(
            interval=profile_interval or DEFAULT_INTERVAL)
    tracer = Tracer() if observing else NULL_TRACER
    ssp_spec = RunSpec.create(name, scale=scale, model=model,
                              variant="ssp")
    if sample:
        ssp_spec = ssp_spec.derive(sample_interval=sample[0],
                                   sample_window=sample[1])
        print(f"[sampled] detailed window {sample[1]} of every "
              f"{sample[0]} cycles; timing is approximate, program "
              f"results exact")
    artifacts = (_observed_artifacts(ssp_spec, tracer) if observing
                 else artifacts_for(ssp_spec))
    print(f"[1/4] profiling {name} ({scale}) on the baseline in-order "
          "model ...")
    profile = artifacts.profile
    print(f"      baseline cycles: {profile.baseline_cycles}, "
          f"total miss cycles: {profile.total_miss_cycles()}")

    print("[2/4] running the post-pass tool ...")
    result = artifacts.tool_result
    print(f"      delinquent loads: {result.delinquent_uids}")
    for decision in result.decisions:
        flag = "*" if decision.selected else " "
        print(f"     {flag} load {decision.load_uid} {decision.region_name}"
              f" {decision.kind}: slack/iter="
              f"{decision.slack_per_iteration:.1f} reduced="
              f"{decision.reduced_miss_cycles:.0f} "
              f"threshold={decision.threshold:.0f}")
    guard = result.guard
    print(f"      [guard] {guard.summary()}")
    if result.adapted is None:
        print("      no slices generated")
        return _guard_exit_code(guard, EXIT_FAILURE)
    row = result.table2_row()
    print(f"      slices={row['slices']:.0f} "
          f"interproc={row['interproc']:.0f} "
          f"avg size={row['avg_size']:.1f} "
          f"avg live-ins={row['avg_live_ins']:.1f}")

    print(f"[3/4] simulating the SSP-enhanced binary ({model}) ...")
    context_trace = None
    resilience_meta = None
    run_metrics = None
    if model == "inorder":
        if observing:
            # A context-traced simulation (bypasses the runner so the
            # exporters get per-context occupancy + sim events).
            from ..sim import trace_run
            with tracer.span("simulate", category="sim") as sp:
                heap = artifacts.workload.build_heap()
                stats, context_trace = trace_run(result.program, heap,
                                                 profiler=profiler)
                artifacts.workload.check_output(heap)
                sp.set(cycles=stats.cycles, spawns=stats.spawns)
        elif profiler is not None:
            # A profiled simulation is in-process by necessity (the
            # profiler hooks the live run loop), bypassing the runner.
            from ..sim import make_simulator
            heap = artifacts.workload.build_heap()
            sim = make_simulator(result.program, heap, "inorder")
            sim.attach_profiler(profiler)
            stats = sim.run()
            artifacts.workload.check_output(heap)
        else:
            ssp_result = runner.run_one(ssp_spec)
            if not ssp_result.ok:
                print(f"      simulation failed: {ssp_result.error}",
                      file=sys.stderr)
                return _guard_exit_code(guard, EXIT_FAILURE)
            stats = ssp_result.stats
            resilience_meta = ssp_result.metrics.get("resilience")
            run_metrics = ssp_result.metrics
        base = profile.baseline_cycles
    else:
        base_spec = RunSpec.create(name, scale=scale, model=model,
                                   variant="base")
        if profiler is not None:
            from ..sim import make_simulator
            heap = artifacts.workload.build_heap()
            sim = make_simulator(result.program, heap, "ooo")
            sim.attach_profiler(profiler)
            stats = sim.run()
            artifacts.workload.check_output(heap)
            base_result = runner.run_one(base_spec)
            if base_result.stats is None:
                print("      simulation failed", file=sys.stderr)
                return _guard_exit_code(guard, EXIT_FAILURE)
            base = base_result.stats.cycles
        else:
            ssp_result, base_result = runner.run([ssp_spec, base_spec])
            if ssp_result.stats is None or base_result.stats is None:
                print("      simulation failed", file=sys.stderr)
                return _guard_exit_code(guard, EXIT_FAILURE)
            stats, base = ssp_result.stats, base_result.stats.cycles
            resilience_meta = ssp_result.metrics.get("resilience")
            run_metrics = ssp_result.metrics
    print(f"      {model} baseline: {base} cycles; SSP: {stats.cycles} "
          f"cycles; speedup {base / stats.cycles:.2f}x")
    print(f"      spawns={stats.spawns} chk fired/ignored="
          f"{stats.chk_fired}/{stats.chk_ignored} "
          f"prefetches={stats.memory.prefetches_issued}")
    _print_prefetch_effectiveness(stats, result.delinquent_uids,
                                  run_metrics=run_metrics)

    print(f"[4/4] done.  [runner] {runner.telemetry.summary()}")
    if profiler is not None:
        print()
        print(profiler.render())
        with open(profile_out, "w", encoding="utf-8") as fh:
            json.dump(profiler.to_dict(), fh, indent=2, sort_keys=True)
        print(f"      profile written to {profile_out}")
    if gantt:
        if context_trace is not None:
            Path(gantt).write_text(context_trace.render_gantt() + "\n",
                                   encoding="utf-8")
            print(f"      gantt chart written to {gantt}")
        else:
            print("      --gantt needs the inorder model; skipped",
                  file=sys.stderr)
    if trace:
        meta = {"workload": name, "scale": scale, "model": model}
        write_jsonl(trace, jsonl_records(tracer, context_trace, meta=meta))
        chrome_path = Path(trace).with_suffix(".chrome.json")
        write_chrome_trace(chrome_path,
                           chrome_trace_events(tracer, context_trace,
                                               profiler=profiler))
        print(f"      trace written to {trace} (JSONL) and "
              f"{chrome_path} (Perfetto/chrome://tracing)")
    if metrics_json:
        metrics = collect_metrics(
            name, scale, model, profile=profile, tool_result=result,
            stats=stats, baseline_cycles=base, tracer=tracer,
            telemetry=runner.telemetry, resilience=resilience_meta,
            profiler=profiler)
        with open(metrics_json, "w", encoding="utf-8") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
        print(f"      metrics written to {metrics_json}")
    if show_disassembly:
        print()
        print(result.program.disassemble())
    return _guard_exit_code(guard, EXIT_OK)


def _run_experiments(names: List[str], scale: str, runner: Runner) -> int:
    from ..experiments import ALL_EXPERIMENTS, ExperimentContext
    context = ExperimentContext(scale, runner=runner)
    for name in names:
        experiment = ALL_EXPERIMENTS.get(name)
        if experiment is None:
            print(f"unknown experiment {name!r}; have "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        print()
        print(experiment(context=context, scale=scale).format())
    print()
    print(f"[runner] {runner.telemetry.summary()}")
    return 0


def _cache_command(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ssp-postpass cache",
        description="Inspect or clear the content-addressed result cache "
                    "(.repro-cache/, override with REPRO_CACHE_DIR).")
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument("--stale", action="store_true",
                        help="with clear: only remove generations from "
                             "older source-tree versions")
    args = parser.parse_args(argv)
    cache = ResultCache()
    if args.action == "stats":
        info = cache.stats()
        print(f"cache root:   {info['root']}")
        print(f"current salt: {info['current_salt']}")
        print(f"entries:      {info['entries']} "
              f"({info['bytes'] / 1024:.1f} KiB)")
        if info.get("quarantined"):
            print(f"quarantined:  {info['quarantined']} corrupt "
                  f"entr{'y' if info['quarantined'] == 1 else 'ies'} "
                  f"(*.json.bad; reap with 'cache clear --stale')")
        for gen in info["generations"]:
            tag = " (current)" if gen["current"] else " (stale)"
            line = (f"  {gen['salt']}{tag}: {gen['entries']} entries, "
                    f"{gen['bytes'] / 1024:.1f} KiB")
            if gen.get("quarantined"):
                line += f", {gen['quarantined']} quarantined"
            print(line)
        if not info["generations"]:
            print("  (empty)")
        return 0
    removed = cache.clear(stale_only=args.stale)
    print(f"removed {removed} cached result(s)")
    return 0


def _add_service_root_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="service root directory (default: "
                             "$REPRO_SERVICE_ROOT or .repro-service)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard the shared store across N roots by "
                             "spec-hash prefix (default: "
                             "$REPRO_SERVICE_SHARDS or flat)")
    parser.add_argument("--local-tier", default=None, metavar="DIR",
                        help="host-local write-through cache tier in "
                             "front of the shared root (default: "
                             "$REPRO_SERVICE_LOCAL_TIER or none)")
    parser.add_argument("--visibility-timeout", type=float, default=None,
                        metavar="SECS",
                        help="seconds of lease silence before another "
                             "worker may steal an in-flight job")
    parser.add_argument("--poison-threshold", type=int, default=None,
                        metavar="N",
                        help="lease steals before a job is quarantined "
                             "to queue/poisoned/ instead of redelivered "
                             "(default: 3)")


def _service_config(args):
    from ..service import ServiceConfig
    config = ServiceConfig.resolve(args.root)
    if args.shards is not None:
        config.shards = args.shards
    if args.local_tier is not None:
        config.local_tier = Path(args.local_tier)
    if args.visibility_timeout is not None:
        config.visibility_timeout = args.visibility_timeout
    if getattr(args, "poison_threshold", None) is not None:
        config.poison_threshold = args.poison_threshold
    return config


def _service_specs(args) -> List[RunSpec]:
    names = args.workloads or list(PAPER_ORDER)
    variants = args.variant or ["ssp"]
    return [RunSpec.create(name, scale=args.scale, model=args.model,
                           variant=variant)
            for name in names for variant in variants]


def _print_batch_status(status: dict) -> None:
    extras = "".join(
        f", {status[key]} {label}"
        for key, label in (("poisoned", "POISONED"), ("lost", "lost"),
                           ("missing", "missing"))
        if status.get(key))
    print(f"batch {status['batch']}: {status['done']}/{status['total']} "
          f"done, {status['failed']} failed, {status['running']} "
          f"running, {status['queued']} queued" + extras)


def _print_poisoned(client, status: dict) -> None:
    """One diagnostic line per quarantined job in the batch."""
    for digest, state in sorted(status.get("states", {}).items()):
        if state != "poisoned":
            continue
        record = client.queue.read_poisoned(digest) or {}
        detail = (record.get("last_error")
                  or "every worker died or wedged mid-job")
        print(f"  POISONED {record.get('label') or digest}: "
              f"{record.get('steals', 0)} lease steal(s), last worker "
              f"{record.get('last_worker') or '?'} — {detail}",
              file=sys.stderr)


def _wait_exit(client, batch_id: str, deadline, inline: bool) -> int:
    """Shared wait path: EXIT_DEADLINE on timeout, EXIT_POISONED when
    quarantined jobs made the batch terminal, else OK/FAILURE."""
    try:
        status = client.wait(batch_id, timeout=deadline,
                             inline_worker=inline)
    except TimeoutError as exc:
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    _print_batch_status(status)
    if status.get("poisoned"):
        _print_poisoned(client, status)
        return EXIT_POISONED
    return EXIT_OK if not status.get("failed") else EXIT_FAILURE


def _service_command(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ssp-postpass service",
        description="Multi-host batch service: submit simulation batches "
                    "to a shared queue, drain them with worker "
                    "processes, poll and fetch results from the shared "
                    "content-addressed backend.")
    sub = parser.add_subparsers(dest="action", required=True)

    p_submit = sub.add_parser(
        "submit", help="enqueue a batch; prints its batch id")
    p_submit.add_argument("workloads", nargs="*",
                          help="benchmarks to run (default: the seven "
                               "paper workloads)")
    p_submit.add_argument("--scale", default="small",
                          choices=("tiny", "small", "default"))
    p_submit.add_argument("--model", default="inorder",
                          choices=("inorder", "ooo"))
    p_submit.add_argument("--variant", action="append", default=None,
                          metavar="VARIANT",
                          help="variant to run per workload; repeat the "
                               "flag for several (default: ssp)")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the batch completes, running "
                               "an inline worker; exit 0/1/5/6 per the "
                               "batch outcome")
    p_submit.add_argument("--deadline", type=float, default=None,
                          metavar="SECS",
                          help="with --wait: give up after SECS and exit "
                               f"{EXIT_DEADLINE} (distinct from the "
                               f"poison exit {EXIT_POISONED})")
    _add_service_root_options(p_submit)

    p_wait = sub.add_parser(
        "wait", help="block until a batch completes; terminal exit codes "
                     "distinguish failures, poison quarantine, and a "
                     "blown deadline")
    p_wait.add_argument("batch_id")
    p_wait.add_argument("--deadline", type=float, default=None,
                        metavar="SECS",
                        help=f"give up after SECS with exit "
                             f"{EXIT_DEADLINE}")
    p_wait.add_argument("--no-worker", action="store_true",
                        help="poll only; do not run an inline worker "
                             "(rely on external 'service worker' "
                             "processes)")
    _add_service_root_options(p_wait)

    p_status = sub.add_parser("status", help="poll one batch")
    p_status.add_argument("batch_id")
    p_status.add_argument("--json", action="store_true",
                          help="print the full status document as JSON")
    _add_service_root_options(p_status)

    p_fetch = sub.add_parser(
        "fetch", help="collect a complete batch's results")
    p_fetch.add_argument("batch_id")
    p_fetch.add_argument("--json", metavar="FILE",
                         help="also write results as JSON to FILE")
    _add_service_root_options(p_fetch)

    p_worker = sub.add_parser(
        "worker", help="drain the queue (run one per core per host)")
    p_worker.add_argument("--max-jobs", type=int, default=None,
                          metavar="N", help="stop after N jobs")
    p_worker.add_argument("--idle-exit", type=float, default=None,
                          metavar="SECS",
                          help="linger SECS after the queue empties, "
                               "then exit (default: exit when starved)")
    p_worker.add_argument("--checkpoint-every", type=int, default=None,
                          metavar="CYCLES",
                          help="checkpoint each job every CYCLES "
                               "simulated cycles into the service root; "
                               "stolen leases resume from the victim's "
                               "last checkpoint")
    p_worker.add_argument("--deadline", type=float, default=None,
                          metavar="SECS",
                          help="per-job wall-clock budget; blowing it "
                               "descends the degradation ladder "
                               "(full > basic > top1 > unadapted) "
                               "instead of failing")
    p_worker.add_argument("--rss-budget", type=int, default=None,
                          metavar="MB",
                          help="per-job RSS budget; an OOM blowout also "
                               "walks the degradation ladder")
    p_worker.add_argument("--inject", action="append", default=None,
                          metavar="SITE[:PROB[:TIMES]]",
                          help="arm the fault-injection harness in this "
                               "worker (repeatable; service sites: "
                               "worker.crash, backend.put.partial, ...)")
    p_worker.add_argument("--inject-seed", type=int, default=0,
                          metavar="N",
                          help="seed for the deterministic fault "
                               "injector (default: 0)")
    _add_service_root_options(p_worker)

    p_top = sub.add_parser(
        "top", help="fleet-wide telemetry: per-worker throughput, queue "
                    "depth and lease ages, backend hit rates")
    p_top.add_argument("--watch", type=float, default=None, metavar="SECS",
                       help="refresh the screen every SECS seconds until "
                            "interrupted (default: render once)")
    p_top.add_argument("--json", action="store_true",
                       help="print the fleet document as JSON instead")
    _add_service_root_options(p_top)

    p_gc = sub.add_parser(
        "gc", help="prune aged queue records and evict cold entries")
    p_gc.add_argument("--max-age", type=float, default=None,
                      metavar="SECS",
                      help="evict cache entries and done records older "
                           "than SECS")
    p_gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                      help="evict oldest cache entries until the store "
                           "fits in N bytes")
    _add_service_root_options(p_gc)

    args = parser.parse_args(argv)
    from ..service import ServiceClient, ServiceWorker
    config = _service_config(args)

    if args.action == "submit":
        client = ServiceClient(config=config)
        specs = _service_specs(args)
        batch_id = client.submit(specs)
        manifest = client.load_batch(batch_id)
        print(f"batch {batch_id}: {len(manifest['hashes'])} unique "
              f"spec(s), {manifest['enqueued']} enqueued, "
              f"{manifest['cached_at_submit']} already cached")
        if args.wait:
            return _wait_exit(client, batch_id, args.deadline,
                              inline=True)
        print(f"poll with: ssp-postpass service status {batch_id} "
              f"--root {config.root}")
        return EXIT_OK

    if args.action == "wait":
        client = ServiceClient(config=config)
        try:
            return _wait_exit(client, args.batch_id, args.deadline,
                              inline=not args.no_worker)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return EXIT_FAILURE

    if args.action == "status":
        client = ServiceClient(config=config)
        try:
            status = client.status(args.batch_id)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return EXIT_FAILURE
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            _print_batch_status(status)
        if not status["complete"]:
            return EXIT_FAILURE
        if status.get("poisoned"):
            _print_poisoned(client, status)
            return EXIT_POISONED
        return EXIT_OK

    if args.action == "fetch":
        client = ServiceClient(config=config)
        try:
            results = client.fetch(args.batch_id)
        except (KeyError, RuntimeError) as exc:
            print(exc.args[0], file=sys.stderr)
            return EXIT_FAILURE
        failures = 0
        for result in results:
            if result.ok:
                print(f"  {result.spec.label():<36} "
                      f"{result.stats.cycles:>12,} cycles")
            else:
                failures += 1
                print(f"  {result.spec.label():<36} FAILED: "
                      f"{result.error}")
        if args.json:
            doc = [{"spec": r.spec.key(), "label": r.spec.label(),
                    "ok": r.ok, "stats": r.stats_dict or None,
                    "error": r.error, "attempts": r.attempts}
                   for r in results]
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            print(f"results written to {args.json}")
        return EXIT_OK if not failures else EXIT_FAILURE

    if args.action == "worker":
        injector = None
        if args.inject:
            if "list" in args.inject:
                for line in describe_sites():
                    print(line)
                return EXIT_OK
            try:
                specs = [FaultSpec.parse(text) for text in args.inject]
            except ValueError as exc:
                print(f"--inject: {exc}", file=sys.stderr)
                return EXIT_USAGE
            injector = faultinject.install(
                FaultInjector(specs, seed=args.inject_seed))
        resilience = None
        if (args.checkpoint_every is not None
                or args.deadline is not None
                or args.rss_budget is not None):
            from ..resilience import ResilienceConfig
            resilience = ResilienceConfig(
                deadline=args.deadline,
                checkpoint_every=args.checkpoint_every,
                rss_budget_mb=args.rss_budget)
        try:
            worker = ServiceWorker(config.make_queue(),
                                   config.make_backend(),
                                   resilience=resilience)
            processed = worker.drain(max_jobs=args.max_jobs,
                                     idle_exit=args.idle_exit)
            summary_path = worker.write_summary()
        finally:
            if injector is not None:
                faultinject.uninstall()
        print(f"worker {worker.worker_id}: {processed} job(s) — "
              f"{worker.executed} executed, {worker.deduped} deduped, "
              f"{worker.failures} failed, {worker.requeues} requeued, "
              f"{worker.stolen} stolen lease(s), {worker.degraded} "
              f"degraded, {worker.resumes} resumed")
        if injector is not None and injector.fired:
            fired = "  ".join(f"{site}={count}" for site, count
                              in sorted(injector.fired.items()))
            print(f"faults injected: {fired}")
        print(f"summary written to {summary_path}")
        return EXIT_OK

    if args.action == "top":
        from ..obs import collect_fleet, render_fleet

        def _render_once() -> None:
            doc = collect_fleet(config=config)
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                print(render_fleet(doc))

        if args.watch:
            try:
                while True:
                    # ANSI clear + home, like watch(1)/top(1).
                    print("\x1b[2J\x1b[H", end="")
                    _render_once()
                    time.sleep(args.watch)
            except KeyboardInterrupt:
                return EXIT_OK
        _render_once()
        return EXIT_OK

    # gc
    queue = config.make_queue()
    backend = config.make_backend()
    reaped = queue.gc(max_age=args.max_age)
    evicted = backend.evict(max_bytes=args.max_bytes,
                            max_age=args.max_age)
    print(f"queue: reaped {reaped} record(s); cache: evicted {evicted} "
          f"entr{'y' if evicted == 1 else 'ies'}")
    counts = queue.counts()
    line = (f"queue now: {counts['pending']} pending, {counts['leased']} "
            f"leased, {counts['done']} done, {counts['failed']} failed")
    if counts.get("poisoned"):
        line += f", {counts['poisoned']} POISONED"
    print(line)
    return EXIT_OK


def _bench_command(argv: List[str]) -> int:
    from ..obs import regress

    parser = argparse.ArgumentParser(
        prog="ssp-postpass bench",
        description="Perf-regression ledger: 'record' appends a "
                    "median-of-K timing record to the append-only "
                    "BENCH_history.jsonl (and can pin it as the "
                    "baseline); 'compare' measures again and gates "
                    "against the pinned baseline, exiting nonzero on a "
                    "statistically significant throughput regression.")
    sub = parser.add_subparsers(dest="action", required=True)

    def _common(p) -> None:
        p.add_argument("workloads", nargs="*",
                       help="benchmarks to time (default: the seven "
                            "paper workloads)")
        p.add_argument("--scale", default="tiny",
                       choices=("tiny", "small", "default"))
        p.add_argument("--model", default="inorder",
                       choices=("inorder", "ooo"))
        p.add_argument("--k", type=int, default=5, metavar="N",
                       help="measured runs per workload, after one "
                            "discarded warm-up (default: 5)")
        p.add_argument("--label", default="", metavar="TEXT",
                       help="free-form label stored in the record")
        p.add_argument("--ledger", default=regress.LEDGER_NAME,
                       metavar="FILE",
                       help=f"append-only JSONL ledger (default: "
                            f"{regress.LEDGER_NAME})")
        p.add_argument("--baseline", default=regress.BASELINE_NAME,
                       metavar="FILE",
                       help=f"pinned baseline file (default: "
                            f"{regress.BASELINE_NAME})")

    p_record = sub.add_parser(
        "record", help="time the workloads and append to the ledger")
    _common(p_record)
    p_record.add_argument("--pin", action="store_true",
                          help="also pin this record as the baseline "
                               "'bench compare' gates against")

    p_compare = sub.add_parser(
        "compare", help="time the workloads and gate against the "
                        "pinned baseline (nonzero exit on regression)")
    _common(p_compare)
    p_compare.add_argument("--nsigma", type=float,
                           default=regress.DEFAULT_NSIGMA, metavar="N",
                           help="noise band width in combined sigmas "
                                f"(default: {regress.DEFAULT_NSIGMA:g})")
    p_compare.add_argument("--min-rel", type=float,
                           default=regress.DEFAULT_MIN_REL, metavar="R",
                           help="relative drop floor below which nothing "
                                "regresses (default: "
                                f"{regress.DEFAULT_MIN_REL:g})")
    p_compare.add_argument("--inject-slowdown", type=float, default=1.0,
                           metavar="X",
                           help="multiply measured wall times by X — "
                                "self-test knob proving the gate fires "
                                "(used by CI)")
    p_compare.add_argument("--no-ledger", action="store_true",
                           help="do not append this measurement to the "
                                "ledger (injected self-tests should not "
                                "pollute the trajectory)")
    p_compare.add_argument("--assert-speedup", type=float, default=0.0,
                           metavar="X",
                           help="also fail unless the median throughput "
                                "ratio vs the baseline is at least X "
                                "(CI gate for deliberate speedups)")

    args = parser.parse_args(argv)
    names = args.workloads or list(PAPER_ORDER)
    if args.k < 3:
        if args.action == "record" and args.pin:
            # A pinned baseline is what every later compare gates
            # against: with K < 3 the MAD is meaningless (K=1 gives 0 —
            # an infinitely confident band) and the gate goes blind.
            print(f"bench record --pin: --k {args.k} cannot pin a "
                  f"baseline; a usable noise estimate needs K >= 3",
                  file=sys.stderr)
            return EXIT_USAGE
        print(f"bench: warning: --k {args.k} gives a degenerate noise "
              f"estimate (MAD needs K >= 3)", file=sys.stderr)
    inject = getattr(args, "inject_slowdown", 1.0)
    try:
        record = regress.measure(
            names, scale=args.scale, k=args.k, model=args.model,
            label=args.label, inject_slowdown=inject,
            progress=lambda line: print(f"  {line}"))
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.action == "record":
        regress.append_record(record, args.ledger)
        print(f"recorded {len(names)} workload(s) at {args.scale} scale "
              f"-> {args.ledger} "
              f"({len(regress.read_ledger(args.ledger))} record(s))")
        if args.pin:
            regress.pin_baseline(record, args.baseline)
            print(f"baseline pinned -> {args.baseline}")
        return EXIT_OK

    # compare
    baseline = regress.load_baseline(args.baseline)
    if baseline is None:
        print(f"bench compare: no baseline at {args.baseline}; pin one "
              f"with 'ssp-postpass bench record --pin'", file=sys.stderr)
        return EXIT_USAGE
    if not args.no_ledger and inject == 1.0:
        regress.append_record(record, args.ledger)
    result = regress.compare(baseline, record, nsigma=args.nsigma,
                             min_rel=args.min_rel)
    print(regress.render_compare(result))
    if args.assert_speedup > 0:
        ratio = result.get("median_speedup", 0.0)
        if ratio < args.assert_speedup:
            print(f"bench compare: median throughput ratio {ratio:.2f}x "
                  f"below asserted {args.assert_speedup:g}x",
                  file=sys.stderr)
            return EXIT_FAILURE
        print(f"asserted speedup met: {ratio:.2f}x >= "
              f"{args.assert_speedup:g}x")
    return EXIT_OK if result["ok"] else EXIT_FAILURE


def _runs_command(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ssp-postpass runs",
        description="List resumable run checkpoints (written by "
                    "--checkpoint-every, consumed by --resume).")
    parser.parse_args(argv)
    from ..resilience import CheckpointStore
    entries = CheckpointStore().list_runs()
    if not entries:
        print("no resumable checkpoints")
        return 0
    now = time.time()
    for entry in entries:
        if entry["valid"]:
            age = now - entry["created"]
            print(f"  {entry['key'][:16]}  {entry['label']:<32} "
                  f"cycle {entry['cycle']:>12,}  ({age:.0f}s ago)")
        else:
            print(f"  {entry['key'][:16]}  <unreadable: {entry['error']}>")
    print(f"{len(entries)} checkpoint(s); resume with "
          f"'ssp-postpass WORKLOAD --checkpoint-every N --resume'")
    return 0


def _report_command(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ssp-postpass report",
        description="Render the observability report for one workload: "
                    "pass spans, Table 2 slice rows, per-delinquent-load "
                    "prefetch coverage/accuracy/timeliness.")
    parser.add_argument("workload", nargs="?",
                        help="benchmark to profile, adapt and simulate")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "default"))
    parser.add_argument("--model", default="inorder",
                        choices=("inorder", "ooo"))
    parser.add_argument("--from", dest="from_file", metavar="FILE",
                        help="render a saved --metrics-json document "
                             "instead of running anything")
    parser.add_argument("--fleet", action="store_true",
                        help="also aggregate and render the service "
                             "root's fleet telemetry (workers, queue, "
                             "backend)")
    args = parser.parse_args(argv)

    if args.from_file:
        with open(args.from_file, "r", encoding="utf-8") as fh:
            metrics = json.load(fh)
        print(render_report(metrics))
        return 0
    if not args.workload:
        parser.print_usage()
        return 2

    tracer = Tracer()
    spec = RunSpec.create(args.workload, scale=args.scale,
                          model=args.model, variant="ssp")
    artifacts = _observed_artifacts(spec, tracer)
    profile = artifacts.profile
    result = artifacts.tool_result
    stats = None
    baseline = (profile.baseline_cycles if args.model == "inorder"
                else None)
    telemetry = None
    if result.adapted is not None:
        if args.model == "inorder":
            from ..sim import trace_run
            with tracer.span("simulate", category="sim") as sp:
                heap = artifacts.workload.build_heap()
                stats, _ = trace_run(result.program, heap)
                artifacts.workload.check_output(heap)
                sp.set(cycles=stats.cycles, spawns=stats.spawns)
        else:
            runner = Runner()
            base_spec = RunSpec.create(args.workload, scale=args.scale,
                                       model=args.model, variant="base")
            stats = runner.stats(spec)
            baseline = runner.stats(base_spec).cycles
            telemetry = runner.telemetry
    fleet = None
    if args.fleet:
        from ..obs import collect_fleet
        fleet = collect_fleet()
    metrics = collect_metrics(
        args.workload, args.scale, args.model, profile=profile,
        tool_result=result, stats=stats, baseline_cycles=baseline,
        tracer=tracer, telemetry=telemetry, fleet=fleet)
    print(render_report(metrics))
    return 0


def _check_command(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ssp-postpass check",
        description="Correctness checks over the adaptation pipeline: "
                    "lint every workload's adapted binary (control-flow "
                    "integrity, register discipline, trigger legality), "
                    "run the cross-model differential oracle "
                    "(interpreter / in-order / OOO), and optionally fuzz "
                    "the whole pipeline with seeded random programs.")
    parser.add_argument("workloads", nargs="*",
                        help="workloads to check (default: the seven "
                             "paper benchmarks)")
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "default"))
    parser.add_argument("--budgets", action="store_true",
                        help="also run the oracle's timing models with "
                             "aggressive runaway-slice containment "
                             "budgets enabled")
    parser.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="additionally fuzz N seeded random programs "
                             "through the complete pipeline")
    parser.add_argument("--fuzz-seed", type=int, default=20020617,
                        metavar="SEED",
                        help="base seed for --fuzz (case i uses SEED+i)")
    args = parser.parse_args(argv)

    from ..check import lint_program, run_fuzz, run_oracle

    names = args.workloads or list(PAPER_ORDER)
    failures = 0
    for name in names:
        artifacts = WorkloadArtifacts(name, args.scale)
        result = artifacts.tool_result
        if result.adapted is None:
            print(f"{name:<12} {args.scale:<8} DEGRADED  "
                  f"[guard] {result.guard.summary()}")
            failures += 1
            continue
        violations = lint_program(artifacts.program,
                                  result.adapted.program)
        oracle = run_oracle(name, args.scale, budgets=args.budgets,
                            artifacts=artifacts)
        status = "ok" if not violations and oracle.ok else "FAIL"
        print(f"{name:<12} {args.scale:<8} {status}  "
              f"lint: {len(violations)} violation(s), "
              f"oracle: {len(oracle.checks)} check(s), "
              f"{len(oracle.failures)} failure(s)")
        for violation in violations:
            print(f"  {violation}")
        for failure in oracle.failures:
            print(f"  {failure}")
        if violations or not oracle.ok:
            failures += 1
    if args.fuzz:
        report = run_fuzz(args.fuzz, base_seed=args.fuzz_seed)
        print(report.summary())
        if not report.ok:
            failures += 1
    print(f"check: {'ok' if not failures else 'FAILED'} "
          f"({len(names)} workload(s)"
          + (f", {args.fuzz} fuzz case(s)" if args.fuzz else "") + ")")
    return EXIT_OK if not failures else EXIT_FAILURE


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:  # pragma: no cover - console entry point
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_command(argv[1:])
    if argv and argv[0] == "report":
        return _report_command(argv[1:])
    if argv and argv[0] == "check":
        return _check_command(argv[1:])
    if argv and argv[0] == "runs":
        return _runs_command(argv[1:])
    if argv and argv[0] == "service":
        return _service_command(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_command(argv[1:])

    parser = argparse.ArgumentParser(
        prog="ssp-postpass",
        description="Post-pass binary adaptation for software-based "
                    "speculative precomputation (PLDI 2002 reproduction).")
    parser.add_argument("workload", nargs="?",
                        help="benchmark to adapt (see --list), or the "
                             "'cache' subcommand (stats/clear)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "default"))
    parser.add_argument("--model", default="inorder",
                        choices=("inorder", "ooo"))
    parser.add_argument("--list", action="store_true",
                        help="list available workloads")
    parser.add_argument("--disassemble", action="store_true",
                        help="print the adapted binary")
    parser.add_argument("--experiments", nargs="+", metavar="EXP",
                        help="run named experiments (table1, figure2, "
                             "table2, figure8, figure9, figure10, "
                             "hand_vs_auto)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="simulate batches on N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache (neither "
                             "read nor written)")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a JSONL event log to FILE and a "
                             "Chrome trace (Perfetto-loadable) next to it "
                             "as FILE-stem.chrome.json")
    parser.add_argument("--metrics-json", metavar="FILE",
                        help="write the structured metrics document "
                             "(pass spans, Table 2 rows, prefetch "
                             "coverage/accuracy/timeliness) to FILE")
    parser.add_argument("--gantt", metavar="FILE",
                        help="write the ASCII context-occupancy chart to "
                             "FILE (inorder model only)")
    parser.add_argument("--profile", metavar="FILE",
                        help="attach the cycle-attribution profiler to "
                             "the simulation (runs it in-process) and "
                             "write the phase/stall/tick document to "
                             "FILE; with --trace its counter tracks ride "
                             "along in the Perfetto trace")
    parser.add_argument("--profile-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="profiler sampling interval in simulated "
                             "cycles (default: 4096)")
    parser.add_argument("--telemetry-json", metavar="FILE",
                        help="write the runner's machine-readable "
                             "cache/wall-time summary to FILE")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECS",
                        help="per-run wall-clock budget; blowing it "
                             "descends the degradation ladder instead of "
                             "failing (enables the supervisor)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="CYCLES",
                        help="write a crash-safe simulator checkpoint "
                             "every CYCLES simulated cycles (enables the "
                             "supervisor; see 'ssp-postpass runs')")
    parser.add_argument("--resume", action="store_true",
                        help="resume killed runs from their last good "
                             "checkpoint instead of starting fresh")
    parser.add_argument("--inject", action="append", default=None,
                        metavar="SITE[:PROB[:TIMES]]",
                        help="arm the fault-injection harness at SITE "
                             "(repeatable; '--inject list' prints the "
                             "site registry)")
    parser.add_argument("--inject-seed", type=int, default=0, metavar="N",
                        help="seed for the deterministic fault injector "
                             "(default: 0)")
    parser.add_argument("--sample", metavar="INTERVAL[:WINDOW]",
                        default=None,
                        help="sampled simulation: out of every INTERVAL "
                             "cycles simulate WINDOW in full detail "
                             "(default WINDOW: INTERVAL//5) and "
                             "fast-forward the rest at the window's "
                             "measured CPI; approximate timing, exact "
                             "program results (see README)")
    args = parser.parse_args(argv)

    if args.list:
        for name in workload_names():
            marker = "*" if name in PAPER_ORDER else " "
            print(f" {marker} {name}")
        return EXIT_OK
    sample = None
    if args.sample:
        from ..sim.sampling import validate_sampling
        try:
            if ":" in args.sample:
                interval_text, window_text = args.sample.split(":", 1)
                sample = (int(interval_text), int(window_text))
            else:
                interval = int(args.sample)
                sample = (interval, interval // 5)
            validate_sampling(*sample)
        except ValueError as exc:
            print(f"--sample: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if args.trace or args.metrics_json or args.gantt or args.profile:
            print("--sample runs through the batch runner and cannot be "
                  "combined with the in-process observers (--trace, "
                  "--metrics-json, --gantt, --profile)", file=sys.stderr)
            return EXIT_USAGE
    injector = None
    if args.inject:
        if "list" in args.inject:
            for line in describe_sites():
                print(line)
            return EXIT_OK
        try:
            specs = [FaultSpec.parse(text) for text in args.inject]
        except ValueError as exc:
            print(f"--inject: {exc}", file=sys.stderr)
            return EXIT_USAGE
        injector = faultinject.install(
            FaultInjector(specs, seed=args.inject_seed))
    try:
        runner = _make_runner(args)
        if args.experiments:
            code = _run_experiments(args.experiments, args.scale, runner)
        elif not args.workload:
            parser.print_usage()
            return EXIT_USAGE
        else:
            code = _adapt_and_report(args.workload, args.scale, args.model,
                                     args.disassemble, runner,
                                     trace=args.trace,
                                     metrics_json=args.metrics_json,
                                     gantt=args.gantt,
                                     profile_out=args.profile,
                                     profile_interval=args.profile_interval,
                                     sample=sample)
        if args.telemetry_json:
            with open(args.telemetry_json, "w", encoding="utf-8") as fh:
                json.dump(runner.telemetry.to_dict(), fh, indent=2,
                          sort_keys=True)
            print(f"[runner] telemetry written to {args.telemetry_json}")
        return code
    finally:
        # An installed injector is process-global; never leak it past the
        # invocation that armed it (tests call main() in-process).
        if injector is not None:
            faultinject.uninstall()


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into `head` closes stdout early; exit quietly.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
