"""Command-line interface: ``ssp-postpass``.

Runs the post-pass flow on a named benchmark workload and reports the
adaptation and its effect::

    ssp-postpass mcf --scale small --model inorder
    ssp-postpass --list
    ssp-postpass --experiments figure8 table2 --jobs 4
    ssp-postpass cache stats
    ssp-postpass cache clear [--stale]

All simulations go through :mod:`repro.runner`: results are cached under
``.repro-cache/`` (disable with ``--no-cache``) and ``--jobs N`` fans each
experiment's simulation batch out over N worker processes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..runner import ResultCache, Runner, RunSpec, artifacts_for
from ..workloads import PAPER_ORDER, workload_names


def _make_runner(args) -> Runner:
    cache = None if args.no_cache else ResultCache.from_environment()
    return Runner(jobs=args.jobs, cache=cache)


def _adapt_and_report(name: str, scale: str, model: str,
                      show_disassembly: bool, runner: Runner) -> int:
    ssp_spec = RunSpec.create(name, scale=scale, model=model,
                              variant="ssp")
    artifacts = artifacts_for(ssp_spec)
    print(f"[1/4] profiling {name} ({scale}) on the baseline in-order "
          "model ...")
    profile = artifacts.profile
    print(f"      baseline cycles: {profile.baseline_cycles}, "
          f"total miss cycles: {profile.total_miss_cycles()}")

    print("[2/4] running the post-pass tool ...")
    result = artifacts.tool_result
    print(f"      delinquent loads: {result.delinquent_uids}")
    for decision in result.decisions:
        flag = "*" if decision.selected else " "
        print(f"     {flag} load {decision.load_uid} {decision.region_name}"
              f" {decision.kind}: slack/iter="
              f"{decision.slack_per_iteration:.1f} reduced="
              f"{decision.reduced_miss_cycles:.0f} "
              f"threshold={decision.threshold:.0f}")
    if result.adapted is None:
        print("      no slices generated")
        return 1
    row = result.table2_row()
    print(f"      slices={row['slices']:.0f} "
          f"interproc={row['interproc']:.0f} "
          f"avg size={row['avg_size']:.1f} "
          f"avg live-ins={row['avg_live_ins']:.1f}")

    print(f"[3/4] simulating the SSP-enhanced binary ({model}) ...")
    if model == "inorder":
        stats = runner.stats(ssp_spec)
        base = profile.baseline_cycles
    else:
        base_spec = RunSpec.create(name, scale=scale, model=model,
                                   variant="base")
        ssp_result, base_result = runner.run([ssp_spec, base_spec])
        stats, base = ssp_result.stats, base_result.stats.cycles
        if stats is None or base_result.stats is None:
            print("      simulation failed", file=sys.stderr)
            return 1
    print(f"      {model} baseline: {base} cycles; SSP: {stats.cycles} "
          f"cycles; speedup {base / stats.cycles:.2f}x")
    print(f"      spawns={stats.spawns} chk fired/ignored="
          f"{stats.chk_fired}/{stats.chk_ignored} "
          f"prefetches={stats.memory.prefetches_issued}")

    print(f"[4/4] done.  [runner] {runner.telemetry.summary()}")
    if show_disassembly:
        print()
        print(result.program.disassemble())
    return 0


def _run_experiments(names: List[str], scale: str, runner: Runner) -> int:
    from ..experiments import ALL_EXPERIMENTS, ExperimentContext
    context = ExperimentContext(scale, runner=runner)
    for name in names:
        experiment = ALL_EXPERIMENTS.get(name)
        if experiment is None:
            print(f"unknown experiment {name!r}; have "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        print()
        print(experiment(context=context, scale=scale).format())
    print()
    print(f"[runner] {runner.telemetry.summary()}")
    return 0


def _cache_command(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ssp-postpass cache",
        description="Inspect or clear the content-addressed result cache "
                    "(.repro-cache/, override with REPRO_CACHE_DIR).")
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument("--stale", action="store_true",
                        help="with clear: only remove generations from "
                             "older source-tree versions")
    args = parser.parse_args(argv)
    cache = ResultCache()
    if args.action == "stats":
        info = cache.stats()
        print(f"cache root:   {info['root']}")
        print(f"current salt: {info['current_salt']}")
        print(f"entries:      {info['entries']} "
              f"({info['bytes'] / 1024:.1f} KiB)")
        for gen in info["generations"]:
            tag = " (current)" if gen["current"] else " (stale)"
            print(f"  {gen['salt']}{tag}: {gen['entries']} entries, "
                  f"{gen['bytes'] / 1024:.1f} KiB")
        if not info["generations"]:
            print("  (empty)")
        return 0
    removed = cache.clear(stale_only=args.stale)
    print(f"removed {removed} cached result(s)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:  # pragma: no cover - console entry point
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_command(argv[1:])

    parser = argparse.ArgumentParser(
        prog="ssp-postpass",
        description="Post-pass binary adaptation for software-based "
                    "speculative precomputation (PLDI 2002 reproduction).")
    parser.add_argument("workload", nargs="?",
                        help="benchmark to adapt (see --list), or the "
                             "'cache' subcommand (stats/clear)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "default"))
    parser.add_argument("--model", default="inorder",
                        choices=("inorder", "ooo"))
    parser.add_argument("--list", action="store_true",
                        help="list available workloads")
    parser.add_argument("--disassemble", action="store_true",
                        help="print the adapted binary")
    parser.add_argument("--experiments", nargs="+", metavar="EXP",
                        help="run named experiments (table1, figure2, "
                             "table2, figure8, figure9, figure10, "
                             "hand_vs_auto)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="simulate batches on N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache (neither "
                             "read nor written)")
    args = parser.parse_args(argv)

    if args.list:
        for name in workload_names():
            marker = "*" if name in PAPER_ORDER else " "
            print(f" {marker} {name}")
        return 0
    runner = _make_runner(args)
    if args.experiments:
        return _run_experiments(args.experiments, args.scale, runner)
    if not args.workload:
        parser.print_usage()
        return 2
    return _adapt_and_report(args.workload, args.scale, args.model,
                             args.disassemble, runner)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
