"""Command-line interface: ``ssp-postpass``.

Runs the post-pass flow on a named benchmark workload and reports the
adaptation and its effect::

    ssp-postpass mcf --scale small --model inorder
    ssp-postpass --list
    ssp-postpass --experiments figure8 table2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..profiling.collect import collect_profile
from ..sim.machine import simulate
from ..workloads import PAPER_ORDER, make_workload, workload_names
from .postpass import SSPPostPassTool


def _adapt_and_report(name: str, scale: str, model: str,
                      show_disassembly: bool) -> int:
    workload = make_workload(name, scale)
    program = workload.build_program()
    print(f"[1/4] profiling {name} ({scale}) on the baseline in-order "
          "model ...")
    profile = collect_profile(program, workload.build_heap)
    print(f"      baseline cycles: {profile.baseline_cycles}, "
          f"total miss cycles: {profile.total_miss_cycles()}")

    print("[2/4] running the post-pass tool ...")
    result = SSPPostPassTool().adapt(program, profile)
    print(f"      delinquent loads: {result.delinquent_uids}")
    for decision in result.decisions:
        flag = "*" if decision.selected else " "
        print(f"     {flag} load {decision.load_uid} {decision.region_name}"
              f" {decision.kind}: slack/iter="
              f"{decision.slack_per_iteration:.1f} reduced="
              f"{decision.reduced_miss_cycles:.0f} "
              f"threshold={decision.threshold:.0f}")
    if result.adapted is None:
        print("      no slices generated")
        return 1
    row = result.table2_row()
    print(f"      slices={row['slices']:.0f} "
          f"interproc={row['interproc']:.0f} "
          f"avg size={row['avg_size']:.1f} "
          f"avg live-ins={row['avg_live_ins']:.1f}")

    print(f"[3/4] simulating the SSP-enhanced binary ({model}) ...")
    heap = workload.build_heap()
    stats = simulate(result.program, heap, model)
    workload.check_output(heap)
    base = profile.baseline_cycles if model == "inorder" else \
        simulate(program, workload.build_heap(), model,
                 spawning=False).cycles
    print(f"      {model} baseline: {base} cycles; SSP: {stats.cycles} "
          f"cycles; speedup {base / stats.cycles:.2f}x")
    print(f"      spawns={stats.spawns} chk fired/ignored="
          f"{stats.chk_fired}/{stats.chk_ignored} "
          f"prefetches={stats.memory.prefetches_issued}")

    print("[4/4] done.")
    if show_disassembly:
        print()
        print(result.program.disassemble())
    return 0


def _run_experiments(names: List[str], scale: str) -> int:
    from ..experiments import ALL_EXPERIMENTS, ExperimentContext
    context = ExperimentContext(scale)
    for name in names:
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; have "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
        print()
        print(runner(context=context, scale=scale).format())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ssp-postpass",
        description="Post-pass binary adaptation for software-based "
                    "speculative precomputation (PLDI 2002 reproduction).")
    parser.add_argument("workload", nargs="?",
                        help="benchmark to adapt (see --list)")
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "default"))
    parser.add_argument("--model", default="inorder",
                        choices=("inorder", "ooo"))
    parser.add_argument("--list", action="store_true",
                        help="list available workloads")
    parser.add_argument("--disassemble", action="store_true",
                        help="print the adapted binary")
    parser.add_argument("--experiments", nargs="+", metavar="EXP",
                        help="run named experiments (table1, figure2, "
                             "table2, figure8, figure9, figure10, "
                             "hand_vs_auto)")
    args = parser.parse_args(argv)

    if args.list:
        for name in workload_names():
            marker = "*" if name in PAPER_ORDER else " "
            print(f" {marker} {name}")
        return 0
    if args.experiments:
        return _run_experiments(args.experiments, args.scale)
    if not args.workload:
        parser.print_usage()
        return 2
    return _adapt_and_report(args.workload, args.scale, args.model,
                             args.disassemble)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
