"""Thread-context occupancy tracing.

Records, per hardware context, the intervals during which a thread
occupied it — enough to *see* chaining SP working: the main thread in
context 0 and a relay of short speculative threads cycling through
contexts 1-3, far ahead of the main thread's program counter.

``render_gantt`` draws an ASCII occupancy chart; tests use the interval
data to assert scheduling properties (e.g. that several speculative
threads were ever alive at once).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.memory import Heap
from ..isa.program import Program
from .config import MachineConfig, inorder_config
from .inorder import InOrderSimulator
from .stats import SimStats


class ContextTrace:
    """Occupancy intervals per hardware context."""

    def __init__(self, num_contexts: int):
        self.num_contexts = num_contexts
        #: context -> list of (tid, start_cycle, end_cycle).
        self.intervals: Dict[int, List[Tuple[int, int, int]]] = {
            slot: [] for slot in range(num_contexts)}
        self._open: Dict[int, Tuple[int, int]] = {}
        #: Simulation-time point events: (cycle, name, args) — spawns,
        #: fired triggers, thread lifecycle (the timeline exporters turn
        #: these into instant events on the context tracks).
        self.events: List[Tuple[int, str, Dict]] = []

    def note(self, cycle: int, name: str, **args) -> None:
        """Record a simulation-time point event."""
        self.events.append((cycle, name, args))

    def occupy(self, slot: int, tid: int, cycle: int) -> None:
        self._open[slot] = (tid, cycle)

    def release(self, slot: int, cycle: int) -> None:
        if slot in self._open:
            tid, start = self._open.pop(slot)
            self.intervals[slot].append((tid, start, cycle))

    def finish(self, cycle: int) -> None:
        for slot in list(self._open):
            self.release(slot, cycle)

    # -- queries -------------------------------------------------------------------

    def thread_count(self) -> int:
        return sum(len(v) for v in self.intervals.values())

    def max_concurrent_speculative(self) -> int:
        """Peak number of simultaneously-live speculative threads."""
        events: List[Tuple[int, int]] = []
        for slot, spans in self.intervals.items():
            if slot == 0:
                continue
            for _, start, end in spans:
                events.append((start, 1))
                events.append((end, -1))
        events.sort()
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        return peak

    def speculative_busy_cycles(self) -> int:
        return sum(end - start
                   for slot, spans in self.intervals.items()
                   if slot != 0 for _, start, end in spans)

    def render_gantt(self, width: int = 72) -> str:
        """ASCII occupancy chart, one row per hardware context."""
        horizon = max((end for spans in self.intervals.values()
                       for _, _, end in spans), default=1)
        scale = horizon / width
        lines = [f"cycles 0..{horizon} "
                 f"({scale:.0f} cycles per column)"]
        for slot in range(self.num_contexts):
            row = [" "] * width
            for tid, start, end in self.intervals[slot]:
                lo = min(width - 1, int(start / scale))
                hi = min(width - 1, max(lo, int((end - 1) / scale)))
                for i in range(lo, hi + 1):
                    row[i] = "M" if slot == 0 else "#"
            label = "main " if slot == 0 else f"spec{slot}"
            lines.append(f"{label} |{''.join(row)}|")
        return "\n".join(lines)


class TracingInOrderSimulator(InOrderSimulator):
    """In-order simulator that records context occupancy."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace = ContextTrace(self.config.hardware_contexts)
        self._now_hint = 0

    def _spawn(self, parent, target, now):  # noqa: D102
        self._now_hint = now
        before = [i for i, c in enumerate(self.contexts) if c is None]
        ok = super()._spawn(parent, target, now)
        if ok:
            after = [i for i, c in enumerate(self.contexts) if c is None]
            (slot,) = set(before) - set(after)
            self.trace.occupy(slot, self._next_tid, now)
            self.trace.note(now, "spawn", slot=slot, tid=self._next_tid,
                            parent=parent.state.tid)
        else:
            self.trace.note(now, "spawn_failure",
                            parent=parent.state.tid)
        return ok

    def _on_reap(self, slot: int, now: int) -> None:  # noqa: D102
        self.trace.release(slot, now)

    def _on_chk_fired(self, uid: int, now: int) -> None:  # noqa: D102
        self.trace.note(now, "chk_fired", uid=uid)

    def run(self) -> SimStats:  # noqa: D102
        self.trace.occupy(0, 0, 0)
        stats = super().run()
        self.trace.finish(stats.cycles)
        return stats


def trace_run(program: Program, heap: Heap,
              config: Optional[MachineConfig] = None,
              spawning: bool = True,
              profiler=None) -> Tuple[SimStats, ContextTrace]:
    """Simulate on the in-order model with context tracing.

    ``profiler`` optionally attaches a
    :class:`~repro.obs.profiler.CycleProfiler` so one traced run yields
    both the context-occupancy trace and the cycle-attribution profile.
    """
    sim = TracingInOrderSimulator(program, heap,
                                  config or inorder_config(), spawning)
    if profiler is not None:
        sim.attach_profiler(profiler)
    stats = sim.run()
    return stats, sim.trace
