"""Top-level simulation facade.

``simulate(program, heap, model="inorder")`` picks the right pipeline model
and runs the program to completion, returning :class:`SimStats`.  Heaps are
mutated by program stores, so callers re-create the heap (workloads provide
a ``build()`` that does both) for every run.
"""

from __future__ import annotations

from typing import Optional

from ..isa.memory import Heap
from ..isa.program import Program
from .config import MachineConfig, inorder_config, ooo_config
from .inorder import InOrderSimulator
from .ooo import OOOSimulator
from .stats import SimStats

MODELS = ("inorder", "ooo")


def make_config(model: str) -> MachineConfig:
    """Default configuration for a model name."""
    if model == "inorder":
        return inorder_config()
    if model == "ooo":
        return ooo_config()
    raise ValueError(f"unknown model {model!r}; expected one of {MODELS}")


def simulate(program: Program, heap: Heap, model: str = "inorder",
             config: Optional[MachineConfig] = None, spawning: bool = True,
             max_cycles: int = 200_000_000) -> SimStats:
    """Run ``program`` on the selected machine model and return statistics.

    Args:
        program: a finalised (or finalisable) IR program.
        heap: its initialised data memory.
        model: ``"inorder"`` or ``"ooo"``.
        config: machine configuration; defaults to the Table 1 preset of
            the chosen model.
        spawning: when False, ``chk.c`` never fires (used for profiling
            runs of un-adapted binaries and for baselines).
        max_cycles: runaway guard.
    """
    if config is None:
        config = make_config(model)
    if model == "inorder":
        sim = InOrderSimulator(program, heap, config, spawning, max_cycles)
    elif model == "ooo":
        sim = OOOSimulator(program, heap, config, spawning, max_cycles)
    else:
        raise ValueError(f"unknown model {model!r}; expected one of {MODELS}")
    return sim.run()
