"""Top-level simulation facade.

``simulate(program, heap, model="inorder")`` picks the right pipeline model
and runs the program to completion, returning :class:`SimStats`.  Heaps are
mutated by program stores, so callers re-create the heap (workloads provide
a ``build()`` that does both) for every run.
"""

from __future__ import annotations

from typing import Optional

from ..isa.memory import Heap
from ..isa.program import Program
from .config import MachineConfig, inorder_config, ooo_config
from .inorder import InOrderSimulator
from .ooo import OOOSimulator
from .stats import SimStats

#: model name -> (default-config factory, simulator class).  The single
#: source of truth for model validation: both :func:`make_config` and
#: :func:`simulate` resolve names here, so a bad model raises immediately
#: even when the caller supplies a custom ``config``.
MODELS = {
    "inorder": (inorder_config, InOrderSimulator),
    "ooo": (ooo_config, OOOSimulator),
}


def _lookup(model: str):
    try:
        return MODELS[model]
    except KeyError:
        raise ValueError(f"unknown model {model!r}; expected one of "
                         f"{tuple(MODELS)}") from None


def make_config(model: str) -> MachineConfig:
    """Default configuration for a model name."""
    config_factory, _ = _lookup(model)
    return config_factory()


def make_simulator(program: Program, heap: Heap, model: str = "inorder",
                   config: Optional[MachineConfig] = None,
                   spawning: bool = True, max_cycles: int = 200_000_000,
                   fast_path: Optional[bool] = None):
    """Construct (without running) the simulator for a model name.

    This is the entry point for checkpoint/resume callers, which need the
    simulator object itself to drive ``snapshot()``/``restore()`` and the
    ``run(checkpoint_every=..., on_checkpoint=...)`` hooks.

    ``fast_path`` selects the pre-decoded issue tables (True), the legacy
    Instruction-object interpreter (False), or the environment default
    (None: fast unless ``REPRO_SIM_LEGACY`` is set).  Statistics are
    byte-identical either way — the knob exists for the differential
    suite and for bisecting.
    """
    config_factory, sim_cls = _lookup(model)
    if config is None:
        config = config_factory()
    return sim_cls(program, heap, config, spawning, max_cycles,
                   fast_path=fast_path)


def simulate(program: Program, heap: Heap, model: str = "inorder",
             config: Optional[MachineConfig] = None, spawning: bool = True,
             max_cycles: int = 200_000_000,
             checkpoint_every: Optional[int] = None,
             on_checkpoint=None,
             fast_path: Optional[bool] = None) -> SimStats:
    """Run ``program`` on the selected machine model and return statistics.

    Args:
        program: a finalised (or finalisable) IR program.
        heap: its initialised data memory.
        model: ``"inorder"`` or ``"ooo"``.
        config: machine configuration; defaults to the Table 1 preset of
            the chosen model.
        spawning: when False, ``chk.c`` never fires (used for profiling
            runs of un-adapted binaries and for baselines).
        max_cycles: runaway guard.
        checkpoint_every / on_checkpoint: periodic checkpoint hook,
            forwarded to the simulator's ``run`` (cadence never affects
            the statistics).
    """
    sim = make_simulator(program, heap, model, config, spawning, max_cycles,
                         fast_path=fast_path)
    return sim.run(checkpoint_every=checkpoint_every,
                   on_checkpoint=on_checkpoint)
