"""Sampled simulation: detailed windows stitched by functional skips.

Full-detail simulation models every cycle.  The sampled mode (SMARTS-style
periodic sampling) instead alternates:

* a **detailed window** of ``sample_window`` cycles, simulated exactly by
  the machine model (``run(until_cycle=...)``), and
* a **functional fast-forward** covering the rest of each
  ``sample_interval``-cycle period: the main thread executes
  architecturally (so memory contents — and therefore every later
  detailed window and the final output check — stay exact) while the
  cache hierarchy and TLB keep warming with statistics recording off,
  and the clock advances at the last window's measured CPI.

Fast-forwarded cycles are charged to Figure 10 categories pro rata to the
last detailed window's breakdown (:meth:`SimStats.charge_proportional`),
so ``sum(cycle_breakdown) == cycles`` holds exactly and the Figure 2/8/9/10
shapes track the full-detail run within the error bound documented in
EXPERIMENTS.md.  Speculative threads contribute no *timing* during skips,
but their p-slices still execute functionally (:func:`warm_slice`) so the
prefetches they would have issued keep the cache hierarchy in its
SSP-accelerated steady state; the detailed windows carry the speculation
statistics.

The knobs live on :class:`repro.runner.spec.RunSpec` (``sample_interval`` /
``sample_window``) and sampled specs hash differently from full-detail
specs, so cached artifacts and ledger entries never conflate the two.
"""

from __future__ import annotations

from typing import Optional

from .stats import SimStats

#: Floor on the detailed window, in cycles.  Below this the first window
#: cannot even cover the pipeline's warm-up transients (spawn startup,
#: a single memory-latency miss) and CPI estimates are meaningless.
MIN_WINDOW = 100

#: CPI assumed for a skip when the last detailed window retired no
#: main-thread instructions (a window spent entirely in a stall).
FALLBACK_CPI = 2.0

#: Functional-warming caps: one spawn point warms at most this many
#: slices (chained spawns included), each bounded to this many
#: instructions — the detailed machine kills runaway slices with its
#: cycle/instruction budgets, and the warmer must be bounded too.
WARM_SLICE_FANOUT = 8
WARM_SLICE_INSTRUCTIONS = 2000

#: Upper bound on the measured chain pace (chained slices advanced per
#: skipped main-thread instruction).  The per-window measurement is
#: noisy — a window that catches a burst of chained spawns can report a
#: pace several times the true one, and a single overshooting skip can
#: functionally consume the rest of a pointer-chasing workload's chain
#: (permanently, once the dynamic chk throttle has suppressed the
#: trigger that would rebuild it).  Undershoot is self-correcting: the
#: next window re-spawns and re-measures.
CHAIN_RATE_CAP = 0.2

def advance_chain(program, heap, memory, dcode, state, max_links: int,
                  clock: int):
    """Functionally advance a paused speculative chain during a skip.

    Runs ``state`` (a live speculative thread) to the end of its slice,
    then follows chained spawns breadth-first for up to ``max_links``
    completed slices, replaying loads/``lfetch``\\ es against the memory
    hierarchy (statistics recording must already be off).  This is what
    the detailed machine would have done across the skipped interval —
    chaining workloads keep their prefetch frontier just ahead of the
    main thread, so post-skip windows measure the accelerated CPI.  The
    caller sets ``max_links`` from the chain pace the last detailed
    window *measured* (completed slices per main-thread instruction), so
    a self-sustaining chain neither falls behind the skipped main thread
    nor races ahead of the working set.  ``max_links == 0`` leaves the
    chain paused where it is.

    Returns ``(survivor, completed)``: the chain state that should
    occupy the hardware context after the skip and the number of slices
    completed.  The functional advance never *kills* a chain: if it
    drains within the link budget (which can mean the pace estimate
    overshot the real chain, not that the chain is done), the state is
    restored to its pre-advance position — the warming stands, and the
    next detailed window makes the live/dead call with real timing.
    """
    from ..isa.decode import K_LD, step_decoded
    from ..isa.interp import ExecutionError, ThreadState, spawn_thread
    backup = ThreadState(state.tid, state.pc, speculative=state.speculative)
    backup.regs = dict(state.regs)
    backup.preds = dict(state.preds)
    backup.call_stack = list(state.call_stack)
    backup.rfi_stack = list(state.rfi_stack)
    backup.lib_out = list(state.lib_out)
    backup.lib_in = list(state.lib_in)
    completed = 0
    links = 0
    pending = []
    cur = state
    while cur is not None and links < max_links:
        steps = 0
        dead = False
        while steps < WARM_SLICE_INSTRUCTIONS \
                and not (cur.halted or cur.killed):
            d = dcode[cur.pc]
            try:
                result = step_decoded(program, heap, cur, d, False)
            except ExecutionError:
                dead = True
                break
            steps += 1
            addr = result[0]
            if addr is not None:
                memory.access(addr, clock, d[13], False,
                              is_prefetch=d[0] != K_LD)
            elif result[2] is not None:
                pending.append(spawn_thread(cur, -1, result[2]))
        if not (cur.halted or cur.killed or dead):
            return cur, completed       # link budget ran out mid-slice
        completed += 1
        links += 1
        cur = pending.pop(0) if pending else None
    return (cur if cur is not None else backup), completed


def warm_slice(program, heap, memory, dcode, parent, target_pc: int,
               clock: int) -> None:
    """Functionally execute a spawned p-slice during a sampled-mode skip.

    The skip executes the main thread architecturally but models no
    speculative timing; without the slices' prefetches every post-skip
    detailed window would open on a cold cache and measure the
    *unadapted* binary's CPI — ruinously biased exactly where SSP wins
    big.  Warming runs each slice to completion functionally: loads and
    ``lfetch``\\ es touch the memory hierarchy at the skip clock (with
    statistics recording already off), register effects stay private to
    the discarded slice state, and chained spawns are followed up to
    ``WARM_SLICE_FANOUT`` slices of ``WARM_SLICE_INSTRUCTIONS`` each.
    """
    _drain_warm(program, heap, memory, dcode, [(parent, target_pc)], clock)


def warm_chk(program, heap, memory, dcode, state, stub_pc: int,
             clock: int) -> None:
    """Warm the spawn stub behind a ``chk.c`` during a sampled-mode skip.

    The skip steps the main thread with ``chk_fires=False`` so its
    instruction stream (and therefore the CPI the windows measure
    against) stays comparable to the detailed model, where firing is
    gated on free contexts and the throttle.  The stub is instead run on
    a scratch *clone* of the main state — live-in staging writes and the
    ``rfi`` return stay private to the clone — and every spawn it
    requests is slice-warmed so the cache keeps its SSP-accelerated
    contents.
    """
    from ..isa.decode import step_decoded
    from ..isa.interp import ExecutionError, ThreadState
    clone = ThreadState(-1, stub_pc, speculative=True)
    clone.regs = dict(state.regs)
    clone.preds = dict(state.preds)
    clone.lib_out = list(state.lib_out)
    clone.rfi_stack = [-1]
    pending = []
    steps = 0
    while clone.rfi_stack and steps < WARM_SLICE_INSTRUCTIONS \
            and not (clone.halted or clone.killed):
        d = dcode[clone.pc]
        try:
            result = step_decoded(program, heap, clone, d, False)
        except ExecutionError:
            return
        steps += 1
        if result[2] is not None:
            pending.append((clone, result[2]))
    _drain_warm(program, heap, memory, dcode, pending, clock)


def _drain_warm(program, heap, memory, dcode, pending, clock: int) -> None:
    """Run queued (parent, target) slices functionally, bounded."""
    from ..isa.decode import K_LD, step_decoded
    from ..isa.interp import ExecutionError, spawn_thread
    fanout = 0
    while pending and fanout < WARM_SLICE_FANOUT:
        src, pc = pending.pop()
        child = spawn_thread(src, -1, pc)
        fanout += 1
        steps = 0
        while steps < WARM_SLICE_INSTRUCTIONS \
                and not (child.halted or child.killed):
            d = dcode[child.pc]
            try:
                result = step_decoded(program, heap, child, d, False)
            except ExecutionError:
                break          # malformed slice: the detail path kills it
            steps += 1
            addr = result[0]
            if addr is not None:
                memory.access(addr, clock, d[13], False,
                              is_prefetch=d[0] != K_LD)
            elif result[2] is not None:
                pending.append((child, result[2]))


def validate_sampling(interval: int, window: int) -> None:
    """Raise ``ValueError`` unless (interval, window) is a usable pair."""
    if interval <= 0:
        raise ValueError(f"sample_interval must be > 0, got {interval}")
    if window < MIN_WINDOW:
        raise ValueError(
            f"sample_window must be >= {MIN_WINDOW} cycles, got {window}")
    if window >= interval:
        raise ValueError(
            f"sample_window ({window}) must be smaller than "
            f"sample_interval ({interval}); equal would be full detail")


def run_sampled(sim, interval: int, window: int,
                checkpoint_every: Optional[int] = None,
                on_checkpoint=None) -> SimStats:
    """Run ``sim`` to completion in sampled mode.

    Every ``interval`` cycles, the first ``window`` are simulated in full
    detail and the remaining ``interval - window`` are covered by the
    machine model's ``fast_forward`` at the detailed window's CPI.  The
    checkpoint hook is forwarded to the detailed segments (skips complete
    atomically; a checkpoint can only fall on a detailed cycle).

    Works with any simulator exposing ``run(until_cycle=...)``,
    ``fast_forward(max_instructions, cpi)``, ``cycle``, ``main_done`` and
    ``stats`` — both machine models do.
    """
    validate_sampling(interval, window)
    stats = sim.stats
    cpi = FALLBACK_CPI
    while True:
        start_cycle = sim.cycle
        start_instr = stats.main_instructions
        start_spawns = stats.spawns
        start_chk = stats.chk_fired
        start_breakdown = dict(stats.cycle_breakdown)
        # Ramp half: the cycles right after a skip run without live
        # speculative threads (they re-spawn during the window), so they
        # are not representative of steady-state CPI.
        stats = sim.run(checkpoint_every=checkpoint_every,
                        on_checkpoint=on_checkpoint,
                        until_cycle=start_cycle + window // 2)
        if sim.main_done:
            return stats
        mid_cycle = sim.cycle
        mid_instr = stats.main_instructions
        if mid_cycle < start_cycle + window:
            stats = sim.run(checkpoint_every=checkpoint_every,
                            on_checkpoint=on_checkpoint,
                            until_cycle=start_cycle + window)
            if sim.main_done:
                return stats
        # Skip clock runs at the steady-state (second-half) CPI; fall
        # back to the whole window if the second half retired nothing.
        detailed_cycles = sim.cycle - start_cycle
        steady_cycles = sim.cycle - mid_cycle
        steady_instr = stats.main_instructions - mid_instr
        if steady_instr > 0:
            cpi = steady_cycles / steady_instr
        weights = {cat: count - start_breakdown.get(cat, 0)
                   for cat, count in stats.cycle_breakdown.items()}
        # The detailed segment may overrun the window (a stall skip lands
        # past the boundary); the skip covers whatever remains of the
        # interval.
        skip_cycles = interval - detailed_cycles
        if skip_cycles <= 0:
            continue
        # Chain pace the window measured: *chained* spawns (spawns issued
        # by speculative threads, i.e. spawns beyond the one-per-chk-fire
        # the stubs account for) per retired main instruction.  The skip
        # advances paused chains at this pace so a self-sustaining
        # prefetch chain keeps station on the fast-forwarded main thread,
        # while non-chaining workloads measure ~0 and leave their paused
        # slices for the next detailed window to time.
        window_instr = stats.main_instructions - start_instr
        chained = max(0, (stats.spawns - start_spawns)
                      - (stats.chk_fired - start_chk))
        chain_rate = min(chained / window_instr, CHAIN_RATE_CAP) \
            if window_instr > 0 else 0.0
        advanced = sim.fast_forward(
            max(1, int(skip_cycles / cpi)), cpi, chain_rate)
        if advanced <= 0:
            # Main thread finished (or cannot advance) during the skip;
            # one more detailed segment drains and finalises the run.
            stats = sim.run(checkpoint_every=checkpoint_every,
                            on_checkpoint=on_checkpoint)
            return stats
        stats.charge_proportional(weights, advanced)
