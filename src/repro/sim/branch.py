"""Branch prediction: 2k-entry gshare with a 256-entry 4-way BTB (Table 1).

Only conditional branches are predicted; direct branches, calls and returns
are resolved in the front end (returns via a perfect return stack, a common
simplification).  A direction misprediction costs a full pipeline refill; a
taken conditional branch that misses the BTB costs a small redirect bubble.
"""

from __future__ import annotations

from typing import Dict, List


#: Redirect bubble for a taken branch missing the BTB.
BTB_MISS_BUBBLE = 2

#: Global-history bits folded into the gshare index.
HISTORY_BITS = 11


class GsharePredictor:
    """Gshare direction predictor + BTB presence model.

    Tables are shared by all hardware threads (they alias, as on real SMT
    parts); global history is per-thread.
    """

    def __init__(self, entries: int = 2048, btb_entries: int = 256,
                 btb_ways: int = 4, num_threads: int = 4):
        if entries & (entries - 1):
            raise ValueError("gshare entries must be a power of two")
        self.entries = entries
        # 2-bit saturating counters, initialised weakly taken.
        self._counters: List[int] = [2] * entries
        self._history: Dict[int, int] = {t: 0 for t in range(num_threads)}
        self._btb_sets = btb_entries // btb_ways
        self._btb_ways = btb_ways
        self._btb: List[List[int]] = [[] for _ in range(self._btb_sets)]
        self.lookups = 0
        self.mispredicts = 0
        self.btb_misses = 0

    def _index(self, pc: int, tid: int) -> int:
        hist = self._history.get(tid, 0)
        return (pc ^ (hist << 1)) & (self.entries - 1)

    def predict_and_update(self, pc: int, tid: int, taken: bool) -> int:
        """Predict the branch at ``pc``, update state, return the penalty.

        Returns 0 for a correct prediction, ``BTB_MISS_BUBBLE`` for a
        correctly-predicted taken branch whose target was not in the BTB,
        or -1 to signal a direction misprediction (caller applies its
        pipeline's refill penalty).
        """
        self.lookups += 1
        idx = self._index(pc, tid)
        counter = self._counters[idx]
        predicted = counter >= 2

        # Update the counter and per-thread history.
        if taken and counter < 3:
            self._counters[idx] = counter + 1
        elif not taken and counter > 0:
            self._counters[idx] = counter - 1
        hist = self._history.get(tid, 0)
        self._history[tid] = ((hist << 1) | (1 if taken else 0)) & (
            (1 << HISTORY_BITS) - 1)

        if predicted != taken:
            self.mispredicts += 1
            self._btb_touch(pc)
            return -1
        if taken and not self._btb_touch(pc):
            self.btb_misses += 1
            return BTB_MISS_BUBBLE
        return 0

    def _btb_touch(self, pc: int) -> bool:
        """LRU lookup+insert of ``pc``; True if it was present."""
        s = self._btb[pc % self._btb_sets]
        if pc in s:
            s.remove(pc)
            s.append(pc)
            return True
        s.append(pc)
        if len(s) > self._btb_ways:
            s.pop(0)
        return False

    def mispredict_rate(self) -> float:
        return self.mispredicts / self.lookups if self.lookups else 0.0
