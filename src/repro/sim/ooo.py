"""Event-driven out-of-order SMT model (16-stage, 255-ROB, 18-entry RS).

The OOO model exists in the paper to show that dynamic scheduling already
hides much of the latency SSP targets ("the OOO model has less room for
improvement via SSP", Section 2.2) — what matters is that the model:

* executes past stalled instructions up to the ROB/RS window, so
  independent misses overlap (memory-level parallelism),
* still serialises dependent pointer-chasing loads (dataflow limit),
* cannot reach beyond a 255-instruction window, so distant misses remain —
  exactly the ones SSP's long-range prefetching removes (Section 4.4.1).

Implementation: a *compute-at-fetch* timing model.  Instructions execute
architecturally in program order at fetch (so all values and addresses are
exact), and timing is derived per instruction:

    ready    = max(completion of producers)
    start    = first cycle >= max(fetch+1, ready) with a free issue slot
               (6/cycle shared) and, for memory ops, a free port (2/cycle)
    complete = start + latency          (loads probe the caches at start)
    retire   = in order, bounded by retire width

Fetch is bounded by bundle slots (2 bundles/cycle shared across threads),
the ROB (fetch of instruction *i* waits for retirement of *i - 255*), the
RS (start of *i* waits for start of *i - 18*), and redirects: a mispredicted
branch blocks fetch until it *executes* (unlike the in-order model, where
resolution is immediate).  Threads are interleaved through a priority queue
on their next fetch cycle, so cross-thread cache interactions happen in
approximately global time order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..isa.interp import ThreadState, execute, spawn_thread
from ..isa.memory import Heap
from ..isa.program import Program
from .branch import GsharePredictor
from .caches import L1, MemorySystem
from .config import MachineConfig
from .stats import STALL_CATEGORY, SimStats

#: Sentinel "next profiler sample" cycle when no profiler is attached.
_FAR_FUTURE = 1 << 60


class _OOOThread:
    """Per-thread OOO timing state."""

    __slots__ = ("state", "fetch_cycle", "reg_complete", "reg_level",
                 "retire_ring", "start_ring", "last_retire", "retire_count",
                 "spawn_retries", "spec_issued", "spawn_cycle")

    def __init__(self, state: ThreadState, start_cycle: int,
                 rob: int, rs: int):
        self.state = state
        self.fetch_cycle = start_cycle
        #: Instructions fetched by this (speculative) context, for the
        #: runaway-slice containment budget.
        self.spec_issued = 0
        #: Cycle the context was allocated, for the cycle budget.
        self.spawn_cycle = start_cycle
        #: register -> completion cycle of its producer.
        self.reg_complete: Dict[str, int] = {}
        self.reg_level: Dict[str, Optional[str]] = {}
        #: retirement times of the last ROB instructions.
        self.retire_ring: Deque[int] = deque(maxlen=rob)
        #: issue (leave-RS) times of the last RS instructions.
        self.start_ring: Deque[int] = deque(maxlen=rs)
        self.last_retire = start_cycle
        self.retire_count = 0
        #: Deferred-spawn retries so far (bounded; see inorder.py).
        self.spawn_retries = 0


class OOOSimulator:
    """Runs a finalised program on the out-of-order SMT machine model."""

    def __init__(self, program: Program, heap: Heap, config: MachineConfig,
                 spawning: bool = True, max_cycles: int = 200_000_000):
        if not program.finalized:
            program.finalize()
        self.program = program
        self.heap = heap
        self.config = config
        self.spawning = spawning
        self.max_cycles = max_cycles
        self.memory = MemorySystem(config)
        self.memory.prefetch_sources = dict(
            getattr(program, "prefetch_sources", {}))
        self.predictor = GsharePredictor(
            config.gshare_entries, config.btb_entries, config.btb_ways,
            config.hardware_contexts * 8)
        self.stats = SimStats(self.memory)
        self._issue_used: Dict[int, int] = {}
        self._port_used: Dict[int, int] = {}
        self._fetch_used: Dict[int, int] = {}
        self._live_threads = 0
        self._next_tid = 0
        # Run-loop state, held on the instance so a checkpoint can capture
        # it mid-run and a restored simulator can continue seamlessly.
        self._main: Optional[_OOOThread] = None
        self._queue: List[Tuple[int, int, _OOOThread]] = []
        self._tie = 0
        self._end_cycle: Optional[int] = None
        self._main_misses: List[int] = []
        self._pops = 0
        self._started = False
        # Cycle-attribution profiler (repro.obs.profiler); see inorder.py.
        self._profiler = None
        self._prof_next = _FAR_FUTURE

    def attach_profiler(self, profiler) -> None:
        """Sample wall-time attribution into ``profiler`` during run().

        Observation-only (statistics are byte-identical with or without
        it) and deliberately outside ``_SNAPSHOT_FIELDS`` — see
        :meth:`repro.sim.inorder.InOrderSimulator.attach_profiler`.
        """
        profiler.model = self.SNAPSHOT_MODEL
        self._profiler = profiler
        self._prof_next = self.cycle if self._started else 0

    # -- checkpoint/resume ---------------------------------------------------------

    #: See :attr:`repro.sim.inorder.InOrderSimulator.SNAPSHOT_MODEL` — the
    #: program is rebuilt from the RunSpec; only dynamic state is captured.
    SNAPSHOT_MODEL = "ooo"
    _SNAPSHOT_FIELDS = (
        "heap", "memory", "predictor", "stats", "main_state",
        "_issue_used", "_port_used", "_fetch_used", "_live_threads",
        "_next_tid", "_main", "_queue", "_tie", "_end_cycle",
        "_main_misses", "_pops", "_started",
    )

    @property
    def cycle(self) -> int:
        """Earliest pending fetch cycle (the checkpoint's progress mark)."""
        if self._queue:
            return self._queue[0][0]
        return self.stats.cycles

    def snapshot(self) -> Dict[str, object]:
        """Picklable snapshot of all dynamic state (see inorder docs)."""
        if not self._started:
            self._begin()
        state: Dict[str, object] = {
            name: getattr(self, name) for name in self._SNAPSHOT_FIELDS}
        state["model"] = self.SNAPSHOT_MODEL
        state["cycle"] = self.cycle
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Reinstall a :meth:`snapshot`; the next :meth:`run` resumes."""
        from ..guard.errors import CheckpointError
        model = state.get("model") if isinstance(state, dict) else None
        if model != self.SNAPSHOT_MODEL:
            raise CheckpointError(
                f"checkpoint is for model {model!r}, not "
                f"{self.SNAPSHOT_MODEL!r}")
        missing = [n for n in self._SNAPSHOT_FIELDS if n not in state]
        if missing:
            raise CheckpointError(
                f"checkpoint payload missing fields: {missing}")
        for name in self._SNAPSHOT_FIELDS:
            setattr(self, name, state[name])
        self.stats.memory = self.memory

    def _begin(self) -> None:
        """Initialise the main context (once per simulator lifetime)."""
        program = self.program
        config = self.config
        main_state = ThreadState(tid=0,
                                 pc=program.function_entry[program.entry])
        #: Final main-thread architectural state (the differential oracle
        #: compares it across execution engines after :meth:`run`).
        self.main_state = main_state
        self._main = _OOOThread(main_state, 0, config.rob_entries,
                                config.rs_entries)
        self._queue = [(0, 0, self._main)]
        self._live_threads = 1
        self._tie = 0
        self._end_cycle = None
        self._main_misses = []
        self._pops = 0
        self._started = True

    # -- per-cycle resource pools ---------------------------------------------------

    def _take_slot(self, used: Dict[int, int], cycle: int, cap: int) -> int:
        """First cycle >= ``cycle`` with a free slot; takes it."""
        while used.get(cycle, 0) >= cap:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    # -- instruction timing -----------------------------------------------------------

    def _time_instruction(self, thread: _OOOThread, instr, fetch: int,
                          mem_addr: Optional[int], executed: bool,
                          is_main: bool) -> Tuple[int, int]:
        """Compute (start, completion) for one fetched instruction."""
        config = self.config
        ready = fetch + 1
        for reg in instr.reads:
            t = thread.reg_complete.get(reg, 0)
            if t > ready:
                ready = t
        # RS: can't enter scheduling until an RS entry frees.
        if len(thread.start_ring) == thread.start_ring.maxlen:
            oldest = thread.start_ring[0]
            if oldest > ready:
                ready = oldest
        start = self._take_slot(self._issue_used, ready, config.issue_width)
        if instr.is_memory and executed and mem_addr is not None:
            start = self._take_slot(self._port_used, start,
                                    config.memory_ports)
            if instr.op == "ld":
                access = self.memory.access(mem_addr, start, instr.uid,
                                            is_main)
                completion = access.ready
                thread.reg_level[instr.dest] = access.level
            elif instr.op == "st":
                self.memory.access(mem_addr, start, instr.uid, is_main,
                                   is_store=True)
                completion = start + 1
            else:  # lfetch
                self.memory.access(mem_addr, start, instr.uid, is_main,
                                   is_prefetch=True)
                completion = start + 1
        else:
            if instr.op == "lfetch" and (mem_addr is None or not executed):
                self.memory.prefetches_dropped += 1
            completion = start + (instr.fixed_latency() if executed else 1)
        thread.start_ring.append(start)
        if instr.dest is not None and executed:
            thread.reg_complete[instr.dest] = completion
            if instr.op != "ld":
                thread.reg_level[instr.dest] = None
        return start, completion

    def _retire(self, thread: _OOOThread, completion: int) -> int:
        """In-order retirement, bounded by retire bandwidth."""
        retire = max(completion, thread.last_retire)
        ring = thread.retire_ring
        # Retire width == issue width: instruction i cannot retire in the
        # same cycle as instruction i - width.
        width = self.config.issue_width
        if thread.retire_count >= width:
            # ring holds up to ROB entries; the width-th most recent is a
            # cheap lower bound for bandwidth-limited retirement.
            if len(ring) >= width and ring[-width] >= retire:
                retire = ring[-width] + 1
        ring.append(retire)
        thread.last_retire = retire
        thread.retire_count += 1
        return retire

    # -- main loop -----------------------------------------------------------------------

    def run(self, checkpoint_every: Optional[int] = None,
            on_checkpoint=None) -> SimStats:
        """Simulate until the main thread's halt retires.

        ``checkpoint_every``/``on_checkpoint`` behave as in
        :meth:`repro.sim.inorder.InOrderSimulator.run`: the callback fires
        between fetch groups whenever the earliest pending fetch cycle
        crosses the next checkpoint mark, and a :meth:`restore`-d
        simulator resumes instead of restarting.
        """
        program = self.program
        config = self.config
        code = program.code
        stats = self.stats
        if not self._started:
            self._begin()
        main = self._main
        # (next_fetch_cycle, tie, thread)
        queue = self._queue
        # Outstanding main-thread misses for CacheExec classification.
        main_misses = self._main_misses
        next_checkpoint = None
        if on_checkpoint is not None and checkpoint_every:
            next_checkpoint = self.cycle + checkpoint_every

        while queue:
            if next_checkpoint is not None and queue[0][0] >= next_checkpoint:
                on_checkpoint(self)
                while next_checkpoint <= queue[0][0]:
                    next_checkpoint += checkpoint_every
            fetch, _, thread = heapq.heappop(queue)
            self._pops += 1
            if self._pops % 50_000 == 0:
                self._prune_pools(fetch)
            # Profiling gate: one int compare per pop when off (see
            # inorder.py).  Pops that bail out below go unsampled; the
            # next real fetch group samples instead.
            prof = None
            if fetch >= self._prof_next:
                prof = self._profiler
                t_prof = prof.begin(fetch)
            state = thread.state
            if (state.tid != 0 and not state.done
                    and config.spec_cycle_budget
                    and fetch - thread.spawn_cycle
                    >= config.spec_cycle_budget):
                # Containment: the context outlived its cycle budget.
                state.killed = True
                stats.budget_kills += 1
            if state.done:
                self._live_threads -= 1
                continue
            if self._end_cycle is not None and fetch >= self._end_cycle:
                self._live_threads -= 1
                continue
            if fetch >= self.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles")
            is_main = state.tid == 0

            # One fetch group: a bundle of up to 3 instructions.
            fetch = self._take_slot(self._fetch_used, fetch,
                                    config.bundles_per_cycle)
            next_fetch = fetch + 1
            if prof is not None:
                t_prof = prof.lap("fetch", t_prof)
            for _ in range(config.bundle_size):
                instr = code[state.pc]
                # ROB occupancy: wait for instruction (i - ROB) to retire.
                ring = thread.retire_ring
                if len(ring) == ring.maxlen and ring[0] > fetch:
                    fetch = ring[0]
                    next_fetch = fetch + 1

                # Chaining spawns in speculative threads wait (bounded)
                # for a free context rather than being dropped instantly
                # (see inorder.py).
                if (instr.op == "spawn" and state.tid != 0
                        and self._live_threads >= config.hardware_contexts
                        and thread.spawn_retries < 96):
                    stats.spawn_waits += 1
                    thread.spawn_retries += 1
                    next_fetch = fetch + 16
                    break

                # Runaway-slice containment: instruction budget.
                if state.tid != 0:
                    limit = config.spec_instruction_budget
                    if limit and thread.spec_issued >= limit:
                        state.killed = True
                        stats.budget_kills += 1
                        break
                    thread.spec_issued += 1

                chk_fires = False
                if instr.op == "chk.c":
                    chk_fires = (self.spawning
                                 and self._live_threads <
                                 config.hardware_contexts)
                pc_before = state.pc
                # Inside a recovery stub (fired chk.c, rfi not yet
                # executed): counted separately for the retired-instruction
                # oracle, as in the in-order model.
                in_stub = is_main and bool(state.rfi_stack)
                if prof is not None:
                    t_prof = prof.lap("schedule", t_prof)
                result = execute(program, self.heap, state, instr, chk_fires)
                if prof is not None:
                    t_prof = prof.lap("interp", t_prof)
                if is_main:
                    stats.main_instructions += 1
                    if in_stub:
                        stats.main_stub_instructions += 1
                else:
                    stats.spec_instructions += 1

                start, completion = self._time_instruction(
                    thread, instr, fetch, result.mem_addr, result.executed,
                    is_main)
                retire = self._retire(thread, completion)
                if prof is not None:
                    t_prof = prof.lap("timing", t_prof)

                # Figure 10 accounting (main thread, gap-based).
                if is_main:
                    prev = thread.retire_ring[-2] if len(
                        thread.retire_ring) > 1 else 0
                    gap = retire - prev
                    if instr.op == "ld" and result.mem_addr is not None:
                        level = thread.reg_level.get(instr.dest)
                        if level is not None and level != L1:
                            heapq.heappush(main_misses, completion)
                    if gap > 0:
                        while main_misses and main_misses[0] <= prev:
                            heapq.heappop(main_misses)
                        overlapped = bool(main_misses)
                        stats.charge("CacheExec" if overlapped else "Exec")
                        if gap > 1:
                            cause = self._gap_cause(thread, instr)
                            stats.charge(cause, gap - 1)

                # Control-flow consequences for fetch.
                op = instr.op
                if op == "br.cond":
                    penalty = self.predictor.predict_and_update(
                        pc_before, state.tid, bool(result.taken))
                    if penalty < 0:
                        stats.mispredicts += 1
                        # Resolved at execute; refill afterwards.
                        next_fetch = completion + config.mispredict_penalty
                        break
                    if result.taken:
                        next_fetch = fetch + 1 + penalty
                        break
                elif op in ("br", "br.call", "br.call.ind", "br.ret"):
                    if state.halted:
                        break
                    break
                elif op == "chk.c" and result.chk_taken:
                    stats.chk_fired += 1
                    # Spawning happens at retirement with an exception-like
                    # flush (Section 4.4.1).
                    next_fetch = retire + config.chk_flush_penalty
                    break
                elif op == "chk.c":
                    stats.chk_ignored += 1
                elif op == "spawn" and result.spawn_target is not None:
                    thread.spawn_retries = 0
                    if self._live_threads < config.hardware_contexts:
                        self._next_tid += 1
                        child_state = spawn_thread(state, self._next_tid,
                                                   result.spawn_target)
                        child = _OOOThread(
                            child_state,
                            retire + config.spawn_startup_latency,
                            config.rob_entries, config.rs_entries)
                        self._live_threads += 1
                        stats.spawns += 1
                        self._tie += 1
                        heapq.heappush(queue,
                                       (child.fetch_cycle, self._tie,
                                        child))
                    else:
                        stats.spawn_failures += 1
                elif op in ("kill", "halt"):
                    break
                if state.done:
                    break

            if prof is not None:
                prof.lap("account", t_prof)
                self._prof_next = prof.sample(fetch, stats,
                                              1 if is_main else 0, False)
            if state.done:
                self._live_threads -= 1
                if is_main:
                    self._end_cycle = thread.last_retire
                    stats.cycles = thread.last_retire
                else:
                    stats.threads_completed += 1
                continue
            self._tie += 1
            heapq.heappush(queue, (max(next_fetch, fetch + 1), self._tie,
                                   thread))

        if stats.cycles == 0:
            stats.cycles = main.last_retire
        stats.mispredicts = self.predictor.mispredicts
        return stats

    def _prune_pools(self, now: int) -> None:
        """Drop per-cycle resource counters far in the past (memory bound)."""
        horizon = now - 10_000
        for pool in (self._issue_used, self._port_used, self._fetch_used):
            if len(pool) > 200_000:
                for cycle in [c for c in pool if c < horizon]:
                    del pool[cycle]

    def _gap_cause(self, thread: _OOOThread, instr) -> str:
        """Attribute a retire gap to a Figure 10 category."""
        if instr.op == "ld":
            level = thread.reg_level.get(instr.dest)
            if level is not None and level in STALL_CATEGORY:
                return STALL_CATEGORY[level]
            return "Exec"
        # Waiting on a source produced by a load?
        worst_level, worst_t = None, -1
        for reg in instr.reads:
            t = thread.reg_complete.get(reg, 0)
            if t > worst_t:
                worst_t = t
                worst_level = thread.reg_level.get(reg)
        if worst_level is not None and worst_level in STALL_CATEGORY:
            return STALL_CATEGORY[worst_level]
        if instr.is_branch:
            return "Other"
        return "Exec"
