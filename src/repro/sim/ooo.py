"""Event-driven out-of-order SMT model (16-stage, 255-ROB, 18-entry RS).

The OOO model exists in the paper to show that dynamic scheduling already
hides much of the latency SSP targets ("the OOO model has less room for
improvement via SSP", Section 2.2) — what matters is that the model:

* executes past stalled instructions up to the ROB/RS window, so
  independent misses overlap (memory-level parallelism),
* still serialises dependent pointer-chasing loads (dataflow limit),
* cannot reach beyond a 255-instruction window, so distant misses remain —
  exactly the ones SSP's long-range prefetching removes (Section 4.4.1).

Implementation: a *compute-at-fetch* timing model.  Instructions execute
architecturally in program order at fetch (so all values and addresses are
exact), and timing is derived per instruction:

    ready    = max(completion of producers)
    start    = first cycle >= max(fetch+1, ready) with a free issue slot
               (6/cycle shared) and, for memory ops, a free port (2/cycle)
    complete = start + latency          (loads probe the caches at start)
    retire   = in order, bounded by retire width

Fetch is bounded by bundle slots (2 bundles/cycle shared across threads),
the ROB (fetch of instruction *i* waits for retirement of *i - 255*), the
RS (start of *i* waits for start of *i - 18*), and redirects: a mispredicted
branch blocks fetch until it *executes* (unlike the in-order model, where
resolution is immediate).  Threads are interleaved through a priority queue
on their next fetch cycle, so cross-thread cache interactions happen in
approximately global time order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..isa.decode import (
    D_READS,
    K_BR,
    K_BRC,
    K_CHK,
    K_HALT,
    K_KILL,
    K_LD,
    K_LFETCH,
    K_RET,
    K_SPAWN,
    K_ST,
    RES_MEM,
    decode_program,
    resolve_fast_path,
    step_decoded,
)
from ..isa.interp import ThreadState, execute, spawn_thread
from ..isa.memory import Heap
from ..isa.program import Program
from .branch import GsharePredictor
from .caches import L1, MemorySystem
from .sampling import advance_chain, warm_chk, warm_slice
from .config import MachineConfig
from .stats import STALL_CATEGORY, SimStats

#: Sentinel "next profiler sample" cycle when no profiler is attached.
_FAR_FUTURE = 1 << 60


class _OOOThread:
    """Per-thread OOO timing state."""

    __slots__ = ("state", "fetch_cycle", "reg_complete", "reg_level",
                 "retire_ring", "start_ring", "last_retire", "retire_count",
                 "spawn_retries", "spec_issued", "spawn_cycle")

    def __init__(self, state: ThreadState, start_cycle: int,
                 rob: int, rs: int):
        self.state = state
        self.fetch_cycle = start_cycle
        #: Instructions fetched by this (speculative) context, for the
        #: runaway-slice containment budget.
        self.spec_issued = 0
        #: Cycle the context was allocated, for the cycle budget.
        self.spawn_cycle = start_cycle
        #: register -> completion cycle of its producer.
        self.reg_complete: Dict[str, int] = {}
        self.reg_level: Dict[str, Optional[str]] = {}
        #: retirement times of the last ROB instructions.
        self.retire_ring: Deque[int] = deque(maxlen=rob)
        #: issue (leave-RS) times of the last RS instructions.
        self.start_ring: Deque[int] = deque(maxlen=rs)
        self.last_retire = start_cycle
        self.retire_count = 0
        #: Deferred-spawn retries so far (bounded; see inorder.py).
        self.spawn_retries = 0


class OOOSimulator:
    """Runs a finalised program on the out-of-order SMT machine model."""

    def __init__(self, program: Program, heap: Heap, config: MachineConfig,
                 spawning: bool = True, max_cycles: int = 200_000_000,
                 fast_path: Optional[bool] = None):
        if not program.finalized:
            program.finalize()
        self.program = program
        self.heap = heap
        self.config = config
        self.spawning = spawning
        self.max_cycles = max_cycles
        #: Pre-decoded issue table; also used by :meth:`fast_forward` on
        #: the legacy path, so it is built unconditionally.
        self.fast_path = resolve_fast_path(fast_path)
        self._dcode = decode_program(program)
        self.memory = MemorySystem(config)
        self.memory.prefetch_sources = dict(
            getattr(program, "prefetch_sources", {}))
        self.predictor = GsharePredictor(
            config.gshare_entries, config.btb_entries, config.btb_ways,
            config.hardware_contexts * 8)
        self.stats = SimStats(self.memory)
        self._issue_used: Dict[int, int] = {}
        self._port_used: Dict[int, int] = {}
        self._fetch_used: Dict[int, int] = {}
        self._live_threads = 0
        self._next_tid = 0
        # Run-loop state, held on the instance so a checkpoint can capture
        # it mid-run and a restored simulator can continue seamlessly.
        self._main: Optional[_OOOThread] = None
        self._queue: List[Tuple[int, int, _OOOThread]] = []
        self._tie = 0
        self._end_cycle: Optional[int] = None
        self._main_misses: List[int] = []
        self._pops = 0
        self._started = False
        # Cycle-attribution profiler (repro.obs.profiler); see inorder.py.
        self._profiler = None
        self._prof_next = _FAR_FUTURE

    def attach_profiler(self, profiler) -> None:
        """Sample wall-time attribution into ``profiler`` during run().

        Observation-only (statistics are byte-identical with or without
        it) and deliberately outside ``_SNAPSHOT_FIELDS`` — see
        :meth:`repro.sim.inorder.InOrderSimulator.attach_profiler`.
        """
        profiler.model = self.SNAPSHOT_MODEL
        self._profiler = profiler
        self._prof_next = self.cycle if self._started else 0

    # -- checkpoint/resume ---------------------------------------------------------

    #: See :attr:`repro.sim.inorder.InOrderSimulator.SNAPSHOT_MODEL` — the
    #: program is rebuilt from the RunSpec; only dynamic state is captured.
    SNAPSHOT_MODEL = "ooo"
    _SNAPSHOT_FIELDS = (
        "heap", "memory", "predictor", "stats", "main_state",
        "_issue_used", "_port_used", "_fetch_used", "_live_threads",
        "_next_tid", "_main", "_queue", "_tie", "_end_cycle",
        "_main_misses", "_pops", "_started",
    )

    @property
    def cycle(self) -> int:
        """Earliest pending fetch cycle (the checkpoint's progress mark)."""
        if self._queue:
            return self._queue[0][0]
        return self.stats.cycles

    def snapshot(self) -> Dict[str, object]:
        """Picklable snapshot of all dynamic state (see inorder docs)."""
        if not self._started:
            self._begin()
        state: Dict[str, object] = {
            name: getattr(self, name) for name in self._SNAPSHOT_FIELDS}
        state["model"] = self.SNAPSHOT_MODEL
        state["cycle"] = self.cycle
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Reinstall a :meth:`snapshot`; the next :meth:`run` resumes."""
        from ..guard.errors import CheckpointError
        model = state.get("model") if isinstance(state, dict) else None
        if model != self.SNAPSHOT_MODEL:
            raise CheckpointError(
                f"checkpoint is for model {model!r}, not "
                f"{self.SNAPSHOT_MODEL!r}")
        missing = [n for n in self._SNAPSHOT_FIELDS if n not in state]
        if missing:
            raise CheckpointError(
                f"checkpoint payload missing fields: {missing}")
        for name in self._SNAPSHOT_FIELDS:
            setattr(self, name, state[name])
        self.stats.memory = self.memory
        # A profiler attached before restore() captured `_prof_next` from
        # the pre-restore clock; re-anchor it so resumed profiled runs
        # sample on the configured interval from the restored cycle.
        self._prof_next = self.cycle if self._profiler is not None \
            else _FAR_FUTURE

    @property
    def main_done(self) -> bool:
        """True once the main thread has architecturally finished."""
        return self._started and self._main is not None \
            and self._main.state.done

    def _begin(self) -> None:
        """Initialise the main context (once per simulator lifetime)."""
        program = self.program
        config = self.config
        main_state = ThreadState(tid=0,
                                 pc=program.function_entry[program.entry])
        #: Final main-thread architectural state (the differential oracle
        #: compares it across execution engines after :meth:`run`).
        self.main_state = main_state
        self._main = _OOOThread(main_state, 0, config.rob_entries,
                                config.rs_entries)
        self._queue = [(0, 0, self._main)]
        self._live_threads = 1
        self._tie = 0
        self._end_cycle = None
        self._main_misses = []
        self._pops = 0
        self._started = True

    # -- per-cycle resource pools ---------------------------------------------------

    def _take_slot(self, used: Dict[int, int], cycle: int, cap: int) -> int:
        """First cycle >= ``cycle`` with a free slot; takes it."""
        while used.get(cycle, 0) >= cap:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    # -- instruction timing -----------------------------------------------------------

    def _time_instruction(self, thread: _OOOThread, instr, fetch: int,
                          mem_addr: Optional[int], executed: bool,
                          is_main: bool) -> Tuple[int, int]:
        """Compute (start, completion) for one fetched instruction."""
        config = self.config
        ready = fetch + 1
        for reg in instr.reads:
            t = thread.reg_complete.get(reg, 0)
            if t > ready:
                ready = t
        # RS: can't enter scheduling until an RS entry frees.
        if len(thread.start_ring) == thread.start_ring.maxlen:
            oldest = thread.start_ring[0]
            if oldest > ready:
                ready = oldest
        start = self._take_slot(self._issue_used, ready, config.issue_width)
        if instr.is_memory and executed and mem_addr is not None:
            start = self._take_slot(self._port_used, start,
                                    config.memory_ports)
            if instr.op == "ld":
                access = self.memory.access(mem_addr, start, instr.uid,
                                            is_main)
                completion = access.ready
                thread.reg_level[instr.dest] = access.level
            elif instr.op == "st":
                self.memory.access(mem_addr, start, instr.uid, is_main,
                                   is_store=True)
                completion = start + 1
            else:  # lfetch
                self.memory.access(mem_addr, start, instr.uid, is_main,
                                   is_prefetch=True)
                completion = start + 1
        else:
            if instr.op == "lfetch" and (mem_addr is None or not executed):
                self.memory.prefetches_dropped += 1
            completion = start + (instr.fixed_latency() if executed else 1)
        thread.start_ring.append(start)
        if instr.dest is not None and executed:
            thread.reg_complete[instr.dest] = completion
            if instr.op != "ld":
                thread.reg_level[instr.dest] = None
        return start, completion

    def _retire(self, thread: _OOOThread, completion: int) -> int:
        """In-order retirement, bounded by retire bandwidth."""
        retire = max(completion, thread.last_retire)
        ring = thread.retire_ring
        # Retire width == issue width: instruction i cannot retire in the
        # same cycle as instruction i - width.
        width = self.config.issue_width
        if thread.retire_count >= width:
            # ring holds up to ROB entries; the width-th most recent is a
            # cheap lower bound for bandwidth-limited retirement.
            if len(ring) >= width and ring[-width] >= retire:
                retire = ring[-width] + 1
        ring.append(retire)
        thread.last_retire = retire
        thread.retire_count += 1
        return retire

    # -- main loop -----------------------------------------------------------------------

    def run(self, checkpoint_every: Optional[int] = None,
            on_checkpoint=None,
            until_cycle: Optional[int] = None) -> SimStats:
        """Simulate until the main thread's halt retires.

        ``checkpoint_every``/``on_checkpoint`` behave as in
        :meth:`repro.sim.inorder.InOrderSimulator.run`: the callback fires
        between fetch groups whenever the earliest pending fetch cycle
        crosses the next checkpoint mark, and a :meth:`restore`-d
        simulator resumes instead of restarting.  ``until_cycle`` stops
        the run (resumably) once the earliest pending fetch cycle reaches
        that mark — the sampled-simulation driver uses it to bound
        detailed windows.
        """
        if self.fast_path:
            return self._run_fast(checkpoint_every, on_checkpoint,
                                  until_cycle)
        return self._run_legacy(checkpoint_every, on_checkpoint,
                                until_cycle)

    def _run_legacy(self, checkpoint_every: Optional[int] = None,
                    on_checkpoint=None,
                    until_cycle: Optional[int] = None) -> SimStats:
        """Reference run loop over :class:`Instruction` objects."""
        program = self.program
        config = self.config
        code = program.code
        stats = self.stats
        if not self._started:
            self._begin()
        main = self._main
        # (next_fetch_cycle, tie, thread)
        queue = self._queue
        # Outstanding main-thread misses for CacheExec classification.
        main_misses = self._main_misses
        next_checkpoint = None
        if on_checkpoint is not None and checkpoint_every:
            next_checkpoint = self.cycle + checkpoint_every

        while queue:
            if until_cycle is not None and queue[0][0] >= until_cycle:
                break
            if next_checkpoint is not None and queue[0][0] >= next_checkpoint:
                on_checkpoint(self)
                while next_checkpoint <= queue[0][0]:
                    next_checkpoint += checkpoint_every
            fetch, _, thread = heapq.heappop(queue)
            self._pops += 1
            if self._pops % 50_000 == 0:
                self._prune_pools(fetch)
            # Profiling gate: one int compare per pop when off (see
            # inorder.py).  Pops that bail out below go unsampled; the
            # next real fetch group samples instead.
            prof = None
            if fetch >= self._prof_next:
                prof = self._profiler
                t_prof = prof.begin(fetch)
            state = thread.state
            if (state.tid != 0 and not state.done
                    and config.spec_cycle_budget
                    and fetch - thread.spawn_cycle
                    >= config.spec_cycle_budget):
                # Containment: the context outlived its cycle budget.
                state.killed = True
                stats.budget_kills += 1
            if state.done:
                self._live_threads -= 1
                continue
            if self._end_cycle is not None and fetch >= self._end_cycle:
                self._live_threads -= 1
                continue
            if fetch >= self.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles")
            is_main = state.tid == 0

            # One fetch group: a bundle of up to 3 instructions.
            fetch = self._take_slot(self._fetch_used, fetch,
                                    config.bundles_per_cycle)
            next_fetch = fetch + 1
            if prof is not None:
                t_prof = prof.lap("fetch", t_prof)
            for _ in range(config.bundle_size):
                instr = code[state.pc]
                # ROB occupancy: wait for instruction (i - ROB) to retire.
                ring = thread.retire_ring
                if len(ring) == ring.maxlen and ring[0] > fetch:
                    fetch = ring[0]
                    next_fetch = fetch + 1

                # Chaining spawns in speculative threads wait (bounded)
                # for a free context rather than being dropped instantly
                # (see inorder.py).
                if (instr.op == "spawn" and state.tid != 0
                        and self._live_threads >= config.hardware_contexts
                        and thread.spawn_retries < 96):
                    stats.spawn_waits += 1
                    thread.spawn_retries += 1
                    next_fetch = fetch + 16
                    break

                # Runaway-slice containment: instruction budget.
                if state.tid != 0:
                    limit = config.spec_instruction_budget
                    if limit and thread.spec_issued >= limit:
                        state.killed = True
                        stats.budget_kills += 1
                        break
                    thread.spec_issued += 1

                chk_fires = False
                if instr.op == "chk.c":
                    chk_fires = (self.spawning
                                 and self._live_threads <
                                 config.hardware_contexts)
                pc_before = state.pc
                # Inside a recovery stub (fired chk.c, rfi not yet
                # executed): counted separately for the retired-instruction
                # oracle, as in the in-order model.
                in_stub = is_main and bool(state.rfi_stack)
                if prof is not None:
                    t_prof = prof.lap("schedule", t_prof)
                result = execute(program, self.heap, state, instr, chk_fires)
                if prof is not None:
                    t_prof = prof.lap("interp", t_prof)
                if is_main:
                    stats.main_instructions += 1
                    if in_stub:
                        stats.main_stub_instructions += 1
                else:
                    stats.spec_instructions += 1

                start, completion = self._time_instruction(
                    thread, instr, fetch, result.mem_addr, result.executed,
                    is_main)
                retire = self._retire(thread, completion)
                if prof is not None:
                    t_prof = prof.lap("timing", t_prof)

                # Figure 10 accounting (main thread, gap-based).
                if is_main:
                    prev = thread.retire_ring[-2] if len(
                        thread.retire_ring) > 1 else 0
                    gap = retire - prev
                    if instr.op == "ld" and result.mem_addr is not None:
                        level = thread.reg_level.get(instr.dest)
                        if level is not None and level != L1:
                            heapq.heappush(main_misses, completion)
                    if gap > 0:
                        while main_misses and main_misses[0] <= prev:
                            heapq.heappop(main_misses)
                        overlapped = bool(main_misses)
                        stats.charge("CacheExec" if overlapped else "Exec")
                        if gap > 1:
                            cause = self._gap_cause(thread, instr)
                            stats.charge(cause, gap - 1)

                # Control-flow consequences for fetch.
                op = instr.op
                if op == "br.cond":
                    penalty = self.predictor.predict_and_update(
                        pc_before, state.tid, bool(result.taken))
                    if penalty < 0:
                        stats.mispredicts += 1
                        # Resolved at execute; refill afterwards.
                        next_fetch = completion + config.mispredict_penalty
                        break
                    if result.taken:
                        next_fetch = fetch + 1 + penalty
                        break
                elif op in ("br", "br.call", "br.call.ind", "br.ret"):
                    if state.halted:
                        break
                    break
                elif op == "chk.c" and result.chk_taken:
                    stats.chk_fired += 1
                    # Spawning happens at retirement with an exception-like
                    # flush (Section 4.4.1).
                    next_fetch = retire + config.chk_flush_penalty
                    break
                elif op == "chk.c":
                    stats.chk_ignored += 1
                elif op == "spawn" and result.spawn_target is not None:
                    thread.spawn_retries = 0
                    if self._live_threads < config.hardware_contexts:
                        self._next_tid += 1
                        child_state = spawn_thread(state, self._next_tid,
                                                   result.spawn_target)
                        child = _OOOThread(
                            child_state,
                            retire + config.spawn_startup_latency,
                            config.rob_entries, config.rs_entries)
                        self._live_threads += 1
                        stats.spawns += 1
                        self._tie += 1
                        heapq.heappush(queue,
                                       (child.fetch_cycle, self._tie,
                                        child))
                    else:
                        stats.spawn_failures += 1
                elif op in ("kill", "halt"):
                    break
                if state.done:
                    break

            if prof is not None:
                prof.lap("account", t_prof)
                self._prof_next = prof.sample(fetch, stats,
                                              1 if is_main else 0, False)
            if state.done:
                self._live_threads -= 1
                if is_main:
                    self._end_cycle = thread.last_retire
                    stats.cycles = thread.last_retire
                else:
                    stats.threads_completed += 1
                continue
            self._tie += 1
            heapq.heappush(queue, (max(next_fetch, fetch + 1), self._tie,
                                   thread))

        # A full run set stats.cycles when the main thread retired; an
        # until_cycle window only tracks progress forward (a resumed
        # sampled run must never let a stale cycle count linger).
        if stats.cycles < main.last_retire:
            stats.cycles = main.last_retire
        stats.mispredicts = self.predictor.mispredicts
        return stats

    def _prune_pools(self, now: int) -> None:
        """Drop per-cycle resource counters far in the past (memory bound)."""
        horizon = now - 10_000
        for pool in (self._issue_used, self._port_used, self._fetch_used):
            if len(pool) > 200_000:
                for cycle in [c for c in pool if c < horizon]:
                    del pool[cycle]

    def _gap_cause_fast(self, thread: _OOOThread, d) -> str:
        """Decoded-tuple twin of :meth:`_gap_cause` (same attribution)."""
        kind = d[0]
        if kind == K_LD:
            level = thread.reg_level.get(d[2])
            if level is not None and level in STALL_CATEGORY:
                return STALL_CATEGORY[level]
            return "Exec"
        worst_level, worst_t = None, -1
        reg_complete = thread.reg_complete
        reg_level = thread.reg_level
        for reg in d[D_READS]:
            t = reg_complete.get(reg, 0)
            if t > worst_t:
                worst_t = t
                worst_level = reg_level.get(reg)
        if worst_level is not None and worst_level in STALL_CATEGORY:
            return STALL_CATEGORY[worst_level]
        if K_BR <= kind <= K_RET:
            return "Other"
        return "Exec"

    def _gap_cause(self, thread: _OOOThread, instr) -> str:
        """Attribute a retire gap to a Figure 10 category."""
        if instr.op == "ld":
            level = thread.reg_level.get(instr.dest)
            if level is not None and level in STALL_CATEGORY:
                return STALL_CATEGORY[level]
            return "Exec"
        # Waiting on a source produced by a load?
        worst_level, worst_t = None, -1
        for reg in instr.reads:
            t = thread.reg_complete.get(reg, 0)
            if t > worst_t:
                worst_t = t
                worst_level = thread.reg_level.get(reg)
        if worst_level is not None and worst_level in STALL_CATEGORY:
            return STALL_CATEGORY[worst_level]
        if instr.is_branch:
            return "Other"
        return "Exec"

    # -- pre-decoded fast path -------------------------------------------------------

    def _run_fast(self, checkpoint_every: Optional[int] = None,
                  on_checkpoint=None,
                  until_cycle: Optional[int] = None) -> SimStats:
        """Fast run loop over the pre-decoded issue table.

        Byte-identical to :meth:`_run_legacy`: same pop order, same
        resource-pool probes, same Figure 10 accounting.  Wins come from
        flat tuple access instead of attribute/dict lookups, inlined
        timing/retire, and a no-sift pop when only one thread is live.
        """
        program = self.program
        config = self.config
        dcode = self._dcode
        stats = self.stats
        if not self._started:
            self._begin()
        main = self._main
        queue = self._queue
        main_misses = self._main_misses
        heap = self.heap
        memory = self.memory
        predictor = self.predictor
        breakdown = stats.cycle_breakdown
        issue_used = self._issue_used
        port_used = self._port_used
        fetch_used = self._fetch_used
        issue_width = config.issue_width
        memory_ports = config.memory_ports
        bundles_per_cycle = config.bundles_per_cycle
        bundle_size = config.bundle_size
        hardware_contexts = config.hardware_contexts
        spec_cycle_budget = config.spec_cycle_budget
        spec_budget = config.spec_instruction_budget
        mispredict_penalty = config.mispredict_penalty
        chk_flush_penalty = config.chk_flush_penalty
        spawn_startup_latency = config.spawn_startup_latency
        rob_entries = config.rob_entries
        rs_entries = config.rs_entries
        max_cycles = self.max_cycles
        spawning = self.spawning
        heappush = heapq.heappush
        heappop = heapq.heappop
        next_checkpoint = None
        if on_checkpoint is not None and checkpoint_every:
            next_checkpoint = self.cycle + checkpoint_every

        while queue:
            if until_cycle is not None and queue[0][0] >= until_cycle:
                break
            if next_checkpoint is not None and queue[0][0] >= next_checkpoint:
                on_checkpoint(self)
                while next_checkpoint <= queue[0][0]:
                    next_checkpoint += checkpoint_every
            # A heap of one needs no sift — the common case once the
            # speculative contexts drain.
            if len(queue) == 1:
                fetch, _, thread = queue[0]
                del queue[0]
            else:
                fetch, _, thread = heappop(queue)
            self._pops += 1
            if self._pops % 50_000 == 0:
                self._prune_pools(fetch)
            prof = None
            if fetch >= self._prof_next:
                prof = self._profiler
                t_prof = prof.begin(fetch)
            state = thread.state
            tid = state.tid
            if (tid != 0 and not state.done
                    and spec_cycle_budget
                    and fetch - thread.spawn_cycle >= spec_cycle_budget):
                state.killed = True
                stats.budget_kills += 1
            if state.done:
                self._live_threads -= 1
                continue
            if self._end_cycle is not None and fetch >= self._end_cycle:
                self._live_threads -= 1
                continue
            if fetch >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles")
            is_main = tid == 0

            while fetch_used.get(fetch, 0) >= bundles_per_cycle:
                fetch += 1
            fetch_used[fetch] = fetch_used.get(fetch, 0) + 1
            next_fetch = fetch + 1
            if prof is not None:
                t_prof = prof.lap("fetch", t_prof)
            reg_complete = thread.reg_complete
            reg_level = thread.reg_level
            start_ring = thread.start_ring
            retire_ring = thread.retire_ring
            for _ in range(bundle_size):
                d = dcode[state.pc]
                kind = d[0]
                if len(retire_ring) == retire_ring.maxlen \
                        and retire_ring[0] > fetch:
                    fetch = retire_ring[0]
                    next_fetch = fetch + 1

                if (kind == K_SPAWN and tid != 0
                        and self._live_threads >= hardware_contexts
                        and thread.spawn_retries < 96):
                    stats.spawn_waits += 1
                    thread.spawn_retries += 1
                    next_fetch = fetch + 16
                    break

                if tid != 0:
                    if spec_budget and thread.spec_issued >= spec_budget:
                        state.killed = True
                        stats.budget_kills += 1
                        break
                    thread.spec_issued += 1

                chk_fires = False
                if kind == K_CHK:
                    chk_fires = (spawning
                                 and self._live_threads < hardware_contexts)
                pc_before = state.pc
                in_stub = is_main and bool(state.rfi_stack)
                if prof is not None:
                    t_prof = prof.lap("schedule", t_prof)
                result = step_decoded(program, heap, state, d, chk_fires)
                if prof is not None:
                    t_prof = prof.lap("interp", t_prof)
                mem_addr = result[0]
                executed = result[3]
                if is_main:
                    stats.main_instructions += 1
                    if in_stub:
                        stats.main_stub_instructions += 1
                else:
                    stats.spec_instructions += 1

                # Timing (inlined _time_instruction).
                ready = fetch + 1
                for reg in d[8]:
                    t = reg_complete.get(reg, 0)
                    if t > ready:
                        ready = t
                if len(start_ring) == start_ring.maxlen:
                    oldest = start_ring[0]
                    if oldest > ready:
                        ready = oldest
                start = ready
                while issue_used.get(start, 0) >= issue_width:
                    start += 1
                issue_used[start] = issue_used.get(start, 0) + 1
                dest = d[2]
                if d[10] == RES_MEM and executed and mem_addr is not None:
                    while port_used.get(start, 0) >= memory_ports:
                        start += 1
                    port_used[start] = port_used.get(start, 0) + 1
                    if kind == K_LD:
                        access = memory.access(mem_addr, start, d[13],
                                               is_main)
                        completion = access.ready
                        reg_level[dest] = access.level
                    elif kind == K_ST:
                        memory.access(mem_addr, start, d[13], is_main,
                                      is_store=True)
                        completion = start + 1
                    else:  # lfetch
                        memory.access(mem_addr, start, d[13], is_main,
                                      is_prefetch=True)
                        completion = start + 1
                else:
                    if kind == K_LFETCH and (mem_addr is None
                                             or not executed):
                        memory.prefetches_dropped += 1
                    completion = start + (d[9] if executed else 1)
                start_ring.append(start)
                if dest is not None and executed:
                    reg_complete[dest] = completion
                    if kind != K_LD:
                        reg_level[dest] = None

                # Retirement (inlined _retire).
                retire = completion if completion > thread.last_retire \
                    else thread.last_retire
                if thread.retire_count >= issue_width \
                        and len(retire_ring) >= issue_width \
                        and retire_ring[-issue_width] >= retire:
                    retire = retire_ring[-issue_width] + 1
                retire_ring.append(retire)
                thread.last_retire = retire
                thread.retire_count += 1
                if prof is not None:
                    t_prof = prof.lap("timing", t_prof)

                # Figure 10 accounting (main thread, gap-based).
                if is_main:
                    prev = retire_ring[-2] if len(retire_ring) > 1 else 0
                    gap = retire - prev
                    if kind == K_LD and mem_addr is not None:
                        level = reg_level.get(dest)
                        if level is not None and level != L1:
                            heappush(main_misses, completion)
                    if gap > 0:
                        while main_misses and main_misses[0] <= prev:
                            heappop(main_misses)
                        breakdown["CacheExec" if main_misses
                                  else "Exec"] += 1
                        if gap > 1:
                            breakdown[self._gap_cause_fast(thread, d)] += \
                                gap - 1

                # Control-flow consequences for fetch.
                if kind == K_BRC:
                    penalty = predictor.predict_and_update(
                        pc_before, tid, bool(result[1]))
                    if penalty < 0:
                        stats.mispredicts += 1
                        next_fetch = completion + mispredict_penalty
                        break
                    if result[1]:
                        next_fetch = fetch + 1 + penalty
                        break
                elif K_BR <= kind <= K_RET:
                    break
                elif kind == K_CHK:
                    if result[4]:
                        stats.chk_fired += 1
                        next_fetch = retire + chk_flush_penalty
                        break
                    stats.chk_ignored += 1
                elif kind == K_SPAWN:
                    if result[2] is not None:
                        thread.spawn_retries = 0
                        if self._live_threads < hardware_contexts:
                            self._next_tid += 1
                            child_state = spawn_thread(state, self._next_tid,
                                                       result[2])
                            child = _OOOThread(child_state,
                                               retire + spawn_startup_latency,
                                               rob_entries, rs_entries)
                            self._live_threads += 1
                            stats.spawns += 1
                            self._tie += 1
                            heappush(queue, (child.fetch_cycle, self._tie,
                                             child))
                        else:
                            stats.spawn_failures += 1
                elif kind == K_KILL or kind == K_HALT:
                    break
                if state.done:
                    break

            if prof is not None:
                prof.lap("account", t_prof)
                self._prof_next = prof.sample(fetch, stats,
                                              1 if is_main else 0, False)
            if state.done:
                self._live_threads -= 1
                if is_main:
                    self._end_cycle = thread.last_retire
                    stats.cycles = thread.last_retire
                else:
                    stats.threads_completed += 1
                continue
            self._tie += 1
            entry = (next_fetch if next_fetch > fetch + 1 else fetch + 1,
                     self._tie, thread)
            if queue:
                heappush(queue, entry)
            else:
                queue.append(entry)

        # A full run set stats.cycles when the main thread retired; an
        # until_cycle window only tracks progress forward (a resumed
        # sampled run must never let a stale cycle count linger).
        if stats.cycles < main.last_retire:
            stats.cycles = main.last_retire
        stats.mispredicts = predictor.mispredicts
        return stats

    # -- quiescent fast-forward ------------------------------------------------------

    def fast_forward(self, max_instructions: int, cpi: float = 1.0,
                     chain_rate: float = 0.0) -> int:
        """Functionally execute up to ``max_instructions`` main-thread
        instructions without per-cycle timing, advancing the clock by
        ``round(n * cpi)``.

        The sampled-simulation driver (:mod:`repro.sim.sampling`) uses
        this between detailed windows: architectural state stays exact
        (so workload output checks still pass), caches and TLB stay warm
        (accesses are replayed at the estimated clock with statistics
        recording suppressed), and speculative threads are *paused*,
        not dropped — their timing is re-based to the post-skip clock
        so the next detailed window keeps the SSP steady state instead
        of paying a full spawn-chain re-ramp.  Returns the number of
        cycles advanced.
        """
        if not self._started:
            self._begin()
        main = self._main
        state = main.state
        if max_instructions <= 0 or state.done:
            return 0
        program = self.program
        heap = self.heap
        memory = self.memory
        stats = self.stats
        spawning = self.spawning
        dcode = self._dcode
        # Anchor the skip at the retire clock, not the fetch clock: the
        # gap-based Figure-10 charges telescope on retire times (which
        # run ahead of the fetch events in the queue), so starting the
        # skip below ``last_retire`` would double-charge the in-flight
        # gap and break ``sum(cycle_breakdown) == cycles``.
        base = self.cycle
        if main.last_retire > base:
            base = main.last_retire
        clock = float(base)
        n = 0
        memory.recording = False
        try:
            while n < max_instructions and not state.done:
                d = dcode[state.pc]
                in_stub = bool(state.rfi_stack)
                if d[0] == K_CHK and spawning:
                    # Warm the stub's spawns on a scratch clone; the main
                    # thread itself steps with chk_fires=False so its
                    # instruction stream matches the detailed model's
                    # common (no-free-context) case.
                    warm_chk(program, heap, memory, dcode, state,
                             d[11], int(clock))
                result = step_decoded(program, heap, state, d, False)
                n += 1
                clock += cpi
                stats.main_instructions += 1
                if in_stub:
                    stats.main_stub_instructions += 1
                addr = result[0]
                if addr is not None:
                    kind = d[0]
                    if kind == K_LD:
                        memory.access(addr, int(clock), d[13], True)
                    elif kind == K_ST:
                        memory.access(addr, int(clock), d[13], True,
                                      is_store=True)
                    else:  # lfetch
                        memory.access(addr, int(clock), d[13], True,
                                      is_prefetch=True)
                elif result[2] is not None and self.spawning:
                    # Warm the spawned p-slice functionally so the cache
                    # keeps its SSP-accelerated contents across the skip.
                    warm_slice(program, heap, memory, dcode, state,
                               result[2], int(clock))
        finally:
            memory.recording = True
        skipped = int(round(n * cpi))
        if n and skipped <= 0:
            skipped = 1
        now = base + skipped
        # The caller charges the returned count to the cycle breakdown,
        # so it must cover the whole jump of the *retire* clock: when
        # the fetch events ran ahead of ``last_retire`` the skip also
        # swallows that in-flight span, and when ``base`` was clamped up
        # to ``last_retire`` the two are equal.
        advanced = now - main.last_retire
        self._main_misses = []
        self._issue_used = {}
        self._port_used = {}
        self._fetch_used = {}
        if state.done:
            self._queue = []
            self._live_threads = 0
            self._end_cycle = now
            stats.cycles = now
            return advanced
        # Re-base every live thread to a quiescent machine at ``now``.
        # The main thread's retire ring is seeded with ``now`` so the
        # next window's gap-based Figure-10 accounting starts from the
        # post-skip clock instead of re-charging the whole skip, and
        # speculative threads keep their contexts (timing re-based, a
        # fresh cycle-budget anchor) — see InOrderSimulator.fast_forward
        # for why dropping them biases sampled CPI.
        main.reg_complete.clear()
        main.reg_level.clear()
        main.retire_ring.clear()
        main.start_ring.clear()
        main.spawn_retries = 0
        main.last_retire = now
        main.fetch_cycle = now
        main.retire_ring.append(now)
        self._tie += 1
        queue = [(now, self._tie, main)]
        # A chaining workload's prefetch frontier keeps station on the
        # main thread in the detailed model; advance each paused chain
        # functionally at the pace the last detailed window measured
        # (``chain_rate`` slices per retired main instruction) before
        # re-basing whatever survives to the post-skip clock.
        chains = [entry[2] for entry in self._queue
                  if entry[2] is not main and not entry[2].state.done]
        total_links = int(n * chain_rate) if spawning else 0
        max_links = -(-total_links // len(chains)) if chains else 0
        memory.recording = False
        try:
            for thread in chains:
                survivor, done = advance_chain(
                    program, heap, memory, dcode, thread.state, max_links,
                    now)
                stats.threads_completed += done
                if survivor is None:
                    continue
                if survivor is not thread.state:
                    survivor.tid = self._next_tid
                    self._next_tid += 1
                    thread.state = survivor
                    thread.spec_issued = 0
                    thread.retire_count = 0
                thread.reg_complete.clear()
                thread.reg_level.clear()
                thread.retire_ring.clear()
                thread.start_ring.clear()
                thread.spawn_retries = 0
                thread.last_retire = now
                thread.fetch_cycle = now
                thread.spawn_cycle = now
                self._tie += 1
                queue.append((now, self._tie, thread))
        finally:
            memory.recording = True
        self._queue = queue
        self._live_threads = len(queue)
        return advanced
