"""Cycle-stepped in-order SMT pipeline model (the baseline machine).

Models the paper's 12-stage in-order research Itanium: a scoreboarded
in-order core where "the in-order pipeline stalls when an instruction
attempts to use the destination register of an outstanding load miss"
(Section 4.3), with SMT fetch/issue of 2 bundles from one thread or 1
bundle each from two threads, shared function units (4 int, 3 branch,
2 memory ports), gshare branch prediction, and four hardware thread
contexts with lightweight-exception spawning for SSP.

The simulator is execution-driven: instructions execute architecturally at
issue (via :func:`repro.isa.interp.execute`), so speculative threads
compute real addresses and their prefetches warm the shared caches that the
main thread then hits — the entire SSP effect is emergent, not modelled.

Long stalls are skipped in O(1): when no context can issue, the clock jumps
to the earliest wake-up, charging the skipped cycles to the main thread's
current stall category (Figure 10 accounting).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from ..isa.interp import ThreadState, execute, spawn_thread
from ..isa.memory import Heap
from ..isa.program import Program
from .branch import GsharePredictor
from .caches import L1, MemorySystem
from .config import MachineConfig
from .stats import STALL_CATEGORY, SimStats

#: Sentinel wake cycle for threads with nothing to wait for.
_FAR_FUTURE = 1 << 60


class HWThread:
    """Timing state of one occupied hardware thread context."""

    __slots__ = ("state", "reg_ready", "reg_level", "stall_until", "wake",
                 "spawn_parked_pc", "spec_issued", "spawn_cycle")

    def __init__(self, state: ThreadState, start_cycle: int = 0):
        self.state = state
        #: Instructions issued by this (speculative) context, for the
        #: runaway-slice containment budget.
        self.spec_issued = 0
        #: Cycle the context was allocated, for the cycle budget.
        self.spawn_cycle = start_cycle
        #: register name -> cycle its value becomes available.
        self.reg_ready: Dict[str, int] = {}
        #: register name -> cache level that supplied it (loads only).
        self.reg_level: Dict[str, Optional[str]] = {}
        #: no fetch/issue before this cycle (flush, startup).
        self.stall_until = start_cycle
        #: earliest cycle this thread may make progress (for time skip).
        self.wake = start_cycle
        #: pc of a chaining spawn this thread already parked on once; the
        #: second encounter gives up (the request is dropped) — an
        #: unbounded wait could deadlock all speculative contexts.
        self.spawn_parked_pc: Optional[int] = None


class _Resources:
    """Per-cycle shared function-unit budget."""

    __slots__ = ("mem", "int_", "br")

    def __init__(self, config: MachineConfig):
        self.mem = config.memory_ports
        self.int_ = config.int_units
        self.br = config.branch_units


class InOrderSimulator:
    """Runs a finalised program on the in-order SMT machine model."""

    #: Longest a chaining spawn waits for a free context before being
    #: dropped (bounds priority inversion and prevents deadlock).
    SPAWN_WAIT_LIMIT = 1500

    def __init__(self, program: Program, heap: Heap, config: MachineConfig,
                 spawning: bool = True, max_cycles: int = 200_000_000):
        if not program.finalized:
            program.finalize()
        self.program = program
        self.heap = heap
        self.config = config
        self.spawning = spawning
        self.max_cycles = max_cycles
        self.memory = MemorySystem(config)
        self.memory.prefetch_sources = dict(
            getattr(program, "prefetch_sources", {}))
        self.predictor = GsharePredictor(
            config.gshare_entries, config.btb_entries, config.btb_ways,
            config.hardware_contexts)
        self.stats = SimStats(self.memory)
        self.contexts: List[Optional[HWThread]] = (
            [None] * config.hardware_contexts)
        # Outstanding main-thread misses: heap of completion cycles.
        self._main_misses: List[int] = []
        self._next_tid = 0
        self._rr = 1  # round-robin pointer over speculative contexts
        # Speculative threads parked waiting for a free context.
        self._context_waiters: List[HWThread] = []
        # Dynamic chk.c throttling (Section 4.4.1 future work): per-trigger
        # fire counts, the partial-hit baseline at first fire, and the set
        # of suppressed triggers.
        self._chk_fires: Dict[int, int] = {}
        self._chk_partials_at_first: Dict[int, int] = {}
        self._chk_suppressed: set = set()
        # Checkpoint/resume bookkeeping: current cycle and whether the run
        # loop has been entered (so a restored simulator continues instead
        # of re-initialising the main context).
        self._now = 0
        self._started = False
        # Cycle-attribution profiler (repro.obs.profiler).  With no
        # profiler attached, ``_prof_next`` is a far-future sentinel and
        # the run loop's profiling gate is one always-false int compare.
        self._profiler = None
        self._prof_next = _FAR_FUTURE

    def attach_profiler(self, profiler) -> None:
        """Sample wall-time attribution into ``profiler`` during run().

        Profiling is observation-only: it never touches simulator state,
        so a profiled run produces byte-identical statistics.  Profiler
        state is deliberately outside ``_SNAPSHOT_FIELDS`` — checkpoints
        stay host-independent and a restored simulator is unprofiled
        unless the restoring process attaches its own profiler.
        """
        profiler.model = self.SNAPSHOT_MODEL
        self._profiler = profiler
        self._prof_next = self._now

    # -- checkpoint/resume ---------------------------------------------------------

    #: Everything mutable the run loop touches.  The program itself is NOT
    #: part of a snapshot: runs are content-addressed by their RunSpec, so
    #: a resume rebuilds the identical program and only the dynamic state
    #: crosses the checkpoint file.
    SNAPSHOT_MODEL = "inorder"
    _SNAPSHOT_FIELDS = (
        "heap", "memory", "predictor", "stats", "contexts", "main_state",
        "_main_misses", "_next_tid", "_rr", "_context_waiters",
        "_chk_fires", "_chk_partials_at_first", "_chk_suppressed",
        "_now", "_started",
    )

    @property
    def cycle(self) -> int:
        """Current simulated cycle (updated at checkpoint boundaries)."""
        return self._now

    def snapshot(self) -> Dict[str, object]:
        """Picklable snapshot of all dynamic state at a cycle boundary.

        The returned mapping aliases live simulator objects; serialise it
        (``pickle.dumps``) before letting the simulation continue.  Object
        identity inside the snapshot (stats ↔ memory, contexts ↔ waiters)
        is preserved by pickling the dict as one unit.
        """
        if not self._started:
            self._begin()
        state: Dict[str, object] = {
            name: getattr(self, name) for name in self._SNAPSHOT_FIELDS}
        state["model"] = self.SNAPSHOT_MODEL
        state["cycle"] = self._now
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Reinstall a :meth:`snapshot`; the next :meth:`run` resumes.

        Refuses snapshots from the other machine model or with missing
        fields (a truncated or foreign checkpoint payload) by raising
        :class:`~repro.guard.errors.CheckpointError`.
        """
        from ..guard.errors import CheckpointError
        model = state.get("model") if isinstance(state, dict) else None
        if model != self.SNAPSHOT_MODEL:
            raise CheckpointError(
                f"checkpoint is for model {model!r}, not "
                f"{self.SNAPSHOT_MODEL!r}")
        missing = [n for n in self._SNAPSHOT_FIELDS if n not in state]
        if missing:
            raise CheckpointError(
                f"checkpoint payload missing fields: {missing}")
        for name in self._SNAPSHOT_FIELDS:
            setattr(self, name, state[name])
        # The restored memory system keeps its recorded prefetch mapping;
        # stats must keep pointing at the restored memory system.
        self.stats.memory = self.memory

    def _begin(self) -> None:
        """Initialise the main context (once per simulator lifetime)."""
        program = self.program
        main_state = ThreadState(
            tid=0, pc=program.function_entry[program.entry])
        #: Final main-thread architectural state (the differential oracle
        #: compares it across execution engines after :meth:`run`).
        self.main_state = main_state
        self.contexts[0] = HWThread(main_state)
        self._now = 0
        self._started = True

    # -- context management -------------------------------------------------------

    def _on_reap(self, slot: int, now: int) -> None:
        """Hook invoked when a finished speculative thread frees its
        context (overridden by the tracing simulator)."""

    def _on_chk_fired(self, uid: int, now: int) -> None:
        """Hook invoked when a chk.c trigger fires (overridden by the
        tracing simulator; fired triggers are rare, so the no-op call
        costs nothing measurable)."""

    def _free_slot(self) -> Optional[int]:
        for slot in range(1, self.config.hardware_contexts):
            if self.contexts[slot] is None:
                return slot
        return None

    def _spawn(self, parent: HWThread, target: int, now: int) -> bool:
        slot = self._free_slot()
        if slot is None:
            self.stats.spawn_failures += 1
            return False
        self._next_tid += 1
        child_state = spawn_thread(parent.state, self._next_tid, target)
        child = HWThread(child_state,
                         start_cycle=now + self.config.spawn_startup_latency)
        self.contexts[slot] = child
        self.stats.spawns += 1
        return True

    # -- issue logic ---------------------------------------------------------------

    def _blocked_on(self, thread: HWThread, now: int):
        """If the thread's next instruction can't issue, return
        (wake_cycle, blocking register); else None."""
        instr = self.program.code[thread.state.pc]
        ready = thread.reg_ready
        worst_cycle, worst_reg = 0, None
        for reg in instr.reads:
            t = ready.get(reg, 0)
            if t > worst_cycle:
                worst_cycle, worst_reg = t, reg
        if worst_cycle > now:
            return worst_cycle, worst_reg
        return None

    def _issue_thread(self, thread: HWThread, budget: int, now: int,
                      res: _Resources) -> int:
        """Issue up to ``budget`` instructions from ``thread`` at ``now``.

        Returns the number issued.  Updates scoreboard, caches, predictor,
        and may spawn/kill threads.
        """
        program = self.program
        code = program.code
        state = thread.state
        config = self.config
        is_main = state.tid == 0
        issued = 0

        while issued < budget:
            # Runaway-slice containment: a speculative context that has
            # exhausted its instruction budget is killed on the spot.
            if not is_main:
                limit = config.spec_instruction_budget
                if limit and thread.spec_issued >= limit:
                    state.killed = True
                    self.stats.budget_kills += 1
                    break

            instr = code[state.pc]
            op = instr.op

            # Scoreboard: stall on use of a not-yet-ready register.
            blocked = self._blocked_on(thread, now)
            if blocked is not None:
                thread.wake = blocked[0]
                break

            # Structural hazards: shared function units.
            if instr.is_memory:
                if res.mem == 0:
                    thread.wake = now + 1
                    break
                res.mem -= 1
            elif instr.is_branch or op in ("chk.c", "spawn"):
                if res.br == 0:
                    thread.wake = now + 1
                    break
                res.br -= 1
            else:
                if res.int_ == 0:
                    thread.wake = now + 1
                    break
                res.int_ -= 1

            # A chaining spawn in a speculative thread *waits* for a free
            # context (the lightweight exception fires "when a free
            # hardware context is available", Section 2.1) — this is what
            # keeps a chain alive as a self-throttling pipeline.  The main
            # thread never blocks: its chk.c simply does not fire.
            if (op == "spawn" and not is_main
                    and self._free_slot() is None):
                if thread.spawn_parked_pc == state.pc:
                    # Second attempt with no context: give up — the spawn
                    # request is ignored (Section 2.1) and the thread runs
                    # on, which also rules out all-contexts-parked
                    # deadlock.
                    thread.spawn_parked_pc = None
                else:
                    self.stats.spawn_waits += 1
                    thread.spawn_parked_pc = state.pc
                    thread.wake = now + self.SPAWN_WAIT_LIMIT
                    self._context_waiters.append(thread)
                    break

            chk_fires = False
            if op == "chk.c":
                chk_fires = self.spawning and self._free_slot() is not None
                if chk_fires and config.dynamic_chk_throttle:
                    chk_fires = self._throttle_allows(instr.uid)

            pc_before = state.pc
            # A non-empty rfi stack means the main thread is inside a
            # recovery stub (between a fired chk.c and its rfi): those
            # instructions retire on the main thread but are adaptation
            # overhead, tracked separately so the retired-instruction
            # oracle can compare models net of fired triggers.
            in_stub = is_main and bool(state.rfi_stack)
            result = execute(program, self.heap, state, instr, chk_fires)
            issued += 1
            if is_main:
                self.stats.main_instructions += 1
                if in_stub:
                    self.stats.main_stub_instructions += 1
            else:
                self.stats.spec_instructions += 1
                thread.spec_issued += 1

            # -- latency & side effects per class ---------------------------------
            if op == "ld":
                if result.mem_addr is not None and result.executed:
                    access = self.memory.access(
                        result.mem_addr, now, instr.uid, is_main)
                    thread.reg_ready[instr.dest] = access.ready
                    thread.reg_level[instr.dest] = access.level
                    if is_main and access.level != L1:
                        heapq.heappush(self._main_misses, access.ready)
                else:
                    thread.reg_ready[instr.dest] = now + 1
                    thread.reg_level[instr.dest] = None
            elif op == "st":
                if result.mem_addr is not None and result.executed:
                    self.memory.access(result.mem_addr, now, instr.uid,
                                       is_main, is_store=True)
            elif op == "lfetch":
                if result.mem_addr is not None and result.executed:
                    self.memory.access(result.mem_addr, now, instr.uid,
                                       is_main, is_prefetch=True)
                else:
                    self.memory.prefetches_dropped += 1
            elif instr.dest is not None and result.executed:
                latency = instr.fixed_latency()
                thread.reg_ready[instr.dest] = now + latency
                thread.reg_level[instr.dest] = None

            # -- control flow ------------------------------------------------------
            if op == "br.cond":
                penalty = self.predictor.predict_and_update(
                    pc_before, state.tid, bool(result.taken))
                if penalty < 0:
                    self.stats.mispredicts += 1
                    thread.stall_until = now + 1 + config.mispredict_penalty
                    thread.wake = thread.stall_until
                    break
                if result.taken:
                    if penalty > 0:
                        thread.stall_until = now + 1 + penalty
                        thread.wake = thread.stall_until
                    break  # taken branch ends this thread's fetch group
            elif op in ("br", "br.call", "br.call.ind", "br.ret"):
                if state.halted:
                    break
                break  # control transfer ends the fetch group
            elif op == "chk.c" and result.chk_taken:
                # Lightweight exception: pipeline flush, resume in the stub.
                self.stats.chk_fired += 1
                self._on_chk_fired(instr.uid, now)
                thread.stall_until = now + config.chk_flush_penalty
                thread.wake = thread.stall_until
                break
            elif op == "chk.c":
                self.stats.chk_ignored += 1
            elif op == "spawn":
                if result.spawn_target is not None:
                    self._spawn(thread, result.spawn_target, now)
            elif op in ("kill", "halt"):
                break

            if state.done:
                break

        if issued and not state.done and thread.wake <= now:
            thread.wake = now + 1
        return issued

    def _total_partials(self) -> int:
        return sum(self.memory.partial_counts.values())

    def _throttle_allows(self, chk_uid: int) -> bool:
        """Dynamic coverage/timeliness monitor for one trigger.

        Samples the first N fires; if the main thread gained fewer than
        ``throttle_min_benefit`` partial hits per fire — the speculative
        threads are not getting useful prefetches in flight — the trigger
        is suppressed for the rest of the run (its chk.c "returns no
        available context").
        """
        if chk_uid in self._chk_suppressed:
            return False
        config = self.config
        fires = self._chk_fires.get(chk_uid, 0)
        if fires == 0:
            self._chk_partials_at_first[chk_uid] = self._total_partials()
        elif fires >= config.throttle_sample_fires:
            gained = (self._total_partials()
                      - self._chk_partials_at_first[chk_uid])
            if gained / fires < config.throttle_min_benefit:
                self._chk_suppressed.add(chk_uid)
                return False
        self._chk_fires[chk_uid] = fires + 1
        return True

    # -- accounting -----------------------------------------------------------------

    def _main_category(self, main: Optional[HWThread], issued_main: int,
                       now: int) -> str:
        misses = self._main_misses
        while misses and misses[0] <= now:
            heapq.heappop(misses)
        if issued_main > 0:
            return "CacheExec" if misses else "Exec"
        if main is None or main.state.done:
            return "Other"
        if main.stall_until > now:
            return "Other"  # flush/redirect bubble
        blocked = self._blocked_on(main, now)
        if blocked is not None:
            level = main.reg_level.get(blocked[1])
            if level == L1:
                return "Exec"  # short L1-hit interlock: pipeline still busy
            if level in STALL_CATEGORY:
                return STALL_CATEGORY[level]
            return "Other"
        return "Other"  # lost fetch slots to other threads, etc.

    # -- main loop --------------------------------------------------------------------

    def run(self, checkpoint_every: Optional[int] = None,
            on_checkpoint=None) -> SimStats:
        """Simulate until the main thread halts; returns the statistics.

        Args:
            checkpoint_every: with ``on_checkpoint``, invoke the callback
                at the first cycle boundary at or past every multiple of
                this many cycles (the callback must not mutate simulator
                state — it typically calls :meth:`snapshot`).
            on_checkpoint: ``callback(simulator)`` for periodic
                checkpoints/heartbeats.  Checkpoint cadence never affects
                the simulated statistics.

        A simulator whose state was installed by :meth:`restore` continues
        from the checkpointed cycle instead of starting over.
        """
        config = self.config
        if not self._started:
            self._begin()
        main = self.contexts[0]
        stats = self.stats
        now = self._now
        next_checkpoint = None
        if on_checkpoint is not None and checkpoint_every:
            next_checkpoint = now + checkpoint_every

        while not main.state.done:
            if next_checkpoint is not None and now >= next_checkpoint:
                self._now = now
                on_checkpoint(self)
                while next_checkpoint <= now:
                    next_checkpoint += checkpoint_every
            if now >= self.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles")
            # Profiling gate: one int compare per iteration when off
            # (``_prof_next`` is the far-future sentinel).  On a sampled
            # iteration ``prof`` goes non-None and the loop takes wall
            # laps at its phase boundaries below.
            prof = None
            if now >= self._prof_next:
                prof = self._profiler
                t_prof = prof.begin(now)

            # Reap finished speculative threads; wake any chain spawner
            # that was parked waiting for a context.
            cycle_budget = config.spec_cycle_budget
            for slot in range(1, config.hardware_contexts):
                ctx = self.contexts[slot]
                if (ctx is not None and cycle_budget
                        and not ctx.state.done
                        and now - ctx.spawn_cycle >= cycle_budget):
                    # Containment: the context outlived its cycle budget.
                    ctx.state.killed = True
                    stats.budget_kills += 1
                if ctx is not None and ctx.state.done:
                    self.contexts[slot] = None
                    stats.threads_completed += 1
                    self._on_reap(slot, now)
                    if self._context_waiters:
                        for waiter in self._context_waiters:
                            if not waiter.state.done:
                                waiter.wake = now
                        self._context_waiters = []
            if prof is not None:
                t_prof = prof.lap("reap", t_prof)

            # Select up to two issuable threads: the main thread has fetch
            # priority (speculative threads use *otherwise idle* resources);
            # speculative contexts share the remaining slot round-robin.
            candidates: List[HWThread] = []
            n_ctx = config.hardware_contexts
            slot_order = [0] + [1 + (self._rr + k - 1) % (n_ctx - 1)
                                for k in range(1, n_ctx)]
            for slot in slot_order:
                ctx = self.contexts[slot]
                if (ctx is None or ctx.state.done or ctx.stall_until > now
                        or ctx.wake > now):
                    continue
                if self._blocked_on(ctx, now) is None:
                    candidates.append(ctx)
                    if len(candidates) == config.max_threads_per_cycle:
                        break
            self._rr = self._rr % (n_ctx - 1) + 1
            if prof is not None:
                t_prof = prof.lap("select", t_prof)

            issued_main = 0
            if candidates:
                res = _Resources(config)
                if len(candidates) == 1:
                    budget = config.issue_width
                else:
                    budget = config.bundle_size
                for ctx in candidates:
                    n = self._issue_thread(ctx, budget, now, res)
                    if ctx is main:
                        issued_main = n
            if prof is not None:
                t_prof = prof.lap("issue", t_prof)

            stats.charge(self._main_category(main, issued_main, now))
            if prof is not None:
                prof.lap("account", t_prof)
                self._prof_next = prof.sample(now, stats, issued_main,
                                              not candidates)
            if main.state.done:
                now += 1
                break

            if candidates:
                now += 1
                continue

            # Nothing issuable: skip to the earliest wake-up.
            wake = _FAR_FUTURE
            for ctx in self.contexts:
                if ctx is None or ctx.state.done:
                    continue
                w = max(ctx.stall_until, ctx.wake)
                blocked = self._blocked_on(ctx, now)
                if blocked is not None:
                    w = max(w, blocked[0])
                wake = min(wake, w)
            if wake == _FAR_FUTURE or wake <= now:
                wake = now + 1
            skip = wake - now - 1
            if skip > 0:
                stats.charge(self._main_category(main, 0, now), skip)
            now = wake

        self._now = now
        stats.cycles = now
        stats.mispredicts = self.predictor.mispredicts
        return stats
