"""Cycle-stepped in-order SMT pipeline model (the baseline machine).

Models the paper's 12-stage in-order research Itanium: a scoreboarded
in-order core where "the in-order pipeline stalls when an instruction
attempts to use the destination register of an outstanding load miss"
(Section 4.3), with SMT fetch/issue of 2 bundles from one thread or 1
bundle each from two threads, shared function units (4 int, 3 branch,
2 memory ports), gshare branch prediction, and four hardware thread
contexts with lightweight-exception spawning for SSP.

The simulator is execution-driven: instructions execute architecturally at
issue (via :func:`repro.isa.interp.execute`), so speculative threads
compute real addresses and their prefetches warm the shared caches that the
main thread then hits — the entire SSP effect is emergent, not modelled.

Long stalls are skipped in O(1): when no context can issue, the clock jumps
to the earliest wake-up, charging the skipped cycles to the main thread's
current stall category (Figure 10 accounting).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from ..isa.decode import (
    D_READS,
    K_ALU,
    K_BR,
    K_BRC,
    K_CALL,
    K_CALLI,
    K_CHK,
    K_CMP,
    K_HALT,
    K_KILL,
    K_LD,
    K_LFETCH,
    K_LIBLD,
    K_LIBST,
    K_MOV,
    K_NOP,
    K_RET,
    K_RFI,
    K_SPAWN,
    K_ST,
    RES_BR,
    RES_INT,
    RES_MEM,
    decode_program,
    resolve_fast_path,
    step_decoded,
)
from ..isa.interp import ExecutionError, ThreadState, execute, spawn_thread
from ..isa.memory import HEAP_BASE, Heap
from ..isa.program import Program
from ..isa import registers as regs
from .branch import GsharePredictor
from .caches import L1, MemorySystem
from .sampling import advance_chain, warm_chk, warm_slice
from .config import MachineConfig
from .stats import STALL_CATEGORY, SimStats

#: Sentinel wake cycle for threads with nothing to wait for.
_FAR_FUTURE = 1 << 60


class HWThread:
    """Timing state of one occupied hardware thread context."""

    __slots__ = ("state", "reg_ready", "reg_level", "stall_until", "wake",
                 "spawn_parked_pc", "spec_issued", "spawn_cycle",
                 "ready_bound")

    def __init__(self, state: ThreadState, start_cycle: int = 0):
        self.state = state
        #: Instructions issued by this (speculative) context, for the
        #: runaway-slice containment budget.
        self.spec_issued = 0
        #: Cycle the context was allocated, for the cycle budget.
        self.spawn_cycle = start_cycle
        #: register name -> cycle its value becomes available.
        self.reg_ready: Dict[str, int] = {}
        #: Upper bound on every value in ``reg_ready``: once the clock
        #: passes it, no register can block and the scoreboard scan is
        #: skipped wholesale.
        self.ready_bound = 0
        #: register name -> cache level that supplied it (loads only).
        self.reg_level: Dict[str, Optional[str]] = {}
        #: no fetch/issue before this cycle (flush, startup).
        self.stall_until = start_cycle
        #: earliest cycle this thread may make progress (for time skip).
        self.wake = start_cycle
        #: pc of a chaining spawn this thread already parked on once; the
        #: second encounter gives up (the request is dropped) — an
        #: unbounded wait could deadlock all speculative contexts.
        self.spawn_parked_pc: Optional[int] = None


class _Resources:
    """Per-cycle shared function-unit budget."""

    __slots__ = ("mem", "int_", "br")

    def __init__(self, config: MachineConfig):
        self.mem = config.memory_ports
        self.int_ = config.int_units
        self.br = config.branch_units


class InOrderSimulator:
    """Runs a finalised program on the in-order SMT machine model."""

    #: Longest a chaining spawn waits for a free context before being
    #: dropped (bounds priority inversion and prevents deadlock).
    SPAWN_WAIT_LIMIT = 1500

    def __init__(self, program: Program, heap: Heap, config: MachineConfig,
                 spawning: bool = True, max_cycles: int = 200_000_000,
                 fast_path: Optional[bool] = None):
        if not program.finalized:
            program.finalize()
        self.program = program
        #: Issue from the pre-decoded table (repro.isa.decode) instead of
        #: re-interpreting Instruction objects per cycle.  Byte-identical
        #: SimStats either way; ``None`` resolves via REPRO_SIM_LEGACY.
        self.fast_path = resolve_fast_path(fast_path)
        # The decoded table is built unconditionally: the sampled mode's
        # functional fast-forward uses it even on the legacy path.
        self._dcode = decode_program(program)
        self._dreads = [d[D_READS] for d in self._dcode]
        n_ctx = config.hardware_contexts
        # Precomputed speculative-context round-robin orders, one per _rr
        # value (the legacy loop rebuilds this list every cycle).
        self._slot_orders = {
            rr: tuple([0] + [1 + (rr + k - 1) % (n_ctx - 1)
                             for k in range(1, n_ctx)])
            for rr in range(1, n_ctx)} if n_ctx > 1 else {}
        self.heap = heap
        self.config = config
        self.spawning = spawning
        self.max_cycles = max_cycles
        self.memory = MemorySystem(config)
        self.memory.prefetch_sources = dict(
            getattr(program, "prefetch_sources", {}))
        self.predictor = GsharePredictor(
            config.gshare_entries, config.btb_entries, config.btb_ways,
            config.hardware_contexts)
        self.stats = SimStats(self.memory)
        self.contexts: List[Optional[HWThread]] = (
            [None] * config.hardware_contexts)
        # Outstanding main-thread misses: heap of completion cycles.
        self._main_misses: List[int] = []
        # Live speculative contexts and their cycle-budget deadlines
        # (spawn_cycle + spec_cycle_budget, min-heap).  The fast loop
        # only walks the context slots when one of these says a context
        # can actually have died; the legacy loop ignores them.
        self._live_spec = 0
        self._spec_deadlines: List[int] = []
        self._next_tid = 0
        self._rr = 1  # round-robin pointer over speculative contexts
        # Speculative threads parked waiting for a free context.
        self._context_waiters: List[HWThread] = []
        # Dynamic chk.c throttling (Section 4.4.1 future work): per-trigger
        # fire counts, the partial-hit baseline at first fire, and the set
        # of suppressed triggers.
        self._chk_fires: Dict[int, int] = {}
        self._chk_partials_at_first: Dict[int, int] = {}
        self._chk_suppressed: set = set()
        # Checkpoint/resume bookkeeping: current cycle and whether the run
        # loop has been entered (so a restored simulator continues instead
        # of re-initialising the main context).
        self._now = 0
        self._started = False
        # Cycle-attribution profiler (repro.obs.profiler).  With no
        # profiler attached, ``_prof_next`` is a far-future sentinel and
        # the run loop's profiling gate is one always-false int compare.
        self._profiler = None
        self._prof_next = _FAR_FUTURE

    def attach_profiler(self, profiler) -> None:
        """Sample wall-time attribution into ``profiler`` during run().

        Profiling is observation-only: it never touches simulator state,
        so a profiled run produces byte-identical statistics.  Profiler
        state is deliberately outside ``_SNAPSHOT_FIELDS`` — checkpoints
        stay host-independent and a restored simulator is unprofiled
        unless the restoring process attaches its own profiler.
        """
        profiler.model = self.SNAPSHOT_MODEL
        self._profiler = profiler
        self._prof_next = self._now

    # -- checkpoint/resume ---------------------------------------------------------

    #: Everything mutable the run loop touches.  The program itself is NOT
    #: part of a snapshot: runs are content-addressed by their RunSpec, so
    #: a resume rebuilds the identical program and only the dynamic state
    #: crosses the checkpoint file.
    SNAPSHOT_MODEL = "inorder"
    _SNAPSHOT_FIELDS = (
        "heap", "memory", "predictor", "stats", "contexts", "main_state",
        "_main_misses", "_next_tid", "_rr", "_context_waiters",
        "_chk_fires", "_chk_partials_at_first", "_chk_suppressed",
        "_now", "_started",
    )

    @property
    def cycle(self) -> int:
        """Current simulated cycle (updated at checkpoint boundaries)."""
        return self._now

    def snapshot(self) -> Dict[str, object]:
        """Picklable snapshot of all dynamic state at a cycle boundary.

        The returned mapping aliases live simulator objects; serialise it
        (``pickle.dumps``) before letting the simulation continue.  Object
        identity inside the snapshot (stats ↔ memory, contexts ↔ waiters)
        is preserved by pickling the dict as one unit.
        """
        if not self._started:
            self._begin()
        state: Dict[str, object] = {
            name: getattr(self, name) for name in self._SNAPSHOT_FIELDS}
        state["model"] = self.SNAPSHOT_MODEL
        state["cycle"] = self._now
        return state

    def restore(self, state: Dict[str, object]) -> None:
        """Reinstall a :meth:`snapshot`; the next :meth:`run` resumes.

        Refuses snapshots from the other machine model or with missing
        fields (a truncated or foreign checkpoint payload) by raising
        :class:`~repro.guard.errors.CheckpointError`.
        """
        from ..guard.errors import CheckpointError
        model = state.get("model") if isinstance(state, dict) else None
        if model != self.SNAPSHOT_MODEL:
            raise CheckpointError(
                f"checkpoint is for model {model!r}, not "
                f"{self.SNAPSHOT_MODEL!r}")
        missing = [n for n in self._SNAPSHOT_FIELDS if n not in state]
        if missing:
            raise CheckpointError(
                f"checkpoint payload missing fields: {missing}")
        for name in self._SNAPSHOT_FIELDS:
            setattr(self, name, state[name])
        # The restored memory system keeps its recorded prefetch mapping;
        # stats must keep pointing at the restored memory system.
        self.stats.memory = self.memory
        # A profiler attached *before* restore() captured the pre-restore
        # clock in _prof_next; renormalise so a resumed profiled run
        # samples on the configured interval instead of every iteration.
        if self._profiler is not None:
            self._prof_next = self._now
        else:
            self._prof_next = _FAR_FUTURE
        # Snapshots pickled before the scoreboard bound existed lack the
        # slot; recompute it exactly from the restored scoreboard.
        for ctx in self.contexts:
            if ctx is not None and not hasattr(ctx, "ready_bound"):
                ctx.ready_bound = max(ctx.reg_ready.values(), default=0)
        # Derived reap-trigger state (not part of the snapshot): rebuild
        # from the restored contexts.  Dead-but-unreaped contexts are
        # handled by the unconditional reap pass on the first iteration
        # of the next run().
        budget = self.config.spec_cycle_budget
        self._live_spec = 0
        self._spec_deadlines = []
        for ctx in self.contexts[1:]:
            if ctx is not None and not (ctx.state.halted
                                        or ctx.state.killed):
                self._live_spec += 1
                if budget:
                    heapq.heappush(self._spec_deadlines,
                                   ctx.spawn_cycle + budget)

    @property
    def main_done(self) -> bool:
        """True once the main thread has halted (or been killed)."""
        return self._started and self.contexts[0].state.done

    def _begin(self) -> None:
        """Initialise the main context (once per simulator lifetime)."""
        program = self.program
        main_state = ThreadState(
            tid=0, pc=program.function_entry[program.entry])
        #: Final main-thread architectural state (the differential oracle
        #: compares it across execution engines after :meth:`run`).
        self.main_state = main_state
        self.contexts[0] = HWThread(main_state)
        self._now = 0
        self._started = True

    # -- context management -------------------------------------------------------

    def _on_reap(self, slot: int, now: int) -> None:
        """Hook invoked when a finished speculative thread frees its
        context (overridden by the tracing simulator)."""

    def _on_chk_fired(self, uid: int, now: int) -> None:
        """Hook invoked when a chk.c trigger fires (overridden by the
        tracing simulator; fired triggers are rare, so the no-op call
        costs nothing measurable)."""

    def _free_slot(self) -> Optional[int]:
        for slot in range(1, self.config.hardware_contexts):
            if self.contexts[slot] is None:
                return slot
        return None

    def _spawn(self, parent: HWThread, target: int, now: int) -> bool:
        slot = self._free_slot()
        if slot is None:
            self.stats.spawn_failures += 1
            return False
        self._next_tid += 1
        child_state = spawn_thread(parent.state, self._next_tid, target)
        child = HWThread(child_state,
                         start_cycle=now + self.config.spawn_startup_latency)
        self.contexts[slot] = child
        self._live_spec += 1
        budget = self.config.spec_cycle_budget
        if budget:
            heapq.heappush(self._spec_deadlines,
                           child.spawn_cycle + budget)
        self.stats.spawns += 1
        return True

    # -- issue logic ---------------------------------------------------------------

    def _blocked_on(self, thread: HWThread, now: int):
        """If the thread's next instruction can't issue, return
        (wake_cycle, blocking register); else None."""
        instr = self.program.code[thread.state.pc]
        ready = thread.reg_ready
        worst_cycle, worst_reg = 0, None
        for reg in instr.reads:
            t = ready.get(reg, 0)
            if t > worst_cycle:
                worst_cycle, worst_reg = t, reg
        if worst_cycle > now:
            return worst_cycle, worst_reg
        return None

    def _issue_thread(self, thread: HWThread, budget: int, now: int,
                      res: _Resources) -> int:
        """Issue up to ``budget`` instructions from ``thread`` at ``now``.

        Returns the number issued.  Updates scoreboard, caches, predictor,
        and may spawn/kill threads.
        """
        program = self.program
        code = program.code
        state = thread.state
        config = self.config
        is_main = state.tid == 0
        issued = 0

        while issued < budget:
            # Runaway-slice containment: a speculative context that has
            # exhausted its instruction budget is killed on the spot.
            if not is_main:
                limit = config.spec_instruction_budget
                if limit and thread.spec_issued >= limit:
                    state.killed = True
                    self.stats.budget_kills += 1
                    break

            instr = code[state.pc]
            op = instr.op

            # Scoreboard: stall on use of a not-yet-ready register.
            blocked = self._blocked_on(thread, now)
            if blocked is not None:
                thread.wake = blocked[0]
                break

            # Structural hazards: shared function units.
            if instr.is_memory:
                if res.mem == 0:
                    thread.wake = now + 1
                    break
                res.mem -= 1
            elif instr.is_branch or op in ("chk.c", "spawn"):
                if res.br == 0:
                    thread.wake = now + 1
                    break
                res.br -= 1
            else:
                if res.int_ == 0:
                    thread.wake = now + 1
                    break
                res.int_ -= 1

            # A chaining spawn in a speculative thread *waits* for a free
            # context (the lightweight exception fires "when a free
            # hardware context is available", Section 2.1) — this is what
            # keeps a chain alive as a self-throttling pipeline.  The main
            # thread never blocks: its chk.c simply does not fire.
            if (op == "spawn" and not is_main
                    and self._free_slot() is None):
                if thread.spawn_parked_pc == state.pc:
                    # Second attempt with no context: give up — the spawn
                    # request is ignored (Section 2.1) and the thread runs
                    # on, which also rules out all-contexts-parked
                    # deadlock.
                    thread.spawn_parked_pc = None
                else:
                    self.stats.spawn_waits += 1
                    thread.spawn_parked_pc = state.pc
                    thread.wake = now + self.SPAWN_WAIT_LIMIT
                    self._context_waiters.append(thread)
                    break

            chk_fires = False
            if op == "chk.c":
                chk_fires = self.spawning and self._free_slot() is not None
                if chk_fires and config.dynamic_chk_throttle:
                    chk_fires = self._throttle_allows(instr.uid)

            pc_before = state.pc
            # A non-empty rfi stack means the main thread is inside a
            # recovery stub (between a fired chk.c and its rfi): those
            # instructions retire on the main thread but are adaptation
            # overhead, tracked separately so the retired-instruction
            # oracle can compare models net of fired triggers.
            in_stub = is_main and bool(state.rfi_stack)
            result = execute(program, self.heap, state, instr, chk_fires)
            issued += 1
            if is_main:
                self.stats.main_instructions += 1
                if in_stub:
                    self.stats.main_stub_instructions += 1
            else:
                self.stats.spec_instructions += 1
                thread.spec_issued += 1

            # -- latency & side effects per class ---------------------------------
            if op == "ld":
                if result.mem_addr is not None and result.executed:
                    access = self.memory.access(
                        result.mem_addr, now, instr.uid, is_main)
                    thread.reg_ready[instr.dest] = access.ready
                    if access.ready > thread.ready_bound:
                        thread.ready_bound = access.ready
                    thread.reg_level[instr.dest] = access.level
                    if is_main and access.level != L1:
                        heapq.heappush(self._main_misses, access.ready)
                else:
                    thread.reg_ready[instr.dest] = now + 1
                    if now + 1 > thread.ready_bound:
                        thread.ready_bound = now + 1
                    thread.reg_level[instr.dest] = None
            elif op == "st":
                if result.mem_addr is not None and result.executed:
                    self.memory.access(result.mem_addr, now, instr.uid,
                                       is_main, is_store=True)
            elif op == "lfetch":
                if result.mem_addr is not None and result.executed:
                    self.memory.access(result.mem_addr, now, instr.uid,
                                       is_main, is_prefetch=True)
                else:
                    self.memory.prefetches_dropped += 1
            elif instr.dest is not None and result.executed:
                latency = instr.fixed_latency()
                thread.reg_ready[instr.dest] = now + latency
                if now + latency > thread.ready_bound:
                    thread.ready_bound = now + latency
                thread.reg_level[instr.dest] = None

            # -- control flow ------------------------------------------------------
            if op == "br.cond":
                penalty = self.predictor.predict_and_update(
                    pc_before, state.tid, bool(result.taken))
                if penalty < 0:
                    self.stats.mispredicts += 1
                    thread.stall_until = now + 1 + config.mispredict_penalty
                    thread.wake = thread.stall_until
                    break
                if result.taken:
                    if penalty > 0:
                        thread.stall_until = now + 1 + penalty
                        thread.wake = thread.stall_until
                    break  # taken branch ends this thread's fetch group
            elif op in ("br", "br.call", "br.call.ind", "br.ret"):
                if state.halted:
                    break
                break  # control transfer ends the fetch group
            elif op == "chk.c" and result.chk_taken:
                # Lightweight exception: pipeline flush, resume in the stub.
                self.stats.chk_fired += 1
                self._on_chk_fired(instr.uid, now)
                thread.stall_until = now + config.chk_flush_penalty
                thread.wake = thread.stall_until
                break
            elif op == "chk.c":
                self.stats.chk_ignored += 1
            elif op == "spawn":
                if result.spawn_target is not None:
                    self._spawn(thread, result.spawn_target, now)
            elif op in ("kill", "halt"):
                break

            if state.done:
                break

        if issued and not state.done and thread.wake <= now:
            thread.wake = now + 1
        return issued

    def _total_partials(self) -> int:
        return sum(self.memory.partial_counts.values())

    def _throttle_allows(self, chk_uid: int) -> bool:
        """Dynamic coverage/timeliness monitor for one trigger.

        Samples the first N fires; if the main thread gained fewer than
        ``throttle_min_benefit`` partial hits per fire — the speculative
        threads are not getting useful prefetches in flight — the trigger
        is suppressed for the rest of the run (its chk.c "returns no
        available context").
        """
        if chk_uid in self._chk_suppressed:
            return False
        config = self.config
        fires = self._chk_fires.get(chk_uid, 0)
        if fires == 0:
            self._chk_partials_at_first[chk_uid] = self._total_partials()
        elif fires >= config.throttle_sample_fires:
            gained = (self._total_partials()
                      - self._chk_partials_at_first[chk_uid])
            if gained / fires < config.throttle_min_benefit:
                self._chk_suppressed.add(chk_uid)
                return False
        self._chk_fires[chk_uid] = fires + 1
        return True

    # -- accounting -----------------------------------------------------------------

    def _main_category(self, main: Optional[HWThread], issued_main: int,
                       now: int) -> str:
        misses = self._main_misses
        while misses and misses[0] <= now:
            heapq.heappop(misses)
        if issued_main > 0:
            return "CacheExec" if misses else "Exec"
        if main is None or main.state.done:
            return "Other"
        if main.stall_until > now:
            return "Other"  # flush/redirect bubble
        blocked = self._blocked_on(main, now)
        if blocked is not None:
            level = main.reg_level.get(blocked[1])
            if level == L1:
                return "Exec"  # short L1-hit interlock: pipeline still busy
            if level in STALL_CATEGORY:
                return STALL_CATEGORY[level]
            return "Other"
        return "Other"  # lost fetch slots to other threads, etc.

    # -- main loop --------------------------------------------------------------------

    def run(self, checkpoint_every: Optional[int] = None,
            on_checkpoint=None,
            until_cycle: Optional[int] = None) -> SimStats:
        """Simulate until the main thread halts; returns the statistics.

        Args:
            checkpoint_every: with ``on_checkpoint``, invoke the callback
                at the first cycle boundary at or past every multiple of
                this many cycles (the callback must not mutate simulator
                state — it typically calls :meth:`snapshot`).
            on_checkpoint: ``callback(simulator)`` for periodic
                checkpoints/heartbeats.  Checkpoint cadence never affects
                the simulated statistics.
            until_cycle: stop at the first cycle boundary at or past this
                cycle instead of running to completion (the sampled mode's
                detailed-window driver); a later :meth:`run` continues.

        A simulator whose state was installed by :meth:`restore` continues
        from the checkpointed cycle instead of starting over.
        """
        # The fast select path tracks at most two candidate threads; fall
        # back to the reference loop for exotic wider-fetch overrides.
        if self.fast_path and self.config.max_threads_per_cycle <= 2:
            return self._run_fast(checkpoint_every, on_checkpoint,
                                  until_cycle)
        return self._run_legacy(checkpoint_every, on_checkpoint,
                                until_cycle)

    def _run_legacy(self, checkpoint_every: Optional[int] = None,
                    on_checkpoint=None,
                    until_cycle: Optional[int] = None) -> SimStats:
        """Reference per-cycle loop interpreting Instruction objects.

        Kept verbatim as the behavioural oracle for the pre-decoded fast
        path (``REPRO_SIM_LEGACY=1`` selects it; the differential suite
        asserts byte-identical SimStats against :meth:`_run_fast`).
        """
        config = self.config
        if not self._started:
            self._begin()
        main = self.contexts[0]
        stats = self.stats
        now = self._now
        next_checkpoint = None
        if on_checkpoint is not None and checkpoint_every:
            next_checkpoint = now + checkpoint_every

        while not main.state.done:
            if until_cycle is not None and now >= until_cycle:
                break
            if next_checkpoint is not None and now >= next_checkpoint:
                self._now = now
                on_checkpoint(self)
                while next_checkpoint <= now:
                    next_checkpoint += checkpoint_every
            if now >= self.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles")
            # Profiling gate: one int compare per iteration when off
            # (``_prof_next`` is the far-future sentinel).  On a sampled
            # iteration ``prof`` goes non-None and the loop takes wall
            # laps at its phase boundaries below.
            prof = None
            if now >= self._prof_next:
                prof = self._profiler
                t_prof = prof.begin(now)

            # Reap finished speculative threads; wake any chain spawner
            # that was parked waiting for a context.
            cycle_budget = config.spec_cycle_budget
            for slot in range(1, config.hardware_contexts):
                ctx = self.contexts[slot]
                if (ctx is not None and cycle_budget
                        and not ctx.state.done
                        and now - ctx.spawn_cycle >= cycle_budget):
                    # Containment: the context outlived its cycle budget.
                    ctx.state.killed = True
                    stats.budget_kills += 1
                if ctx is not None and ctx.state.done:
                    self.contexts[slot] = None
                    stats.threads_completed += 1
                    self._on_reap(slot, now)
                    if self._context_waiters:
                        for waiter in self._context_waiters:
                            if not waiter.state.done:
                                waiter.wake = now
                        self._context_waiters = []
            if prof is not None:
                t_prof = prof.lap("reap", t_prof)

            # Select up to two issuable threads: the main thread has fetch
            # priority (speculative threads use *otherwise idle* resources);
            # speculative contexts share the remaining slot round-robin.
            candidates: List[HWThread] = []
            n_ctx = config.hardware_contexts
            slot_order = [0] + [1 + (self._rr + k - 1) % (n_ctx - 1)
                                for k in range(1, n_ctx)]
            for slot in slot_order:
                ctx = self.contexts[slot]
                if (ctx is None or ctx.state.done or ctx.stall_until > now
                        or ctx.wake > now):
                    continue
                if self._blocked_on(ctx, now) is None:
                    candidates.append(ctx)
                    if len(candidates) == config.max_threads_per_cycle:
                        break
            self._rr = self._rr % (n_ctx - 1) + 1
            if prof is not None:
                t_prof = prof.lap("select", t_prof)

            issued_main = 0
            if candidates:
                res = _Resources(config)
                if len(candidates) == 1:
                    budget = config.issue_width
                else:
                    budget = config.bundle_size
                for ctx in candidates:
                    n = self._issue_thread(ctx, budget, now, res)
                    if ctx is main:
                        issued_main = n
            if prof is not None:
                t_prof = prof.lap("issue", t_prof)

            stats.charge(self._main_category(main, issued_main, now))
            if prof is not None:
                prof.lap("account", t_prof)
                self._prof_next = prof.sample(now, stats, issued_main,
                                              not candidates)
            if main.state.done:
                now += 1
                break

            if candidates:
                now += 1
                continue

            # Nothing issuable: skip to the earliest wake-up.
            wake = _FAR_FUTURE
            for ctx in self.contexts:
                if ctx is None or ctx.state.done:
                    continue
                w = max(ctx.stall_until, ctx.wake)
                blocked = self._blocked_on(ctx, now)
                if blocked is not None:
                    w = max(w, blocked[0])
                wake = min(wake, w)
            if wake == _FAR_FUTURE or wake <= now:
                wake = now + 1
            skip = wake - now - 1
            if skip > 0:
                stats.charge(self._main_category(main, 0, now), skip)
            now = wake

        self._now = now
        stats.cycles = now
        stats.mispredicts = self.predictor.mispredicts
        return stats

    # -- pre-decoded fast path ---------------------------------------------------

    def _issue_thread_fast(self, thread: HWThread, budget: int, now: int,
                           res: _Resources) -> int:
        """Decoded-table twin of :meth:`_issue_thread`.

        One fused dispatch per instruction over ``repro.isa.decode``
        tuples: the architectural step (mirroring ``interp.execute``),
        instruction counters, scoreboard/latency updates and control
        flow are a single branch per kind — no Instruction attribute
        access, no ExecResult allocation, and the per-instruction
        counters and unit pools accumulate in locals that flush once per
        call.  Behaviour is byte-identical to the legacy method (see its
        comments for the model rationale); the differential suite
        enforces it.
        """
        program = self.program
        dcode = self._dcode
        state = thread.state
        config = self.config
        heap = self.heap
        words = heap._words
        heap_size = heap.size
        memory = self.memory
        stats = self.stats
        predictor = self.predictor
        spec_budget = config.spec_instruction_budget
        is_main = state.tid == 0
        issued = 0
        n_stub = 0
        spec_base = thread.spec_issued
        ready = thread.reg_ready
        bound = thread.ready_bound
        levels = thread.reg_level
        rd = state.regs
        preds = state.preds
        rfi_stack = state.rfi_stack
        zero = regs.ZERO
        true_pred = regs.TRUE_PREDICATE
        res_int = res.int_
        res_mem = res.mem
        res_br = res.br

        while issued < budget:
            # thread.spec_issued == spec_base + issued at every loop top
            # (each issue increments both), so the budget check can stay
            # on locals.
            if not is_main and spec_budget \
                    and spec_base + issued >= spec_budget:
                state.killed = True
                stats.budget_kills += 1
                break

            pc = state.pc
            d = dcode[pc]

            # Scoreboard: stall on use of a not-yet-ready register.  The
            # scan is skipped outright while no write is still pending
            # (``bound`` caps every reg_ready value).
            if bound > now:
                worst = 0
                for reg in d[8]:                  # D_READS
                    t = ready.get(reg, 0)
                    if t > worst:
                        worst = t
                if worst > now:
                    thread.wake = worst
                    break

            # Structural hazards: shared function units.
            rescls = d[10]                        # D_RES
            if rescls == RES_INT:
                if res_int == 0:
                    thread.wake = now + 1
                    break
                res_int -= 1
            elif rescls == RES_MEM:
                if res_mem == 0:
                    thread.wake = now + 1
                    break
                res_mem -= 1
            else:
                if res_br == 0:
                    thread.wake = now + 1
                    break
                res_br -= 1

            kind = d[0]                           # D_KIND

            # Chaining spawn waits for a free context (see legacy body).
            if kind == K_SPAWN and not is_main \
                    and self._free_slot() is None:
                if thread.spawn_parked_pc == pc:
                    thread.spawn_parked_pc = None
                else:
                    stats.spawn_waits += 1
                    thread.spawn_parked_pc = pc
                    thread.wake = now + self.SPAWN_WAIT_LIMIT
                    self._context_waiters.append(thread)
                    break

            chk_fires = False
            if kind == K_CHK:
                chk_fires = self.spawning and self._free_slot() is not None
                if chk_fires and config.dynamic_chk_throttle:
                    chk_fires = self._throttle_allows(d[13])  # D_UID

            # Predication: a false qualifying predicate squashes the
            # instruction — it still consumed its slot and unit, counts
            # as issued, and (for br.cond) still trains the predictor.
            pred = d[7]                           # D_PRED
            if pred is not None and not preds.get(pred, False):
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                if kind == K_LD:
                    dest = d[2]
                    ready[dest] = now + 1
                    if now + 1 > bound:
                        bound = now + 1
                    levels[dest] = None
                elif kind == K_LFETCH:
                    memory.prefetches_dropped += 1
                if kind == K_BRC:
                    penalty = predictor.predict_and_update(
                        pc, state.tid, False)
                    if penalty < 0:
                        stats.mispredicts += 1
                        thread.stall_until = \
                            now + 1 + config.mispredict_penalty
                        thread.wake = thread.stall_until
                        break
                elif K_BR <= kind <= K_RET:
                    break
                elif kind == K_CHK:
                    stats.chk_ignored += 1
                elif kind == K_KILL or kind == K_HALT:
                    break
                continue

            if kind == K_ALU:
                src1 = d[4]
                dest = d[2]
                rd[dest] = d[12](rd.get(d[3], 0),
                                 rd.get(src1, 0) if src1 is not None
                                 else d[5])
                if dest == zero:
                    rd[zero] = 0
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                t = now + d[9]                    # D_LAT
                ready[dest] = t
                if t > bound:
                    bound = t
                levels[dest] = None
                continue

            if kind == K_LD:
                dest = d[2]
                addr = rd.get(d[3], 0) + d[6]     # D_IMM0
                if not addr & 7 and HEAP_BASE <= addr < heap_size:
                    rd[dest] = words.get(addr >> 3, 0)
                    state.pc = pc + 1
                    issued += 1
                    if rfi_stack:
                        n_stub += 1
                    access = memory.access(addr, now, d[13], is_main)
                    ready[dest] = access.ready
                    if access.ready > bound:
                        bound = access.ready
                    levels[dest] = access.level
                    if is_main and access.level != L1:
                        heapq.heappush(self._main_misses, access.ready)
                elif state.speculative:
                    rd[dest] = 0                  # deferred exception
                    state.pc = pc + 1
                    issued += 1
                    ready[dest] = now + 1
                    if now + 1 > bound:
                        bound = now + 1
                    levels[dest] = None
                else:
                    raise ExecutionError(
                        f"bad load address {addr:#x} at pc {pc} "
                        f"({program.code[pc]})")
                continue

            if kind == K_CMP:
                src1 = d[4]
                dest = d[2]
                preds[dest] = d[12](rd.get(d[3], 0),
                                    rd.get(src1, 0) if src1 is not None
                                    else d[5])
                if dest == true_pred:
                    preds[true_pred] = True
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                t = now + d[9]
                ready[dest] = t
                if t > bound:
                    bound = t
                levels[dest] = None
                continue

            if kind == K_MOV:
                src = d[3]
                dest = d[2]
                rd[dest] = rd.get(src, 0) if src is not None else d[5]
                if dest == zero:
                    rd[zero] = 0
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                t = now + d[9]
                ready[dest] = t
                if t > bound:
                    bound = t
                levels[dest] = None
                continue

            if kind == K_BRC:
                # An *executed* br.cond is always taken: its predicate is
                # both the qualifying predicate (false → squashed above)
                # and the branch condition.
                state.pc = d[11]                  # D_TARGET
                issued += 1
                if rfi_stack:
                    n_stub += 1
                penalty = predictor.predict_and_update(pc, state.tid, True)
                if penalty < 0:
                    stats.mispredicts += 1
                    thread.stall_until = now + 1 + config.mispredict_penalty
                    thread.wake = thread.stall_until
                    break
                if penalty > 0:
                    thread.stall_until = now + 1 + penalty
                    thread.wake = thread.stall_until
                break  # taken branch ends this thread's fetch group

            if kind == K_BR:
                state.pc = d[11]
                issued += 1
                if rfi_stack:
                    n_stub += 1
                break

            if kind == K_ST:
                if state.speculative:
                    raise ExecutionError(
                        "speculative thread attempted a store — the "
                        "emitter must never place stores in p-slices "
                        f"({program.code[pc]} at pc {pc})")
                addr = rd.get(d[3], 0) + d[6]
                if addr & 7 or not HEAP_BASE <= addr < heap_size:
                    raise ExecutionError(
                        f"bad store address {addr:#x} at pc {pc} "
                        f"({program.code[pc]})")
                words[addr >> 3] = rd.get(d[4], 0)
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                memory.access(addr, now, d[13], is_main, is_store=True)
                continue

            if kind == K_LFETCH:
                addr = rd.get(d[3], 0) + d[6]
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                if not addr & 7 and HEAP_BASE <= addr < heap_size:
                    memory.access(addr, now, d[13], is_main,
                                  is_prefetch=True)
                else:
                    memory.prefetches_dropped += 1
                continue

            if kind == K_CALL:
                state.call_stack.append((pc + 1, dict(rd)))
                state.pc = d[11]
                issued += 1
                if rfi_stack:
                    n_stub += 1
                break

            if kind == K_RET:
                if not state.call_stack:
                    state.halted = True
                else:
                    ret_pc, saved = state.call_stack.pop()
                    saved[regs.RET_VALUE] = rd.get(regs.RET_VALUE, 0)
                    state.regs = saved
                    rd = saved
                    state.pc = ret_pc
                issued += 1
                if rfi_stack:
                    n_stub += 1
                break

            if kind == K_CALLI:
                fid = rd.get(d[3], 0)
                if 0 <= fid < len(program.function_by_id):
                    state.call_stack.append((pc + 1, dict(rd)))
                    state.pc = program.function_entry[
                        program.function_by_id[fid]]
                elif state.speculative:
                    state.killed = True
                else:
                    raise ExecutionError(
                        f"bad indirect call target {fid} at pc {pc}")
                issued += 1
                if rfi_stack:
                    n_stub += 1
                break

            if kind == K_CHK:
                was_stub = bool(rfi_stack)
                if chk_fires:
                    rfi_stack.append(pc + 1)
                    state.pc = d[11]
                else:
                    state.pc = pc + 1
                issued += 1
                if was_stub:
                    n_stub += 1
                if chk_fires:
                    stats.chk_fired += 1
                    self._on_chk_fired(d[13], now)
                    thread.stall_until = now + config.chk_flush_penalty
                    thread.wake = thread.stall_until
                    break
                stats.chk_ignored += 1
                continue

            if kind == K_RFI:
                if not rfi_stack:
                    raise ExecutionError(
                        f"rfi with no pending recovery at pc {pc}")
                state.pc = rfi_stack.pop()
                issued += 1
                n_stub += 1
                continue  # rfi does not end the fetch group

            if kind == K_SPAWN:
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                self._spawn(thread, d[11], now)
                continue

            if kind == K_LIBST:
                state.lib_out[d[5]] = rd.get(d[3], 0)
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                continue

            if kind == K_LIBLD:
                dest = d[2]
                rd[dest] = state.lib_in[d[5]]
                state.pc = pc + 1
                issued += 1
                if rfi_stack:
                    n_stub += 1
                t = now + d[9]
                ready[dest] = t
                if t > bound:
                    bound = t
                levels[dest] = None
                continue

            if kind == K_KILL or kind == K_HALT:
                if kind == K_KILL:
                    state.killed = True
                else:
                    state.halted = True
                issued += 1
                if rfi_stack:
                    n_stub += 1
                break

            # K_NOP
            state.pc = pc + 1
            issued += 1
            if rfi_stack:
                n_stub += 1
            continue

        if issued and thread.wake <= now \
                and not (state.halted or state.killed):
            thread.wake = now + 1
        thread.ready_bound = bound
        res.int_ = res_int
        res.mem = res_mem
        res.br = res_br
        if issued:
            if is_main:
                stats.main_instructions += issued
                if n_stub:
                    stats.main_stub_instructions += n_stub
            else:
                stats.spec_instructions += issued
                thread.spec_issued = spec_base + issued
        return issued

    def _main_category_fast(self, main: HWThread, issued_main: int,
                            now: int) -> str:
        """Decoded-reads twin of :meth:`_main_category`."""
        misses = self._main_misses
        while misses and misses[0] <= now:
            heapq.heappop(misses)
        if issued_main > 0:
            return "CacheExec" if misses else "Exec"
        ms = main.state
        if ms.halted or ms.killed:
            return "Other"
        if main.stall_until > now:
            return "Other"  # flush/redirect bubble
        ready = main.reg_ready
        worst_cycle, worst_reg = 0, None
        for reg in self._dreads[ms.pc]:
            t = ready.get(reg, 0)
            if t > worst_cycle:
                worst_cycle, worst_reg = t, reg
        if worst_cycle > now:
            level = main.reg_level.get(worst_reg)
            if level == L1:
                return "Exec"  # short L1-hit interlock
            if level in STALL_CATEGORY:
                return STALL_CATEGORY[level]
            return "Other"
        return "Other"  # lost fetch slots to other threads, etc.

    def _run_fast(self, checkpoint_every: Optional[int] = None,
                  on_checkpoint=None,
                  until_cycle: Optional[int] = None) -> SimStats:
        """Pre-decoded run loop: same cycle structure as
        :meth:`_run_legacy` (one iteration per non-skipped cycle, so _rr
        and all snapshot state evolve identically) with hoisted locals,
        precomputed slot orders, a fused reap-and-liveness pass, inline
        scoreboard checks over decoded read sets, and inline Figure 10
        accounting on the issuing path.
        """
        config = self.config
        if not self._started:
            self._begin()
        main = self.contexts[0]
        main_state = main.state
        stats = self.stats
        now = self._now
        next_checkpoint = None
        if on_checkpoint is not None and checkpoint_every:
            next_checkpoint = now + checkpoint_every

        dreads = self._dreads
        contexts = self.contexts
        slot_orders = self._slot_orders
        breakdown = stats.cycle_breakdown
        main_misses = self._main_misses
        heappop = heapq.heappop
        n_ctx = config.hardware_contexts
        max_threads = config.max_threads_per_cycle
        issue_width = config.issue_width
        bundle_size = config.bundle_size
        max_cycles = self.max_cycles
        cycle_budget = config.spec_cycle_budget
        memory_ports = config.memory_ports
        int_units = config.int_units
        branch_units = config.branch_units
        res = _Resources(config)
        rr = self._rr
        prof_next = self._prof_next
        issue = self._issue_thread_fast
        deadlines = self._spec_deadlines
        # Force a full reap pass on the first iteration: a restored
        # snapshot (or a resumed run) may hold dead-but-unreaped
        # contexts.
        reap_due = True

        while not (main_state.halted or main_state.killed):
            if until_cycle is not None and now >= until_cycle:
                break
            if next_checkpoint is not None and now >= next_checkpoint:
                self._now = now
                self._rr = rr
                on_checkpoint(self)
                while next_checkpoint <= now:
                    next_checkpoint += checkpoint_every
            if now >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles")
            prof = None
            if now >= prof_next:
                prof = self._profiler
                t_prof = prof.begin(now)

            # Reap finished speculative threads and wake parked spawners.
            # The slot walk only runs when a context can actually have
            # died: an issue-side death last cycle (reap_due) or an
            # expired cycle-budget deadline; otherwise liveness comes
            # from the running _live_spec count.
            if reap_due or (deadlines and deadlines[0] <= now):
                reap_due = False
                while deadlines and deadlines[0] <= now:
                    heappop(deadlines)
                have_spec = False
                for slot in range(1, n_ctx):
                    ctx = contexts[slot]
                    if ctx is None:
                        continue
                    cs = ctx.state
                    cs_done = cs.halted or cs.killed
                    if cycle_budget and not cs_done \
                            and now - ctx.spawn_cycle >= cycle_budget:
                        cs.killed = True
                        stats.budget_kills += 1
                        cs_done = True
                    if cs_done:
                        contexts[slot] = None
                        self._live_spec -= 1
                        stats.threads_completed += 1
                        self._on_reap(slot, now)
                        if self._context_waiters:
                            for waiter in self._context_waiters:
                                ws = waiter.state
                                if not (ws.halted or ws.killed):
                                    waiter.wake = now
                            self._context_waiters = []
                    else:
                        have_spec = True
            else:
                have_spec = self._live_spec != 0
            if prof is not None:
                t_prof = prof.lap("reap", t_prof)

            # Select up to two issuable threads (main has fetch priority;
            # speculative contexts round-robin the remaining slot).
            cand0 = cand1 = None
            if have_spec:
                for slot in slot_orders[rr]:
                    ctx = contexts[slot]
                    if ctx is None:
                        continue
                    cs = ctx.state
                    if cs.halted or cs.killed or ctx.stall_until > now \
                            or ctx.wake > now:
                        continue
                    if ctx.ready_bound > now:
                        ready = ctx.reg_ready
                        blocked = False
                        for reg in dreads[cs.pc]:
                            if ready.get(reg, 0) > now:
                                blocked = True
                                break
                        if blocked:
                            continue
                    if cand0 is None:
                        cand0 = ctx
                        if max_threads == 1:
                            break
                    else:
                        cand1 = ctx
                        if max_threads == 2:
                            break
            elif main.stall_until <= now and main.wake <= now:
                if main.ready_bound <= now:
                    cand0 = main
                else:
                    ready = main.reg_ready
                    for reg in dreads[main_state.pc]:
                        if ready.get(reg, 0) > now:
                            break
                    else:
                        cand0 = main
            rr = rr % (n_ctx - 1) + 1
            if prof is not None:
                t_prof = prof.lap("select", t_prof)

            issued_main = 0
            if cand0 is not None:
                res.mem = memory_ports
                res.int_ = int_units
                res.br = branch_units
                if cand1 is None:
                    n = issue(cand0, issue_width, now, res)
                    if cand0 is main:
                        issued_main = n
                else:
                    n = issue(cand0, bundle_size, now, res)
                    if cand0 is main:
                        issued_main = n
                    n = issue(cand1, bundle_size, now, res)
                    if cand1 is main:
                        issued_main = n
                if ((cand0 is not main
                     and (cand0.state.halted or cand0.state.killed))
                        or (cand1 is not None and cand1 is not main
                            and (cand1.state.halted
                                 or cand1.state.killed))):
                    reap_due = True
            if prof is not None:
                t_prof = prof.lap("issue", t_prof)

            if issued_main:
                # Inline _main_category_fast's issuing arm (the common
                # case): drain expired misses, charge CacheExec/Exec.
                while main_misses and main_misses[0] <= now:
                    heappop(main_misses)
                breakdown["CacheExec" if main_misses else "Exec"] += 1
            else:
                breakdown[self._main_category_fast(main, 0, now)] += 1
            if prof is not None:
                prof.lap("account", t_prof)
                self._prof_next = prof_next = prof.sample(
                    now, stats, issued_main, cand0 is None)
            if main_state.halted or main_state.killed:
                now += 1
                break

            if cand0 is not None:
                now += 1
                continue

            # Nothing issuable: skip to the earliest wake-up.
            wake = _FAR_FUTURE
            for ctx in contexts:
                if ctx is None:
                    continue
                cs = ctx.state
                if cs.halted or cs.killed:
                    continue
                w = ctx.stall_until
                if ctx.wake > w:
                    w = ctx.wake
                if ctx.ready_bound > now:
                    ready = ctx.reg_ready
                    worst = 0
                    for reg in dreads[cs.pc]:
                        t = ready.get(reg, 0)
                        if t > worst:
                            worst = t
                    if worst > now and worst > w:
                        w = worst
                if w < wake:
                    wake = w
            if wake == _FAR_FUTURE or wake <= now:
                wake = now + 1
            skip = wake - now - 1
            if skip > 0:
                breakdown[self._main_category_fast(main, 0, now)] += skip
            now = wake

        self._rr = rr
        self._now = now
        stats.cycles = now
        stats.mispredicts = self.predictor.mispredicts
        return stats

    # -- sampled-mode functional fast-forward -------------------------------------

    def fast_forward(self, max_instructions: int, cpi: float,
                     chain_rate: float = 0.0) -> int:
        """Skip ahead by functionally executing the main thread.

        The sampled mode (``repro.sim.sampling``) alternates detailed
        windows (:meth:`run` with ``until_cycle``) with these skips: up to
        ``max_instructions`` main-thread instructions execute
        architecturally (so memory contents — and therefore every later
        detailed window — stay exact) while the cache hierarchy is warmed
        with attribution recording off and the clock advances by
        ``round(n * cpi)`` cycles.  Speculative contexts are *paused*,
        not dropped: their timing state is re-based to the post-skip
        clock so the next detailed window starts with the spawn chains
        (and therefore the SSP steady state) intact — killing them made
        every window pay a full re-ramp and biased sampled CPI toward
        the unadapted binary's.  Returns the cycles advanced; the caller
        charges them to Figure-10 categories pro rata to the last window.
        """
        if not self._started:
            self._begin()
        contexts = self.contexts
        main = contexts[0]
        state = main.state
        if max_instructions <= 0 or state.halted or state.killed:
            return 0
        dcode = self._dcode
        program = self.program
        heap = self.heap
        memory = self.memory
        stats = self.stats
        spawning = self.spawning
        clock = float(self._now)
        n = 0
        memory.recording = False
        try:
            while n < max_instructions \
                    and not (state.halted or state.killed):
                d = dcode[state.pc]
                in_stub = bool(state.rfi_stack)
                if d[0] == K_CHK and spawning:
                    # Warm the stub's spawns on a scratch clone; the main
                    # thread itself steps with chk_fires=False so its
                    # instruction stream matches the detailed model's
                    # common (no-free-context) case.
                    warm_chk(program, heap, memory, dcode, state,
                             d[11], int(clock))
                result = step_decoded(program, heap, state, d, False)
                n += 1
                clock += cpi
                stats.main_instructions += 1
                if in_stub:
                    stats.main_stub_instructions += 1
                addr = result[0]
                if addr is not None:
                    kind = d[0]
                    if kind == K_LD:
                        memory.access(addr, int(clock), d[13], True)
                    elif kind == K_ST:
                        memory.access(addr, int(clock), d[13], True,
                                      is_store=True)
                    else:
                        memory.access(addr, int(clock), d[13], True,
                                      is_prefetch=True)
                elif result[2] is not None and self.spawning:
                    # Warm the spawned p-slice functionally so the cache
                    # keeps its SSP-accelerated contents across the skip.
                    warm_slice(program, heap, memory, dcode, state,
                               result[2], int(clock))
        finally:
            memory.recording = True
        advanced = int(round(n * cpi))
        if n and advanced <= 0:
            advanced = 1
        now = self._now + advanced
        self._now = now
        stats.cycles = now
        main.stall_until = now
        main.wake = now
        main.spawn_parked_pc = None
        main.reg_ready.clear()
        main.ready_bound = 0
        main.reg_level.clear()
        self._main_misses = []
        # Re-base every live speculative context to the post-skip clock:
        # their own clocks were stopped during the skip, so pending
        # scoreboard times and the spawn-cycle budget anchor would
        # otherwise be thousands of cycles stale (an instant budget
        # kill).  Dead-but-unreaped contexts are left for the run loop's
        # first-iteration reap pass.
        budget = self.config.spec_cycle_budget
        self._spec_deadlines = deadlines = []
        live = 0
        # A chaining workload's prefetch frontier keeps station on the
        # main thread in the detailed model; advance each paused chain
        # functionally at the pace the last detailed window measured
        # (``chain_rate`` slices per retired main instruction) before
        # re-basing whatever survives to the post-skip clock.
        live_slots = [slot
                      for slot in range(1, self.config.hardware_contexts)
                      if contexts[slot] is not None
                      and not contexts[slot].state.done]
        total_links = int(n * chain_rate) if spawning else 0
        max_links = -(-total_links // len(live_slots)) if live_slots else 0
        memory.recording = False
        try:
            for slot in live_slots:
                ctx = contexts[slot]
                survivor, done = advance_chain(
                    program, heap, memory, dcode, ctx.state, max_links,
                    now)
                stats.threads_completed += done
                if survivor is None:
                    contexts[slot] = None
                    continue
                if survivor is not ctx.state:
                    survivor.tid = self._next_tid
                    self._next_tid += 1
                    ctx.state = survivor
                    ctx.spec_issued = 0
                live += 1
                ctx.stall_until = now
                ctx.wake = now
                ctx.spawn_parked_pc = None
                ctx.spawn_cycle = now
                ctx.reg_ready.clear()
                ctx.ready_bound = 0
                ctx.reg_level.clear()
                if budget:
                    deadlines.append(now + budget)
        finally:
            memory.recording = True
        self._live_spec = live
        heapq.heapify(deadlines)
        return advanced
