"""Machine configuration — the research Itanium models of Table 1.

Two presets are provided: :func:`inorder_config` (12-stage pipeline,
16-bundle expansion queue) and :func:`ooo_config` (16-stage pipeline,
255-entry ROB, 18-entry reservation station).  Everything else — SMT with 4
hardware thread contexts, fetch/issue of 2 bundles from one thread or 1
bundle each from two threads, 4 int / 2 FP / 3 branch units and 2 memory
ports, the 16K/256K/3M cache hierarchy with 64-byte lines, the 16-entry fill
buffer, 230-cycle memory and 30-cycle TLB miss — is common to both models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"cache geometry gives non-power-of-2 sets: {sets}")
        return sets


@dataclass(frozen=True)
class MachineConfig:
    """Full machine model parameters (Table 1)."""

    name: str = "in-order"
    out_of_order: bool = False

    # Threading / pipeline.
    hardware_contexts: int = 4
    pipeline_stages: int = 12
    bundle_size: int = 3
    #: Max bundles fetched+issued per cycle: 2 from one thread, or 1 each
    #: from two threads.
    bundles_per_cycle: int = 2
    max_threads_per_cycle: int = 2

    # OOO structures (ignored by the in-order model).
    rob_entries: int = 255
    rs_entries: int = 18
    #: In-order per-thread expansion queue (bundles).
    expansion_queue_bundles: int = 16

    # Function units.
    int_units: int = 4
    fp_units: int = 2
    branch_units: int = 3
    memory_ports: int = 2

    # Branch prediction.
    gshare_entries: int = 2048
    btb_entries: int = 256
    btb_ways: int = 4

    # Memory hierarchy.
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(16 * 1024, 4, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 4, 14))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(3072 * 1024, 12, 30))
    memory_latency: int = 230
    fill_buffer_entries: int = 16
    tlb_entries: int = 128
    tlb_page_bytes: int = 8192
    tlb_miss_penalty: int = 30

    # SSP support costs.  Spawning uses the lightweight exception-recovery
    # mechanism: a firing chk.c flushes the pipeline like an exception
    # (Section 4.4.1), and a spawned thread needs a few cycles before its
    # first fetch (context allocation + start-address transfer).
    chk_flush_penalty: int = 12
    spawn_startup_latency: int = 4

    # Runaway-slice containment: hard budgets for *speculative* contexts.
    # A speculative thread that issues more than spec_instruction_budget
    # instructions, or occupies its context longer than spec_cycle_budget
    # cycles, is killed (counted in SimStats.budget_kills) — a buggy
    # chaining slice cannot spin forever.  The main thread is never
    # budgeted.  0 disables a budget.
    spec_instruction_budget: int = 1_000_000
    spec_cycle_budget: int = 0

    # Experiment knobs (Figure 2): a perfect memory subsystem, or perfect
    # behaviour for a designated set of delinquent loads.
    perfect_memory: bool = False
    perfect_load_uids: FrozenSet[int] = frozenset()

    # Section 4.4.1's future-work extension, implemented: "future dynamic
    # optimizers can monitor the coverage and timeliness data associated
    # with a prefetching thread and if the thread does not help reduce
    # latency, future chk.c instructions for that thread will return no
    # available context."  When enabled, a trigger whose speculative
    # threads are not producing useful (partial-hit) prefetches is
    # suppressed after a sampling period.
    dynamic_chk_throttle: bool = False
    #: Fires sampled before a throttling decision.
    throttle_sample_fires: int = 8
    #: Minimum main-thread partial hits per fire to keep a trigger alive.
    throttle_min_benefit: float = 0.5

    @property
    def issue_width(self) -> int:
        """Peak instructions issued per cycle (bundles * bundle size)."""
        return self.bundles_per_cycle * self.bundle_size

    @property
    def mispredict_penalty(self) -> int:
        """Front-end refill cost of a branch misprediction."""
        return self.pipeline_stages

    def with_perfect_memory(self) -> "MachineConfig":
        return replace(self, perfect_memory=True,
                       name=self.name + "+perfect-mem")

    def with_perfect_loads(self, uids) -> "MachineConfig":
        return replace(self, perfect_load_uids=frozenset(uids),
                       name=self.name + "+perfect-dloads")


def inorder_config() -> MachineConfig:
    """The baseline in-order research Itanium model (12-stage)."""
    return MachineConfig(name="in-order", out_of_order=False,
                         pipeline_stages=12)


def ooo_config() -> MachineConfig:
    """The out-of-order research model: 4 extra front-end stages, 255-entry
    ROB, 18-entry reservation station."""
    return MachineConfig(name="ooo", out_of_order=True, pipeline_stages=16,
                         chk_flush_penalty=16)


def table1_rows():
    """The Table 1 parameter listing, as (parameter, value) rows."""
    cfg = inorder_config()
    ooo = ooo_config()
    return [
        ("Threading", f"SMT processor with {cfg.hardware_contexts} hardware "
                      "thread contexts"),
        ("Pipelining", f"In-order: {cfg.pipeline_stages}-stage pipeline. "
                       f"OOO: {ooo.pipeline_stages}-stage pipeline."),
        ("Fetch per cycle", "2 bundles from 1 thread or 1 bundle each from "
                            "2 threads"),
        ("Branch predict.", f"{cfg.gshare_entries}-entry GSHARE. "
                            f"{cfg.btb_entries}-entry {cfg.btb_ways}-way "
                            "associative BTB."),
        ("Issue per cycle", "2 bundles from 1 thread or 1 bundle each from "
                            "2 threads"),
        ("Function units", f"{cfg.int_units} int. units, {cfg.fp_units} FP "
                           f"units, {cfg.branch_units} branch units, "
                           f"{cfg.memory_ports} memory port"),
        ("OOO structures", f"{ooo.rob_entries}-entry reorder buffer, "
                           f"{ooo.rs_entries}-entry reservation station"),
        ("L1", f"{cfg.l1.size_bytes // 1024}KB, {cfg.l1.ways}-way, "
               f"{cfg.l1.latency}-cycle latency"),
        ("L2", f"{cfg.l2.size_bytes // 1024}KB, {cfg.l2.ways}-way, "
               f"{cfg.l2.latency}-cycle latency"),
        ("L3", f"{cfg.l3.size_bytes // 1024}KB, {cfg.l3.ways}-way, "
               f"{cfg.l3.latency}-cycle latency"),
        ("Fill buffer", f"{cfg.fill_buffer_entries} entries"),
        ("Line size", f"{cfg.l1.line_bytes} bytes (all caches)"),
        ("Memory", f"{cfg.memory_latency}-cycle latency"),
        ("TLB", f"miss penalty {cfg.tlb_miss_penalty} cycles"),
    ]
