"""Simulation statistics and the Figure 9 / Figure 10 taxonomies.

Figure 10 partitions the main thread's cycles into six categories:

* ``L3``, ``L2``, ``L1`` — stall cycles (no instruction issued) waiting on
  an access that missed in that cache: an access served by memory missed in
  L3 and accrues **L3** miss cycles; served by L3 → **L2**; served by L2 →
  **L1**.
* ``CacheExec`` — cycles in which the main thread issued instructions while
  a cache miss was outstanding ("cache hierarchy and instruction issue are
  both active").
* ``Exec`` — issue cycles with no outstanding miss.
* ``Other`` — everything else (branch misprediction bubbles, chk.c/spawn
  pipeline flushes, SMT fetch contention).

Figure 9 classifies each delinquent-load L1 miss by the level that supplied
it — L2/L3/memory hit, or the *partial* variants when the line was already
in transit to L1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .caches import L1, L2, L3, MEM, LoadStats, MemorySystem, PrefetchStats

CYCLE_CATEGORIES = ("L3", "L2", "L1", "CacheExec", "Exec", "Other")

#: Scalar counters serialised verbatim by :meth:`SimStats.to_dict`.
_SCALAR_FIELDS = (
    "cycles", "main_instructions", "main_stub_instructions",
    "spec_instructions",
    "chk_fired", "chk_ignored", "spawns", "spawn_failures", "spawn_waits",
    "threads_completed", "mispredicts", "budget_kills",
)

#: Memory-system counters carried through serialisation (cache/TLB *state*
#: is not — a deserialised run can report statistics but not be resumed).
_MEMORY_FIELDS = ("tlb_misses", "prefetches_issued", "prefetches_dropped")

#: Stall category charged when waiting on data supplied by a given level
#: (the level it *missed* in is one closer to the core).
STALL_CATEGORY = {MEM: "L3", L3: "L2", L2: "L1"}


class SimStats:
    """Aggregate results of one simulation run."""

    def __init__(self, memory: MemorySystem):
        self.memory = memory
        self.cycles = 0
        self.main_instructions = 0
        #: Main-thread instructions retired inside recovery stubs (between
        #: a fired ``chk.c`` and its ``rfi``) — adaptation overhead; the
        #: differential oracle compares ``main_instructions`` net of these.
        self.main_stub_instructions = 0
        self.spec_instructions = 0
        self.cycle_breakdown: Dict[str, int] = {
            cat: 0 for cat in CYCLE_CATEGORIES}
        self.chk_fired = 0
        self.chk_ignored = 0
        self.spawns = 0
        self.spawn_failures = 0
        #: Cycles-worth of deferred chaining spawns (waiting for a context).
        self.spawn_waits = 0
        self.threads_completed = 0
        self.mispredicts = 0
        #: Speculative threads killed by the runaway-slice containment
        #: budgets (spec_instruction_budget / spec_cycle_budget).
        self.budget_kills = 0

    # -- derived metrics ---------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.main_instructions / self.cycles if self.cycles else 0.0

    def charge(self, category: str, cycles: int = 1) -> None:
        self.cycle_breakdown[category] += cycles

    def charge_proportional(self, weights: Dict[str, int],
                            cycles: int) -> None:
        """Charge ``cycles`` across categories pro rata to ``weights``.

        The sampled mode uses this to attribute fast-forwarded cycles to
        Figure 10 categories in proportion to the last detailed window's
        breakdown.  Apportionment is largest-remainder so the charges sum
        to exactly ``cycles`` (ties broken by fraction, then by category
        order), keeping the invariant ``sum(cycle_breakdown) == cycles``
        intact.  With no weights (an empty or all-zero window) everything
        lands in ``Other``.
        """
        if cycles <= 0:
            return
        total = sum(weights.get(cat, 0) for cat in CYCLE_CATEGORIES)
        if total <= 0:
            self.cycle_breakdown["Other"] += cycles
            return
        shares = []
        assigned = 0
        for index, cat in enumerate(CYCLE_CATEGORIES):
            exact = cycles * weights.get(cat, 0) / total
            base = int(exact)
            assigned += base
            shares.append((-(exact - base), index, cat, base))
        shares.sort()
        leftover = cycles - assigned
        for slot, (_, _, cat, base) in enumerate(shares):
            self.cycle_breakdown[cat] += base + (1 if slot < leftover else 0)

    def breakdown_fractions(self) -> Dict[str, float]:
        total = sum(self.cycle_breakdown.values()) or 1
        return {cat: count / total
                for cat, count in self.cycle_breakdown.items()}

    # -- Figure 9 ------------------------------------------------------------------

    def delinquent_breakdown(self, uids: Iterable[int]) -> Dict[str, float]:
        """Where the given loads were satisfied when missing in L1.

        Returns fractions of *all accesses* per category (so the categories
        sum to the L1 miss rate, matching "height of a bar is those loads'
        miss rate" in Figure 9), with keys ``L2 Hit``, ``Partial L2 Hit``,
        ``L3 Hit``, ``Partial L3 Hit``, ``Mem Hit``, ``Partial Mem Hit``.
        """
        accesses = 0
        hit = {L2: 0, L3: 0, MEM: 0}
        partial = {L2: 0, L3: 0, MEM: 0}
        for uid in uids:
            stats = self.memory.load_stats.get(uid)
            if stats is None:
                continue
            accesses += stats.accesses
            for lvl in (L2, L3, MEM):
                hit[lvl] += stats.hits[lvl]
                partial[lvl] += stats.partials[lvl]
        if accesses == 0:
            return {}
        out: Dict[str, float] = {}
        for lvl, label in ((L2, "L2"), (L3, "L3"), (MEM, "Mem")):
            out[f"{label} Hit"] = hit[lvl] / accesses
            out[f"Partial {label} Hit"] = partial[lvl] / accesses
        out["miss rate"] = sum(hit.values()) / accesses + \
            sum(partial.values()) / accesses
        return out

    def load_miss_cycles(self, uid: int) -> int:
        stats = self.memory.load_stats.get(uid)
        return stats.miss_cycles if stats else 0

    def total_miss_cycles(self) -> int:
        return sum(s.miss_cycles for s in self.memory.load_stats.values())

    def top_loads_by_miss_cycles(self, limit: Optional[int] = None
                                 ) -> List[int]:
        """Static load uids ordered by decreasing miss cycles."""
        ranked = sorted(self.memory.load_stats.items(),
                        key=lambda kv: kv[1].miss_cycles, reverse=True)
        uids = [uid for uid, s in ranked if s.miss_cycles > 0]
        return uids[:limit] if limit is not None else uids

    # -- prefetch effectiveness ------------------------------------------------------

    def prefetch_metrics(self, uids: Optional[Iterable[int]] = None
                         ) -> Dict[int, Dict[str, float]]:
        """Per-target-load prefetch **coverage / accuracy / timeliness**.

        For each load uid (default: every load some prefetch targets, per
        the emitter's ``prefetch_sources`` mapping):

        * ``coverage`` — fraction of the load's would-be L1 misses served
          off a prefetched line (timely L1 hits count as would-be misses);
        * ``accuracy`` — fraction of the prefetches issued *for this load*
          whose line the main thread actually consumed;
        * ``timeliness`` — fraction of the covered accesses where the
          prefetch fully hid the miss (L1 hit rather than partial hit).
        """
        mem = self.memory
        issued: Dict[int, int] = {}
        useful: Dict[int, int] = {}
        for pf_uid, pstats in mem.prefetch_stats.items():
            target = mem.prefetch_sources.get(pf_uid)
            if target is None:
                continue
            issued[target] = issued.get(target, 0) + pstats.issued
            useful[target] = useful.get(target, 0) + pstats.useful
        if uids is None:
            uids = sorted(issued)
        out: Dict[int, Dict[str, float]] = {}
        for uid in uids:
            ls = mem.load_stats.get(uid)
            timely = ls.prefetch_timely if ls else 0
            late = ls.prefetch_late if ls else 0
            covered = timely + late
            l1_misses = ls.l1_misses if ls else 0
            # Timely-covered accesses *are* L1 hits; add them back so
            # coverage is measured against what would have missed.
            would_miss = l1_misses + timely
            n_issued = issued.get(uid, 0)
            n_useful = useful.get(uid, 0)
            out[uid] = {
                "accesses": ls.accesses if ls else 0,
                "l1_misses": l1_misses,
                "prefetches_issued": n_issued,
                "prefetches_useful": n_useful,
                "covered_timely": timely,
                "covered_late": late,
                "coverage": covered / would_miss if would_miss else 0.0,
                "accuracy": n_useful / n_issued if n_issued else 0.0,
                "timeliness": timely / covered if covered else 0.0,
            }
        return out

    def equal_to(self, other: "SimStats") -> bool:
        """Exact statistical equality (every serialised counter matches).

        This is the resume contract: a run killed mid-simulation and
        resumed from its last checkpoint must produce statistics
        ``equal_to`` those of an uninterrupted run.
        """
        return self.to_dict() == other.to_dict()

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe snapshot of every reported statistic.

        The snapshot carries the per-static-load counters, so the Figure 9
        (:meth:`delinquent_breakdown`) and Figure 10 (:attr:`cycle_breakdown`)
        queries all work on a :meth:`from_dict` reconstruction; live cache
        contents are deliberately dropped.
        """
        out: Dict = {"format": 1}
        for name in _SCALAR_FIELDS:
            out[name] = getattr(self, name)
        out["cycle_breakdown"] = dict(self.cycle_breakdown)
        mem = self.memory
        out["memory"] = {
            "load_stats": {
                str(uid): {
                    "accesses": ls.accesses,
                    "hits": dict(ls.hits),
                    "partials": dict(ls.partials),
                    "miss_cycles": ls.miss_cycles,
                    "prefetch_timely": ls.prefetch_timely,
                    "prefetch_late": ls.prefetch_late,
                } for uid, ls in sorted(mem.load_stats.items())},
            "level_counts": dict(mem.level_counts),
            "partial_counts": dict(mem.partial_counts),
            "prefetch_stats": {
                str(uid): {"issued": ps.issued, "useful": ps.useful}
                for uid, ps in sorted(mem.prefetch_stats.items())},
            "prefetch_sources": {
                str(uid): target
                for uid, target in sorted(mem.prefetch_sources.items())},
        }
        for name in _MEMORY_FIELDS:
            out["memory"][name] = getattr(mem, name)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        """Rebuild a statistics object produced by :meth:`to_dict`.

        The attached memory system is a fresh (default-configured) one
        holding only the recorded counters — enough for every reporting
        query, not for further simulation.
        """
        from .config import MachineConfig

        stats = cls(MemorySystem(MachineConfig()))
        for name in _SCALAR_FIELDS:
            # .get: snapshots from before a counter existed read as 0.
            setattr(stats, name, data.get(name, 0))
        stats.cycle_breakdown = {cat: data["cycle_breakdown"].get(cat, 0)
                                 for cat in CYCLE_CATEGORIES}
        mem_data = data["memory"]
        mem = stats.memory
        for uid_str, ls_data in mem_data["load_stats"].items():
            ls = LoadStats()
            ls.accesses = ls_data["accesses"]
            ls.hits.update(ls_data["hits"])
            ls.partials.update(ls_data["partials"])
            ls.miss_cycles = ls_data["miss_cycles"]
            ls.prefetch_timely = ls_data.get("prefetch_timely", 0)
            ls.prefetch_late = ls_data.get("prefetch_late", 0)
            mem.load_stats[int(uid_str)] = ls
        mem.level_counts.update(mem_data["level_counts"])
        mem.partial_counts.update(mem_data["partial_counts"])
        for uid_str, ps_data in mem_data.get("prefetch_stats", {}).items():
            ps = PrefetchStats()
            ps.issued = ps_data["issued"]
            ps.useful = ps_data["useful"]
            mem.prefetch_stats[int(uid_str)] = ps
        mem.prefetch_sources.update(
            {int(uid_str): target for uid_str, target in
             mem_data.get("prefetch_sources", {}).items()})
        for name in _MEMORY_FIELDS:
            setattr(mem, name, mem_data[name])
        return stats

    def summary(self) -> str:  # pragma: no cover - reporting convenience
        lines = [
            f"cycles:             {self.cycles}",
            f"main instructions:  {self.main_instructions} "
            f"(IPC {self.ipc:.3f})",
            f"spec instructions:  {self.spec_instructions}",
            f"chk.c fired/ignored:{self.chk_fired}/{self.chk_ignored}",
            f"spawns (failed):    {self.spawns} ({self.spawn_failures})",
            f"mispredicts:        {self.mispredicts}",
            "cycle breakdown:    " + ", ".join(
                f"{cat}={count}" for cat, count in
                self.cycle_breakdown.items() if count),
        ]
        return "\n".join(lines)
