"""Cache hierarchy, fill buffer and TLB timing model.

Implements the Table 1 memory subsystem: inclusive L1/L2/L3 with true-LRU
sets and 64-byte lines, a 16-entry fill buffer bounding outstanding L1
misses, a 128-entry TLB with a 30-cycle miss penalty, and 230-cycle memory.

Lines being filled are tracked in an *in-transit* table so that a second
access to a line already on its way to L1 completes when the fill does — a
**partial miss** in the paper's Figure 9 terminology ("accesses to cache
lines which were already in transit to L1 cache due to accesses by prior
loads from the main thread or from a prefetch").  This is the mechanism by
which a speculative thread's prefetch shortens (or fully hides) the main
thread's miss.

Per-static-load statistics are gathered for main-thread accesses; they are
both the cache profile the post-pass tool consumes (Section 3.1: "the tool
employs cache profile data from the simulator") and the Figure 9/10 data.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from .config import CacheConfig, MachineConfig

#: Hierarchy level labels, outermost last.
L1, L2, L3, MEM = "L1", "L2", "L3", "MEM"
LEVELS = (L1, L2, L3, MEM)


class AccessResult:
    """Outcome of one memory access."""

    __slots__ = ("ready", "level", "partial")

    def __init__(self, ready: int, level: str, partial: bool = False):
        #: Cycle at which the value is available to dependent instructions.
        self.ready = ready
        #: Hierarchy level that supplied the data (fill origin for partials).
        self.level = level
        #: True if the line was already in transit to L1 (Figure 9 partial).
        self.partial = partial

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = " partial" if self.partial else ""
        return f"AccessResult(ready={self.ready}, {self.level}{p})"


class CacheLevel:
    """One set-associative cache level with true LRU replacement."""

    def __init__(self, cfg: CacheConfig):
        self.cfg = cfg
        self.num_sets = cfg.num_sets
        self.ways = cfg.ways
        self.latency = cfg.latency
        # set index -> {line: None}, LRU first by dict insertion order.
        # Sets materialise on first touch, so constructing a simulator
        # does not allocate one container per set (the L2/L3 set counts
        # made that allocation cost more than a tiny-scale run), and the
        # hit path stays O(1) instead of an O(ways) list scan.
        self._sets: Dict[int, Dict[int, None]] = {}

    def lookup(self, line: int) -> bool:
        """True on hit; touches LRU state."""
        s = self._sets.get(line & (self.num_sets - 1))
        if s is not None and line in s:
            del s[line]
            s[line] = None
            return True
        return False

    def insert(self, line: int) -> Optional[int]:
        """Insert ``line``; returns the evicted line, if any."""
        idx = line & (self.num_sets - 1)
        s = self._sets.get(idx)
        if s is None:
            s = self._sets[idx] = {}
        elif line in s:
            del s[line]
            s[line] = None
            return None
        s[line] = None
        if len(s) > self.ways:
            victim = next(iter(s))
            del s[victim]
            return victim
        return None

    def contains(self, line: int) -> bool:
        """Non-touching presence check (for tests/introspection)."""
        s = self._sets.get(line & (self.num_sets - 1))
        return s is not None and line in s

    def flush(self) -> None:
        self._sets = {}


class LoadStats:
    """Counters for one static load (main-thread accesses only)."""

    __slots__ = ("accesses", "hits", "partials", "miss_cycles",
                 "prefetch_timely", "prefetch_late")

    def __init__(self):
        self.accesses = 0
        #: Hits per supplying level, e.g. hits["L2"] = demand L2 hits.
        self.hits = {lvl: 0 for lvl in LEVELS}
        #: Partial (in-transit) hits keyed by the fill's origin level.
        self.partials = {lvl: 0 for lvl in (L2, L3, MEM)}
        #: Total cycles of latency beyond an L1 hit.
        self.miss_cycles = 0
        #: Accesses that hit in L1 because a prefetch filled the line in
        #: time (the fully-hidden misses).
        self.prefetch_timely = 0
        #: Accesses served as partial hits off an in-flight prefetch (the
        #: prefetch helped but arrived late).
        self.prefetch_late = 0

    @property
    def l1_misses(self) -> int:
        return self.accesses - self.hits[L1]

    def miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0


class PrefetchStats:
    """Counters for one static prefetch instruction (``lfetch``)."""

    __slots__ = ("issued", "useful")

    def __init__(self):
        #: Prefetch accesses that reached the memory system.
        self.issued = 0
        #: Prefetches whose line was later consumed by a main-thread load
        #: (as an L1 hit or an in-transit partial hit).
        self.useful = 0


class MemorySystem:
    """The full memory hierarchy shared by all hardware thread contexts."""

    #: When False (functional warmup in sampled mode), accesses still
    #: mutate cache/TLB/transit state — keeping the hierarchy warm — but
    #: no statistics are recorded.  Class-level default so snapshots
    #: pickled before the flag existed restore to recording mode.
    recording = True

    def __init__(self, config: MachineConfig):
        self.config = config
        self.l1 = CacheLevel(config.l1)
        self.l2 = CacheLevel(config.l2)
        self.l3 = CacheLevel(config.l3)
        self._line_shift = config.l1.line_bytes.bit_length() - 1
        self._page_shift = config.tlb_page_bytes.bit_length() - 1
        # TLB: page number -> None, MRU-ordered by dict insertion (oldest
        # first).  A dict keeps the hit path O(1); the list MRU it
        # replaces cost an O(n) scan + remove per access.
        self._tlb: Dict[int, None] = {}
        self._tlb_entries = config.tlb_entries
        # line -> (fill completion cycle, origin level)
        self._in_transit: Dict[int, Tuple[int, str]] = {}
        # Outstanding fill completion cycles (fill buffer occupancy).
        self._fills: List[int] = []
        # Statistics.
        self.load_stats: Dict[int, LoadStats] = {}
        self.level_counts = {lvl: 0 for lvl in LEVELS}
        self.partial_counts = {lvl: 0 for lvl in (L2, L3, MEM)}
        self.tlb_misses = 0
        self.prefetches_issued = 0
        self.prefetches_dropped = 0
        # Prefetch attribution: per-static-lfetch counters, the lfetch ->
        # delinquent-load mapping (installed by the simulator from
        # ``Program.prefetch_sources``), and the lines currently credited
        # to an outstanding prefetch (line -> lfetch uid).
        self.prefetch_stats: Dict[int, PrefetchStats] = {}
        self.prefetch_sources: Dict[int, int] = {}
        self._prefetched_lines: Dict[int, int] = {}

    # -- helpers ---------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _tlb_access(self, addr: int) -> int:
        """Returns extra cycles for a TLB miss (0 on hit)."""
        page = addr >> self._page_shift
        tlb = self._tlb
        if page in tlb:
            del tlb[page]
            tlb[page] = None
            return 0
        tlb[page] = None
        if len(tlb) > self._tlb_entries:
            del tlb[next(iter(tlb))]
        if self.recording:
            self.tlb_misses += 1
        return self.config.tlb_miss_penalty

    def _fill_buffer_start(self, now: int) -> int:
        """Earliest cycle a new fill can start, honouring the 16 entries."""
        fills = self._fills
        while fills and fills[0] <= now:
            heapq.heappop(fills)
        if len(fills) >= self.config.fill_buffer_entries:
            return heapq.heappop(fills)
        return now

    # -- the access path --------------------------------------------------------

    def access(self, addr: int, now: int, uid: int, is_main: bool,
               is_prefetch: bool = False, is_store: bool = False) -> AccessResult:
        """Perform one data access at cycle ``now``.

        Returns when the value is ready and which level supplied it.  Main
        thread accesses are recorded in the per-static-load statistics;
        speculative-thread accesses (the prefetches) only mutate cache
        state.
        """
        cfg = self.config
        # An explicit lfetch — or a speculative thread's copy of a
        # delinquent load (mapped by the emitter) — acts as a prefetch for
        # its source load and is attributed as such.  Issue accounting
        # happens before the perfect-memory shortcut so the Figure 2
        # ablations report the same issue counts as the real hierarchy,
        # and the global counter agrees with the per-static totals.
        prefetching = is_prefetch or (not is_main and not is_store
                                      and uid in self.prefetch_sources)
        if prefetching and self.recording:
            self.prefetches_issued += 1
            pstats = self.prefetch_stats.get(uid)
            if pstats is None:
                pstats = self.prefetch_stats[uid] = PrefetchStats()
            pstats.issued += 1

        if cfg.perfect_memory or uid in cfg.perfect_load_uids:
            if not cfg.perfect_memory:
                # "Delinquent loads always hit in the L1 cache" (Figure 2):
                # the line is materialised instantly, so sibling loads of
                # the same line hit too — otherwise their misses would
                # simply migrate to the next load of the line.
                line = self.line_of(addr)
                self.l1.insert(line)
                self.l2.insert(line)
                self.l3.insert(line)
                self._in_transit.pop(line, None)
            result = AccessResult(now + cfg.l1.latency, L1)
            if is_main and not is_prefetch and not is_store:
                self._record(uid, result, now, self.line_of(addr))
            return result

        line = addr >> self._line_shift
        # TLB probe, inlined from :meth:`_tlb_access`: the access path is
        # the simulator's hottest shared code and the call overhead alone
        # was measurable at tiny scale.
        page = addr >> self._page_shift
        tlb = self._tlb
        if page in tlb:
            del tlb[page]
            tlb[page] = None
            start = now
        else:
            tlb[page] = None
            if len(tlb) > self._tlb_entries:
                del tlb[next(iter(tlb))]
            if self.recording:
                self.tlb_misses += 1
            start = now + cfg.tlb_miss_penalty

        transit = self._in_transit.get(line)
        if transit is not None:
            done, origin = transit
            if done > start:
                # Partial miss: the line is already on its way to L1.
                result = AccessResult(done, origin, partial=True)
                if is_main and not is_prefetch and not is_store:
                    self._record(uid, result, now, line)
                return result
            del self._in_transit[line]

        # L1 probe, inlined from :meth:`CacheLevel.lookup` (same MRU touch).
        l1 = self.l1
        s = l1._sets.get(line & (l1.num_sets - 1))
        if s is not None and line in s:
            del s[line]
            s[line] = None
            result = AccessResult(start + l1.latency, L1)
            if is_main and not is_prefetch and not is_store:
                self._record(uid, result, now, line)
            return result

        # L1 miss: the fill occupies a fill-buffer entry.
        start = self._fill_buffer_start(start)
        if self.l2.lookup(line):
            ready, origin = start + cfg.l2.latency, L2
        elif self.l3.lookup(line):
            ready, origin = start + cfg.l3.latency, L3
            self.l2.insert(line)
        else:
            ready, origin = start + cfg.memory_latency, MEM
            self.l3.insert(line)
            self.l2.insert(line)
        self.l1.insert(line)
        self._in_transit[line] = (ready, origin)
        heapq.heappush(self._fills, ready)
        if prefetching and self.recording:
            # Credit this line's next main-thread consumption to the
            # prefetch that started the fill.  Warmup installs no credit:
            # an uncounted issue must not later count as useful.
            self._prefetched_lines[line] = uid
        # A non-prefetching demand fill does *not* consume or drop the
        # credit: the first main-thread **load** touch is the sole
        # consumer (in :meth:`_record`, which also handles the
        # evicted-before-use case).  Popping here made a main-thread
        # store's demand fill silently discard a pending timely-prefetch
        # credit, deflating coverage for store-then-load patterns.

        result = AccessResult(ready, origin)
        if is_main and not is_prefetch and not is_store:
            self._record(uid, result, now, line)
        return result

    def _record(self, uid: int, result: AccessResult, now: int,
                line: int) -> None:
        if not self.recording:
            return
        stats = self.load_stats.get(uid)
        if stats is None:
            stats = self.load_stats[uid] = LoadStats()
        stats.accesses += 1
        if result.partial:
            stats.partials[result.level] += 1
            self.partial_counts[result.level] += 1
        else:
            stats.hits[result.level] += 1
            self.level_counts[result.level] += 1
        beyond_l1 = (result.ready - now) - self.config.l1.latency
        if result.level != L1 and beyond_l1 > 0:
            stats.miss_cycles += beyond_l1
        pf_uid = self._prefetched_lines.pop(line, None)
        if pf_uid is not None:
            # First main-thread touch of a prefetched line: a full L1 hit
            # means the prefetch was timely, a partial hit means it was
            # late but still shortened the miss.  A full (non-partial)
            # miss means the prefetched copy was evicted first — the
            # credit is dropped without counting the prefetch as useful.
            if result.partial:
                stats.prefetch_late += 1
            elif result.level == L1:
                stats.prefetch_timely += 1
            else:
                return
            pstats = self.prefetch_stats.get(pf_uid)
            if pstats is not None:
                pstats.useful += 1

    # -- inspection --------------------------------------------------------------

    def total_accesses(self) -> int:
        return (sum(self.level_counts.values())
                + sum(self.partial_counts.values()))

    def flush(self) -> None:
        """Cold caches/TLB, clear transit state (not statistics)."""
        self.l1.flush()
        self.l2.flush()
        self.l3.flush()
        self._tlb = {}
        self._in_transit = {}
        self._fills = []
        self._prefetched_lines = {}
