"""SMT research-Itanium timing simulator (the SMTSIM/IPFsim substitute)."""

from .config import (
    CacheConfig,
    MachineConfig,
    inorder_config,
    ooo_config,
    table1_rows,
)
from .caches import (
    AccessResult,
    CacheLevel,
    LoadStats,
    MemorySystem,
    PrefetchStats,
)
from .branch import GsharePredictor
from .stats import CYCLE_CATEGORIES, STALL_CATEGORY, SimStats
from .inorder import InOrderSimulator
from .ooo import OOOSimulator
from .machine import MODELS, make_config, make_simulator, simulate
from .trace import ContextTrace, TracingInOrderSimulator, trace_run

__all__ = [
    "CacheConfig", "MachineConfig", "inorder_config", "ooo_config",
    "table1_rows",
    "AccessResult", "CacheLevel", "LoadStats", "MemorySystem",
    "PrefetchStats",
    "GsharePredictor",
    "CYCLE_CATEGORIES", "STALL_CATEGORY", "SimStats",
    "InOrderSimulator", "OOOSimulator",
    "MODELS", "make_config", "make_simulator", "simulate",
    "ContextTrace", "TracingInOrderSimulator", "trace_run",
]
