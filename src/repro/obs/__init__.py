"""Unified observability layer: tracing, metrics, timeline export.

Zero-overhead-when-disabled instrumentation for the whole reproduction:

* :class:`~repro.obs.tracer.Tracer` — structured spans / events plus a
  counters-and-histograms registry (:data:`~repro.obs.tracer.NULL_TRACER`
  is the shared no-op used on disabled paths);
* pass-level spans around every post-pass stage, recorded by
  :class:`~repro.tool.postpass.SSPPostPassTool`;
* per-delinquent-load prefetch coverage / accuracy / timeliness from the
  simulator (:meth:`repro.sim.stats.SimStats.prefetch_metrics`);
* exporters — JSONL event log and Chrome trace-event JSON loadable in
  Perfetto, with simulator thread tracks derived from
  :class:`~repro.sim.trace.ContextTrace`;
* a metrics-document collector and the ``repro report`` renderer.
"""

from .tracer import (
    Counter,
    Histogram,
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
    ensure_tracer,
)
from .export import (
    JSONL_SCHEMA,
    SIM_PID,
    TOOL_PID,
    chrome_trace_events,
    jsonl_records,
    profiler_counter_events,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    METRICS_SCHEMA,
    collect_metrics,
    delinquent_rows,
    slice_rows,
)
from .profiler import (
    CycleProfiler,
    DEFAULT_INTERVAL,
    profile_run,
    render_profile,
)
from .fleet import (
    FLEET_SCHEMA,
    collect_fleet,
    fleet_summary_lines,
    render_fleet,
)
from .report import render_report

__all__ = [
    "Counter", "Histogram", "NullTracer", "NULL_TRACER", "Span", "Tracer",
    "ensure_tracer",
    "JSONL_SCHEMA", "SIM_PID", "TOOL_PID", "chrome_trace_events",
    "jsonl_records", "profiler_counter_events", "write_chrome_trace",
    "write_jsonl",
    "METRICS_SCHEMA", "collect_metrics", "delinquent_rows", "slice_rows",
    "CycleProfiler", "DEFAULT_INTERVAL", "profile_run", "render_profile",
    "FLEET_SCHEMA", "collect_fleet", "fleet_summary_lines", "render_fleet",
    "render_report",
]
