"""Structured event tracing: spans, instant events, counters, histograms.

The :class:`Tracer` is the single collection point of the observability
layer.  Code under observation holds a tracer reference and emits

* **spans** — named, wall-clocked intervals wrapping one pipeline pass
  (``with tracer.span("slicing") as span: ... span.set(loads=3)``),
* **events** — instant occurrences with arbitrary JSON-safe payloads,
* **counters** — monotonically accumulated integers,
* **histograms** — value distributions with summary statistics.

Everything is recorded against a wall-clock epoch taken at construction,
so exporters can lay spans out on a timeline without re-deriving offsets.

When observation is off, callers use :data:`NULL_TRACER` (via
:func:`ensure_tracer`): every method is a no-op returning shared inert
objects, so the disabled path costs one attribute lookup and one call —
no allocation, no branching on flags at every emission site.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """A named value distribution with summary statistics.

    The sorted view backing :meth:`percentile` is cached and invalidated
    by :meth:`observe`, so rendering a report (which asks for several
    percentiles per histogram) sorts each distribution at most once.
    """

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._values)

    def _ordered(self) -> List[float]:
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._values)
        return ordered

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]); 0.0 when empty."""
        if not self._values:
            return 0.0
        ordered = self._ordered()
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p90": 0.0}
        ordered = self._ordered()
        return {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
        }


class Span:
    """One named, wall-clocked interval (a pipeline pass, a simulation)."""

    __slots__ = ("name", "category", "start", "end", "metrics")

    def __init__(self, name: str, category: str, start: float,
                 metrics: Optional[Dict[str, Any]] = None):
        self.name = name
        self.category = category
        #: Seconds since the owning tracer's epoch.
        self.start = start
        self.end = start
        self.metrics: Dict[str, Any] = dict(metrics or {})

    def set(self, **metrics: Any) -> None:
        """Attach (or overwrite) metric values on this span."""
        self.metrics.update(metrics)

    @property
    def wall_time(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "end": self.end,
            "wall_time": self.wall_time,
            "metrics": dict(self.metrics),
        }


class _SpanContext:
    """Context manager closing a span on exit (exceptions included)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.end = self._tracer._now()
        self._tracer.spans.append(span)
        return False


class Tracer:
    """Collects spans, events, counters and histograms for one run."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._epoch

    # -- emission --------------------------------------------------------------------

    def span(self, name: str, category: str = "pass",
             **metrics: Any) -> _SpanContext:
        """Open a wall-clocked span; use as a context manager."""
        return _SpanContext(self, Span(name, category, self._now(), metrics))

    def event(self, name: str, category: str = "event",
              **args: Any) -> None:
        """Record an instant event at the current wall time."""
        self.events.append({"type": "event", "name": name, "cat": category,
                            "ts": self._now(), "args": args})

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    # -- snapshots -------------------------------------------------------------------

    def counters_snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms_snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: h.summary()
                for name, h in sorted(self._histograms.items())}

    def span_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]


class _NullSpan:
    """Inert span: accepts metrics, records nothing."""

    __slots__ = ()

    def set(self, **metrics: Any) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullCounter:
    __slots__ = ()

    def add(self, n: int = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()
_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class NullTracer:
    """The disabled tracer: every operation is a shared-object no-op."""

    enabled = False
    spans: List[Span] = []
    events: List[Dict[str, Any]] = []

    def span(self, name: str, category: str = "pass",
             **metrics: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, category: str = "event",
              **args: Any) -> None:
        pass

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counters_snapshot(self) -> Dict[str, int]:
        return {}

    def histograms_snapshot(self) -> Dict[str, Dict[str, float]]:
        return {}

    def span_dicts(self) -> List[Dict[str, Any]]:
        return []


#: Shared disabled tracer; hold a reference to this when observation is off.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer) -> "Tracer":
    """``tracer`` itself, or :data:`NULL_TRACER` when ``None``."""
    return tracer if tracer is not None else NULL_TRACER
