"""Per-workload observability metrics: one JSON-safe dict per run.

:func:`collect_metrics` gathers everything the observability layer knows
about one adapted workload run — pass spans with their wall times and
recorded metrics, the Table 2 slice statistics, per-delinquent-load miss
attribution and prefetch coverage / accuracy / timeliness, and the
simulation outcome — into a single dict suitable for ``--metrics-json``
and for rendering with :func:`repro.obs.report.render_report`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Schema version of the metrics JSON document.
METRICS_SCHEMA = 1


def slice_rows(tool_result) -> list:
    """Per-emitted-slice Table 2 material."""
    if tool_result is None or tool_result.adapted is None:
        return []
    rows = []
    for record in tool_result.adapted.records:
        scheduled = record.scheduled
        rows.append({
            "slice_label": record.slice_label,
            "kind": record.kind,
            "interprocedural": bool(record.interprocedural),
            "size": scheduled.size(),
            "emitted_size": record.emitted_size,
            "live_ins": record.num_live_ins,
            "slack_per_iteration": scheduled.slack_per_iteration,
            "height_region": scheduled.height_region,
            "height_critical": scheduled.height_critical,
            "height_slice": scheduled.height_slice,
            "triggers": len(record.triggers),
            "delinquent_uids": sorted(
                scheduled.region_slice.delinquent_uids),
        })
    return rows


def delinquent_rows(tool_result, stats=None,
                    profile=None) -> Dict[str, Dict[str, Any]]:
    """Per-delinquent-load attribution, keyed by the load's uid (str)."""
    if tool_result is None:
        return {}
    prefetch = (stats.prefetch_metrics(tool_result.delinquent_uids)
                if stats is not None else {})
    rows: Dict[str, Dict[str, Any]] = {}
    for uid in tool_result.delinquent_uids:
        row: Dict[str, Any] = {"uid": uid}
        if profile is not None:
            row["profiled_miss_cycles"] = profile.miss_cycles_of(uid)
        row.update(prefetch.get(uid, {}))
        rows[str(uid)] = row
    return rows


def collect_metrics(workload: str, scale: str, model: str,
                    profile=None, tool_result=None, stats=None,
                    baseline_cycles: Optional[int] = None,
                    tracer=None, telemetry=None,
                    resilience: Optional[Dict[str, Any]] = None,
                    profiler=None,
                    fleet: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Assemble the observability metrics document for one run.

    ``resilience`` is the per-run supervisor metadata from
    ``RunResult.metrics["resilience"]`` (ladder step, watchdog kills,
    checkpoint/resume counts); aggregate resilience counters arrive via
    ``telemetry`` under ``doc["runner"]["resilience"]``.  ``profiler``
    is a :class:`~repro.obs.profiler.CycleProfiler` (or its document)
    and ``fleet`` a :func:`repro.obs.fleet.collect_fleet` document.
    """
    doc: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "workload": workload,
        "scale": scale,
        "model": model,
    }
    if tracer is not None:
        doc["passes"] = [
            {"name": span.name, "cat": span.category,
             "wall_time": span.wall_time, "metrics": dict(span.metrics)}
            for span in tracer.spans]
        counters = tracer.counters_snapshot()
        if counters:
            doc["counters"] = counters
        histograms = tracer.histograms_snapshot()
        if histograms:
            doc["histograms"] = histograms
    if profile is not None:
        doc["profile"] = {
            "baseline_cycles": profile.baseline_cycles,
            "total_miss_cycles": profile.total_miss_cycles(),
        }
    if tool_result is not None:
        doc["delinquent_uids"] = list(tool_result.delinquent_uids)
        doc["table2"] = tool_result.table2_row()
        doc["slices"] = slice_rows(tool_result)
        doc["delinquent_loads"] = delinquent_rows(tool_result, stats,
                                                  profile)
        doc["guard"] = tool_result.guard.to_dict()
    if stats is not None:
        sim: Dict[str, Any] = {
            "cycles": stats.cycles,
            "main_instructions": stats.main_instructions,
            "spec_instructions": stats.spec_instructions,
            "spawns": stats.spawns,
            "spawn_failures": stats.spawn_failures,
            "chk_fired": stats.chk_fired,
            "chk_ignored": stats.chk_ignored,
            "threads_completed": stats.threads_completed,
            "budget_kills": stats.budget_kills,
            "prefetches_issued": stats.memory.prefetches_issued,
            "prefetches_dropped": stats.memory.prefetches_dropped,
            "cycle_breakdown": dict(stats.cycle_breakdown),
        }
        if baseline_cycles:
            sim["baseline_cycles"] = baseline_cycles
            if stats.cycles:
                sim["speedup"] = baseline_cycles / stats.cycles
        doc["sim"] = sim
    if telemetry is not None:
        doc["runner"] = telemetry.snapshot()
    if resilience is not None:
        doc["resilience"] = dict(resilience)
    if profiler is not None:
        doc["profiler"] = (dict(profiler) if isinstance(profiler, dict)
                           else profiler.to_dict())
    if fleet is not None:
        doc["fleet"] = dict(fleet)
    return doc
