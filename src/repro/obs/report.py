"""Human-readable rendering of a metrics document (``repro report``).

Turns the dict produced by :func:`repro.obs.metrics.collect_metrics` into
the per-workload observability report: pass spans with wall times and key
metrics, the Table 2 slice rows, per-delinquent-load prefetch
coverage / accuracy / timeliness, the cycle-attribution profile, and the
service-fleet summary.  Documents are rendered defensively: any section
may be missing, empty, or partial (older schema versions, zero-run
telemetry) and still produce a report instead of a crash.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .profiler import render_profile


def _fmt_metric(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    table = [headers] + rows
    widths = [max(len(row[i]) for row in table)
              for i in range(len(headers))]
    lines = ["  ".join(cell.ljust(widths[i])
                       for i, cell in enumerate(table[0]))]
    lines.append("  ".join("-" * w for w in widths))
    for row in table[1:]:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return lines


def render_report(metrics: Dict[str, Any]) -> str:
    """The observability report for one metrics document."""
    lines: List[str] = []
    title = (f"observability report: {metrics.get('workload', '?')} "
             f"({metrics.get('scale', '?')}, {metrics.get('model', '?')})")
    lines.append(title)
    lines.append("=" * len(title))

    profile = metrics.get("profile")
    if profile:
        lines.append(
            f"baseline cycles: {profile.get('baseline_cycles', '-')}  "
            f"total miss cycles: {profile.get('total_miss_cycles', '-')}")

    passes = metrics.get("passes")
    if passes:
        lines.append("")
        lines.append("pipeline passes")
        rows = []
        for entry in passes:
            detail = "  ".join(
                f"{key}={_fmt_metric(value)}"
                for key, value in sorted(entry.get("metrics", {}).items()))
            rows.append([entry["name"],
                         f"{entry['wall_time'] * 1e3:8.2f}ms", detail])
        lines.extend(_table(["pass", "wall", "metrics"], rows))

    slices = metrics.get("slices")
    if slices:
        lines.append("")
        lines.append("emitted slices (Table 2 material)")
        rows = [[
            s["slice_label"], s["kind"],
            "yes" if s["interprocedural"] else "no",
            str(s["size"]), str(s["live_ins"]),
            f"{s['slack_per_iteration']:.1f}",
            f"{s['height_slice']}/{s['height_critical']}",
            str(s["triggers"]),
        ] for s in slices]
        lines.extend(_table(
            ["slice", "kind", "interproc", "size", "live-ins",
             "slack/iter", "height s/c", "triggers"], rows))

    loads = metrics.get("delinquent_loads")
    if loads:
        lines.append("")
        lines.append("delinquent loads: prefetch coverage / accuracy / "
                     "timeliness")
        rows = []
        for key in sorted(loads, key=lambda k: int(k)):
            row = loads[key]
            rows.append([
                str(row.get("uid", key)),
                str(row.get("accesses", "-")),
                str(row.get("l1_misses", "-")),
                str(row.get("prefetches_issued", "-")),
                f"{row.get('coverage', 0.0):6.1%}",
                f"{row.get('accuracy', 0.0):6.1%}",
                f"{row.get('timeliness', 0.0):6.1%}",
            ])
        lines.extend(_table(
            ["load", "accesses", "L1 misses", "prefetches", "coverage",
             "accuracy", "timeliness"], rows))

    guard = metrics.get("guard")
    if guard and (guard.get("degraded") or guard.get("diagnostics")):
        lines.append("")
        lines.append(f"guard: adapted={guard.get('adapted_loads', 0)} "
                     f"skipped={guard.get('skipped_loads', 0)} "
                     f"failed={guard.get('failed_loads', 0)}"
                     + (f"  rollbacks={len(guard['rollbacks'])}"
                        if guard.get("rollbacks") else ""))
        for diag in guard.get("diagnostics", []):
            where = diag.get("function") or "-"
            lines.append(f"  [{diag.get('severity', '?')}] "
                         f"{diag.get('stage', '?')} "
                         f"({where}): {diag.get('message', '')}")

    sim = metrics.get("sim")
    if sim:
        lines.append("")
        parts = [f"cycles={sim.get('cycles', 0)}"]
        if "speedup" in sim:
            parts.append(f"speedup={sim['speedup']:.2f}x")
        parts.append(f"spawns={sim.get('spawns', 0)}")
        parts.append(f"chk fired/ignored={sim.get('chk_fired', 0)}/"
                     f"{sim.get('chk_ignored', 0)}")
        parts.append(f"prefetches={sim.get('prefetches_issued', 0)}")
        lines.append("simulation: " + "  ".join(parts))
        breakdown = sim.get("cycle_breakdown")
        if breakdown:
            total = sum(breakdown.values()) or 1
            lines.append("cycle breakdown: " + ", ".join(
                f"{cat}={count} ({count / total:.0%})"
                for cat, count in breakdown.items() if count))

    runner = metrics.get("runner")
    if runner:
        lines.append("")
        line = (f"runner: {runner.get('launched', 0)} simulated, "
                f"{runner.get('cache_hits', 0)} cached "
                f"({100 * runner.get('hit_rate', 0.0):.0f}% hit rate), ")
        # Older metrics documents predate service mode; .get throughout.
        if runner.get("dedupe_hits"):
            line += (f"{runner['dedupe_hits']} deduped by other "
                     f"workers, ")
        line += (f"sim wall {runner.get('sim_wall_time', 0.0):.2f}s "
                 f"(saved {runner.get('saved_wall_time', 0.0):.2f}s)")
        lines.append(line)
        backend = runner.get("cache_backend")
        if backend:
            parts = [f"kind={backend.get('kind', 'local')}"]
            if backend.get("shards"):
                parts.append(f"shards={backend['shards']}")
            for counter in ("hits", "misses", "puts", "evictions",
                            "quarantines", "promotions"):
                if backend.get(counter):
                    parts.append(f"{counter}={backend[counter]}")
            lines.append("cache backend: " + "  ".join(parts))
        resilience = runner.get("resilience")
        if resilience and any(resilience.values()):
            lines.append(
                "resilience: "
                f"checkpoints={resilience.get('checkpoints', 0)} "
                f"resumes={resilience.get('resumes', 0)} "
                f"watchdog kills={resilience.get('watchdog_kills', 0)} "
                f"breaker trips={resilience.get('circuit_trips', 0)} "
                f"degraded={resilience.get('degraded_runs', 0)} "
                f"skipped={resilience.get('skips', 0)}")

    run_meta = metrics.get("resilience")
    if run_meta:
        lines.append("")
        parts = [f"ladder step={run_meta.get('ladder_step', 'full')}"]
        if run_meta.get("watchdog_kills"):
            parts.append(f"watchdog kills={run_meta['watchdog_kills']}")
        if run_meta.get("serial"):
            parts.append("breaker tripped to serial")
        if run_meta.get("checkpoints"):
            parts.append(f"checkpoints={run_meta['checkpoints']}")
        if run_meta.get("resumed_from_cycle") is not None:
            parts.append(
                f"resumed from cycle {run_meta['resumed_from_cycle']}")
        lines.append("run resilience: " + "  ".join(parts))

    profiler = metrics.get("profiler")
    if profiler:
        lines.append("")
        lines.append(render_profile(profiler))

    fleet = metrics.get("fleet")
    if fleet:
        from .fleet import fleet_summary_lines
        lines.append("")
        lines.extend(fleet_summary_lines(fleet))
    return "\n".join(lines)
