"""Fleet-wide telemetry: one document for a whole service root.

A running batch service (``repro.service``) scatters its own telemetry
across the service root: per-worker summary JSONs under
``<root>/workers/``, lease heartbeats and pending jobs under
``<root>/queue/``, and the shared backend's ``CacheCounters``.
:func:`collect_fleet` folds all of it into a single JSON-safe fleet
document — per-worker throughput, queue depth and oldest lease age,
dedupe and hit rates — and :func:`render_fleet` renders it as the
``repro service top`` screen (one-shot or ``--watch``).  The same
document rides along in metrics documents (``doc["fleet"]``) and the
report renderer.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..guard import faultinject

#: Schema version of the fleet document.
FLEET_SCHEMA = 2


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _worker_rows(root: Path,
                 now: float) -> Tuple[List[Dict[str, Any]], int]:
    """(rows, torn) — torn counts summaries that exist but do not parse
    (a worker died mid-write before the summaries were crash-safe, or
    the ``worker.summary.torn`` chaos site fired).  Torn summaries are
    skipped-and-counted, never raised on: one sick worker must not
    blind the whole fleet view."""
    rows: List[Dict[str, Any]] = []
    torn = 0
    workers_dir = root / "workers"
    if not workers_dir.is_dir():
        return rows, torn
    for path in sorted(workers_dir.glob("*.json")):
        summary = _read_json(path)
        if summary is None:
            torn += 1
            faultinject.record_recovery("worker.summary.torn")
            continue
        started = float(summary.get("started") or 0.0)
        finished = float(summary.get("finished") or 0.0)
        wall = max(finished - started, 0.0)
        executed = int(summary.get("executed") or 0)
        deduped = int(summary.get("deduped") or 0)
        jobs = executed + deduped
        rows.append({
            "worker": summary.get("worker") or path.stem,
            "pid": summary.get("pid"),
            "executed": executed,
            "deduped": deduped,
            "failures": int(summary.get("failures") or 0),
            "requeues": int(summary.get("requeues") or 0),
            "stolen_leases": int(summary.get("stolen_leases") or 0),
            "degraded": int(summary.get("degraded") or 0),
            "ladder": summary.get("ladder") or {},
            "resumes": int(summary.get("resumes") or 0),
            "checkpoints": int(summary.get("checkpoints") or 0),
            "wall_time": wall,
            "throughput": jobs / wall if wall > 0 else 0.0,
            "age": max(now - finished, 0.0) if finished else None,
            "backend": summary.get("backend") or {},
            "faults": summary.get("faults") or {},
        })
    return rows, torn


def _fold_faults(workers: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-site injected/recovered totals across the worker summaries."""
    sites: Dict[str, Dict[str, int]] = {}
    for w in workers:
        faults = w.get("faults") or {}
        for bucket in ("injected", "recovered"):
            for site, count in (faults.get(bucket) or {}).items():
                row = sites.setdefault(site,
                                       {"injected": 0, "recovered": 0})
                row[bucket] += int(count)
    return sites


def _queue_state(config, now: float) -> Dict[str, Any]:
    from ..resilience.heartbeat import heartbeat_age

    queue = config.make_queue()
    state: Dict[str, Any] = dict(queue.counts())
    lease_ages = [age for age in
                  (heartbeat_age(path, now=now)
                   for path in queue.lease_dir.glob("*.lease"))
                  if age is not None]
    state["oldest_lease_age"] = max(lease_ages) if lease_ages else None
    pending_ages = []
    for path in queue.pending_dir.glob("*.json"):
        job = _read_json(path)
        submitted = (job or {}).get("submitted")
        if submitted:
            pending_ages.append(max(now - float(submitted), 0.0))
    state["oldest_pending_age"] = (max(pending_ages)
                                   if pending_ages else None)
    return state


def collect_fleet(root=None, config=None,
                  now: Optional[float] = None) -> Dict[str, Any]:
    """Aggregate one service root into a fleet document.

    ``root`` resolves like everything in the service layer (explicit >
    ``REPRO_SERVICE_ROOT`` > ``.repro-service``); pass a ready
    :class:`~repro.service.client.ServiceConfig` as ``config`` instead
    to keep sharding/tier settings.  Never raises on a missing or
    half-formed root — an empty fleet document is still a document.
    """
    # Imported lazily: repro.service imports the runner, which imports
    # repro.obs at module load.
    from ..service.client import ServiceConfig

    if config is None:
        config = ServiceConfig.resolve(root)
    now = time.time() if now is None else now
    workers, torn = _worker_rows(config.root, now)
    queue = _queue_state(config, now)

    executed = sum(w["executed"] for w in workers)
    deduped = sum(w["deduped"] for w in workers)
    jobs = executed + deduped
    wall = max((w["wall_time"] for w in workers), default=0.0)
    totals: Dict[str, Any] = {
        "workers": len(workers),
        "torn_summaries": torn,
        "executed": executed,
        "deduped": deduped,
        "failures": sum(w["failures"] for w in workers),
        "requeues": sum(w["requeues"] for w in workers),
        "stolen_leases": sum(w["stolen_leases"] for w in workers),
        "degraded": sum(w["degraded"] for w in workers),
        "resumes": sum(w["resumes"] for w in workers),
        "checkpoints": sum(w["checkpoints"] for w in workers),
        "dedupe_rate": deduped / jobs if jobs else 0.0,
        # Fleet throughput over the longest worker session — the
        # sessions overlap, so summing per-worker rates would flatter.
        "throughput": jobs / wall if wall > 0 else 0.0,
    }
    faults = _fold_faults(workers)

    backend = config.make_backend()
    counters = backend.counters_snapshot()
    hits = counters.get("hits", 0)
    misses = counters.get("misses", 0)
    store = backend.stats()
    backend_doc: Dict[str, Any] = {
        "kind": counters.get("kind"),
        "entries": store.get("entries", 0),
        "bytes": store.get("bytes", 0),
        # NOTE: counters are per-process; for a one-shot `service top`
        # they reflect this probe, while the per-worker rows carry each
        # worker's own lifetime counters.
        "hit_rate": hits / (hits + misses) if (hits + misses) else None,
    }
    if counters.get("shards"):
        backend_doc["shards"] = counters["shards"]

    doc: Dict[str, Any] = {
        "schema": FLEET_SCHEMA,
        "root": str(config.root),
        "collected": now,
        "workers": workers,
        "totals": totals,
        "queue": queue,
        "backend": backend_doc,
    }
    if faults:
        doc["faults"] = faults
    return doc


# -- rendering ---------------------------------------------------------------------


def _age(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def fleet_summary_lines(doc: Dict[str, Any]) -> List[str]:
    """The condensed fleet section used inside ``repro report``."""
    totals = doc.get("totals") or {}
    queue = doc.get("queue") or {}
    backend = doc.get("backend") or {}
    head = (f"fleet @ {doc.get('root', '?')}: "
            f"{totals.get('workers', 0)} worker(s), "
            f"{totals.get('executed', 0)} executed, "
            f"{totals.get('deduped', 0)} deduped "
            f"({100 * totals.get('dedupe_rate', 0.0):.0f}%), "
            f"{totals.get('failures', 0)} failed")
    if totals.get("degraded"):
        head += f", {totals['degraded']} degraded"
    if totals.get("resumes"):
        head += f", {totals['resumes']} resumed"
    if totals.get("torn_summaries"):
        head += f" [{totals['torn_summaries']} torn summary(ies) skipped]"
    lines = [head]
    queue_line = (f"queue: {queue.get('pending', 0)} pending, "
                  f"{queue.get('leased', 0)} leased "
                  f"({queue.get('stale_leases', 0)} stale), "
                  f"{queue.get('done', 0)} done, "
                  f"{queue.get('failed', 0)} failed")
    if queue.get("poisoned"):
        queue_line += f", {queue['poisoned']} POISONED"
    queue_line += (f"; oldest lease "
                   f"{_age(queue.get('oldest_lease_age'))}, "
                   f"oldest pending "
                   f"{_age(queue.get('oldest_pending_age'))}")
    lines.append(queue_line)
    faults = doc.get("faults") or {}
    if faults:
        parts = [f"{site}={row.get('injected', 0)}/"
                 f"{row.get('recovered', 0)}"
                 for site, row in sorted(faults.items())]
        lines.append("faults (injected/recovered): " + "  ".join(parts))
    parts = [f"kind={backend.get('kind', '?')}"]
    if backend.get("shards"):
        parts.append(f"shards={backend['shards']}")
    parts.append(f"entries={backend.get('entries', 0)}")
    parts.append(f"bytes={backend.get('bytes', 0)}")
    if backend.get("hit_rate") is not None:
        parts.append(f"hit rate={100 * backend['hit_rate']:.0f}%")
    lines.append("backend: " + "  ".join(parts))
    return lines


def render_fleet(doc: Dict[str, Any]) -> str:
    """The full ``repro service top`` screen for one fleet document."""
    lines = fleet_summary_lines(doc)
    workers = doc.get("workers") or []
    if workers:
        lines.append("")
        header = (f"{'worker':<28} {'exec':>5} {'dedup':>5} {'fail':>4} "
                  f"{'requeue':>7} {'stolen':>6} {'degr':>4} "
                  f"{'resume':>6} {'jobs/s':>7} {'wall':>7} {'seen':>5}")
        lines.append(header)
        lines.append("-" * len(header))
        ordered = sorted(workers, key=lambda w: w.get("throughput", 0.0),
                         reverse=True)
        for w in ordered:
            lines.append(
                f"{str(w.get('worker', '?'))[:28]:<28} "
                f"{w.get('executed', 0):>5} {w.get('deduped', 0):>5} "
                f"{w.get('failures', 0):>4} {w.get('requeues', 0):>7} "
                f"{w.get('stolen_leases', 0):>6} "
                f"{w.get('degraded', 0):>4} "
                f"{w.get('resumes', 0):>6} "
                f"{w.get('throughput', 0.0):>7.2f} "
                f"{w.get('wall_time', 0.0):>6.1f}s "
                f"{_age(w.get('age')):>5}")
    else:
        lines.append("")
        lines.append("no worker summaries yet")
    return "\n".join(lines)
