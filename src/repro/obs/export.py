"""Exporters: JSONL event log and Chrome trace-event JSON (Perfetto).

Two serialisations of one observed run:

* :func:`write_jsonl` — an append-friendly machine-readable log, one JSON
  object per line.  Record ``type``s: ``meta``, ``span``, ``event``,
  ``counter``, ``histogram``, ``sim_event`` and ``context_interval``.
* :func:`write_chrome_trace` — the Chrome trace-event format
  (``{"traceEvents": [...]}``), loadable in Perfetto / ``chrome://tracing``.
  Tool passes appear as duration events on a "post-pass tool" process
  (wall-clock microseconds); the simulator timeline is derived from a
  :class:`~repro.sim.trace.ContextTrace` — one thread track per hardware
  context, one duration slice per thread occupancy interval, instant
  events for spawns and fired triggers — on a "simulator" process where
  **1 simulated cycle is rendered as 1 microsecond**.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

#: Synthetic process ids for the two timelines of a Chrome trace.
TOOL_PID = 1
SIM_PID = 2

#: JSONL schema version emitted in the ``meta`` record.
JSONL_SCHEMA = 1


def jsonl_records(tracer=None, context_trace=None,
                  meta: Optional[Dict[str, Any]] = None
                  ) -> List[Dict[str, Any]]:
    """All observability records of one run, in emission order."""
    records: List[Dict[str, Any]] = []
    head: Dict[str, Any] = {"type": "meta", "schema": JSONL_SCHEMA}
    if meta:
        head.update(meta)
    records.append(head)
    if tracer is not None:
        records.extend(tracer.span_dicts())
        records.extend(tracer.events)
        for name, value in tracer.counters_snapshot().items():
            records.append({"type": "counter", "name": name,
                            "value": value})
        for name, summary in tracer.histograms_snapshot().items():
            records.append({"type": "histogram", "name": name, **summary})
    if context_trace is not None:
        for slot in range(context_trace.num_contexts):
            for tid, start, end in context_trace.intervals[slot]:
                records.append({"type": "context_interval", "context": slot,
                                "tid": tid, "start_cycle": start,
                                "end_cycle": end})
        for cycle, name, args in getattr(context_trace, "events", []):
            records.append({"type": "sim_event", "cycle": cycle,
                            "name": name, "args": args})
    return records


def write_jsonl(path, records: Iterable[Dict[str, Any]]) -> None:
    """Write records as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")


def _metadata(pid: int, tid: int, kind: str, name: str) -> Dict[str, Any]:
    return {"ph": "M", "name": kind, "pid": pid, "tid": tid,
            "args": {"name": name}}


def profiler_counter_events(profiler) -> List[Dict[str, Any]]:
    """Perfetto counter tracks from a cycle-attribution profiler.

    Two counters on the simulator process timeline (1 cycle = 1 µs):
    host simulation throughput (cycles/second of wall time) and the
    main-vs-speculative instruction ticks of each sampling window.
    ``profiler`` is a live :class:`~repro.obs.profiler.CycleProfiler`
    or its ``to_dict()`` document.
    """
    if profiler is None:
        return []
    doc = profiler if isinstance(profiler, dict) else profiler.to_dict()
    events: List[Dict[str, Any]] = []
    for point in doc.get("track", []):
        ts = float(point["cycle"])
        events.append({
            "ph": "C", "name": "sim throughput", "cat": "profiler",
            "pid": SIM_PID, "tid": 0, "ts": ts,
            "args": {"cycles_per_sec":
                     round(point["cycles_per_sec"], 1)},
        })
        events.append({
            "ph": "C", "name": "instruction ticks", "cat": "profiler",
            "pid": SIM_PID, "tid": 0, "ts": ts,
            "args": {"main": point["main_ticks"],
                     "spec": point["spec_ticks"]},
        })
    return events


def chrome_trace_events(tracer=None, context_trace=None, profiler=None
                        ) -> List[Dict[str, Any]]:
    """Chrome trace-event list for one observed run."""
    events: List[Dict[str, Any]] = []

    if tracer is not None and (tracer.spans or tracer.events):
        events.append(_metadata(TOOL_PID, 0, "process_name",
                                "post-pass tool"))
        events.append(_metadata(TOOL_PID, 0, "thread_name", "pipeline"))
        for span in tracer.spans:
            events.append({
                "ph": "X", "name": span.name, "cat": span.category,
                "pid": TOOL_PID, "tid": 0,
                "ts": span.start * 1e6,
                "dur": max(span.wall_time * 1e6, 1.0),
                "args": dict(span.metrics),
            })
        for event in tracer.events:
            events.append({
                "ph": "i", "s": "p", "name": event["name"],
                "cat": event.get("cat", "event"),
                "pid": TOOL_PID, "tid": 0,
                "ts": event["ts"] * 1e6,
                "args": dict(event.get("args", {})),
            })

    if context_trace is not None:
        events.append(_metadata(SIM_PID, 0, "process_name",
                                "simulator (1 cycle = 1us)"))
        for slot in range(context_trace.num_contexts):
            label = ("main (context 0)" if slot == 0
                     else f"spec context {slot}")
            events.append(_metadata(SIM_PID, slot, "thread_name", label))
            for tid, start, end in context_trace.intervals[slot]:
                events.append({
                    "ph": "X",
                    "name": "main" if slot == 0 else f"thread {tid}",
                    "cat": "context", "pid": SIM_PID, "tid": slot,
                    "ts": float(start),
                    "dur": float(max(end - start, 1)),
                    "args": {"tid": tid},
                })
        for cycle, name, args in getattr(context_trace, "events", []):
            events.append({
                "ph": "i", "s": "t", "name": name, "cat": "sim",
                "pid": SIM_PID, "tid": int(args.get("slot", 0)),
                "ts": float(cycle), "args": dict(args),
            })

    if profiler is not None:
        counter_events = profiler_counter_events(profiler)
        if counter_events and context_trace is None:
            # The counters live on the simulator timeline; name the
            # process when no context trace already did.
            events.append(_metadata(SIM_PID, 0, "process_name",
                                    "simulator (1 cycle = 1us)"))
        events.extend(counter_events)
    return events


def write_chrome_trace(path, events: List[Dict[str, Any]]) -> None:
    """Write a ``{"traceEvents": [...]}`` JSON file Perfetto accepts."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
