"""Low-overhead cycle-attribution profiler for the simulator run loops.

ROADMAP item 1 asks for an order-of-magnitude simulator speedup
"profiled and measured" — this module is the *measured* half: it answers
where a simulated cycle's host wall-time actually goes, per run-loop
phase, before anyone starts rewriting the loop.

Design: sampling, not tracing.  A simulator with an attached
:class:`CycleProfiler` keeps a ``_prof_next`` cycle mark; the run loop's
only unconditional cost is one integer compare per iteration
(``now >= self._prof_next``, against a far-future sentinel when no
profiler is attached).  On a *sampled* iteration the loop takes
``perf_counter`` laps at its phase boundaries (reap/select/issue/account
for the in-order model; fetch/schedule/interp/timing/account for the
OOO model), classifies the cycle (main-productive, spec-only, stalled),
and pulls instruction-count deltas from :class:`~repro.sim.stats.SimStats`
to attribute main-thread vs. speculative-context ticks.  The profiler
never touches simulator state, so profiled and unprofiled runs produce
byte-identical statistics.

Outputs: per-phase wall-time histograms (µs per sampled iteration), a
"top wall-time sinks" table (:meth:`CycleProfiler.render`), a JSON-safe
document (:meth:`CycleProfiler.to_dict`) embedded in metrics documents,
and Perfetto counter tracks (throughput, main vs. spec ticks) emitted by
:func:`repro.obs.export.profiler_counter_events` alongside the existing
Chrome-trace export.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .tracer import Histogram

#: Cycles between samples.  At the default, a million-cycle simulation
#: takes ~250 samples — enough for stable phase attribution at well
#: under 1% wall-time overhead.
DEFAULT_INTERVAL = 4096

#: ``_prof_next`` sentinel installed when no profiler is attached: the
#: per-iteration gate ``now >= _prof_next`` is then one always-false
#: integer compare.
FAR_FUTURE = 1 << 60


class CycleProfiler:
    """Sampling wall-time attributor for one simulator run.

    Attach with ``simulator.attach_profiler(profiler)`` before
    ``run()``.  One profiler instance belongs to one run; attach a fresh
    one per simulation.
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 clock: Callable[[], float] = time.perf_counter):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = int(interval)
        self.clock = clock
        #: Machine model name, stamped by ``attach_profiler``.
        self.model: Optional[str] = None
        self.samples = 0
        self.started_wall: Optional[float] = None
        self.finished_wall: Optional[float] = None
        self.start_cycle: Optional[int] = None
        self.last_cycle: Optional[int] = None
        self._last_wall: Optional[float] = None
        self._last_main_instr = 0
        self._last_spec_instr = 0
        #: phase -> accumulated seconds across sampled iterations.
        self.phase_wall: Dict[str, float] = {}
        #: phase -> Histogram of µs spent in that phase per sample.
        self.phase_hist: Dict[str, Histogram] = {}
        #: Sampled-cycle classification counts.
        self.cycle_kinds: Dict[str, int] = {
            "main_issue": 0, "spec_only": 0, "stall": 0}
        #: Instruction ticks attributed between consecutive samples.
        self.ticks: Dict[str, int] = {"main": 0, "spec": 0}
        #: Counter-track points for Perfetto export.
        self.track: List[Dict[str, Any]] = []

    # -- hot-path hooks (called from the simulator run loops) ------------------------

    def begin(self, cycle: int) -> float:
        """Open a sampled iteration; returns the lap timestamp."""
        t = self.clock()
        if self.started_wall is None:
            self.started_wall = t
            self.start_cycle = cycle
        return t

    def lap(self, phase: str, t0: float) -> float:
        """Charge wall-time since ``t0`` to ``phase``; returns now."""
        t1 = self.clock()
        dt = t1 - t0
        self.phase_wall[phase] = self.phase_wall.get(phase, 0.0) + dt
        hist = self.phase_hist.get(phase)
        if hist is None:
            hist = self.phase_hist[phase] = Histogram(phase)
        hist.observe(dt * 1e6)
        return t1

    def sample(self, cycle: int, stats, issued_main: int,
               stalled: bool) -> int:
        """Close a sampled iteration; returns the next sample cycle.

        ``stats`` is the live :class:`~repro.sim.stats.SimStats`; only
        its instruction counters are *read* — nothing is written back.
        """
        t = self.clock()
        self.finished_wall = t
        self.samples += 1
        if stalled:
            self.cycle_kinds["stall"] += 1
        elif issued_main:
            self.cycle_kinds["main_issue"] += 1
        else:
            self.cycle_kinds["spec_only"] += 1
        main_instr = stats.main_instructions
        spec_instr = stats.spec_instructions
        d_main = main_instr - self._last_main_instr
        d_spec = spec_instr - self._last_spec_instr
        self.ticks["main"] += d_main
        self.ticks["spec"] += d_spec
        if self.last_cycle is not None and t > self._last_wall:
            d_cycles = cycle - self.last_cycle
            if d_cycles > 0:
                self.track.append({
                    "cycle": cycle,
                    "wall": t - self.started_wall,
                    "cycles_per_sec": d_cycles / (t - self._last_wall),
                    "main_ticks": d_main,
                    "spec_ticks": d_spec,
                })
        self.last_cycle = cycle
        self._last_wall = t
        self._last_main_instr = main_instr
        self._last_spec_instr = spec_instr
        return cycle + self.interval

    # -- reporting -------------------------------------------------------------------

    @property
    def sampled_wall_time(self) -> float:
        """Seconds spent inside sampled iterations (sum of all phases)."""
        return sum(self.phase_wall.values())

    @property
    def wall_time(self) -> float:
        """Seconds from the first to the last sample."""
        if self.started_wall is None or self.finished_wall is None:
            return 0.0
        return self.finished_wall - self.started_wall

    @property
    def cycles_covered(self) -> int:
        if self.start_cycle is None or self.last_cycle is None:
            return 0
        return self.last_cycle - self.start_cycle

    @property
    def cycles_per_sec(self) -> float:
        wall = self.wall_time
        return self.cycles_covered / wall if wall > 0 else 0.0

    def phase_fractions(self) -> Dict[str, float]:
        """Each phase's share of the sampled wall-time (sums to 1)."""
        total = self.sampled_wall_time
        if total <= 0:
            return {}
        return {phase: wall / total
                for phase, wall in sorted(self.phase_wall.items())}

    def top_sinks(self) -> List[Tuple[str, float, float, float]]:
        """(phase, wall share, mean µs/sample, p90 µs/sample), worst first."""
        fractions = self.phase_fractions()
        rows = []
        for phase, share in fractions.items():
            summary = self.phase_hist[phase].summary()
            rows.append((phase, share, summary["mean"], summary["p90"]))
        rows.sort(key=lambda row: row[1], reverse=True)
        return rows

    def to_dict(self, max_track_points: int = 2048) -> Dict[str, Any]:
        """JSON-safe profile document (embedded in metrics documents)."""
        track = self.track
        if len(track) > max_track_points:
            stride = -(-len(track) // max_track_points)
            track = track[::stride]
        return {
            "model": self.model,
            "interval": self.interval,
            "samples": self.samples,
            "cycles_covered": self.cycles_covered,
            "wall_time": self.wall_time,
            "cycles_per_sec": self.cycles_per_sec,
            "sampled_wall_time": self.sampled_wall_time,
            "phase_fractions": self.phase_fractions(),
            "phases": {phase: hist.summary()
                       for phase, hist in sorted(self.phase_hist.items())},
            "cycle_kinds": dict(self.cycle_kinds),
            "ticks": dict(self.ticks),
            "track": [dict(point) for point in track],
        }

    def render(self) -> str:
        """The "top wall-time sinks" table as printable text."""
        return render_profile(self.to_dict())


def render_profile(doc: Dict[str, Any]) -> str:
    """Render a profile document (live or from JSON) as text."""
    lines = []
    model = doc.get("model") or "?"
    samples = doc.get("samples", 0)
    interval = doc.get("interval", 0)
    lines.append(f"cycle profile [{model}]: {samples} samples "
                 f"every {interval} cycles, "
                 f"{doc.get('cycles_covered', 0)} cycles in "
                 f"{doc.get('wall_time', 0.0):.3f}s "
                 f"({doc.get('cycles_per_sec', 0.0):,.0f} cyc/s)")
    fractions = doc.get("phase_fractions") or {}
    phases = doc.get("phases") or {}
    if fractions:
        lines.append("top wall-time sinks:")
        header = f"  {'phase':<12} {'share':>7} {'mean us':>9} {'p90 us':>9}"
        lines.append(header)
        rows = sorted(fractions.items(), key=lambda kv: kv[1], reverse=True)
        for phase, share in rows:
            summary = phases.get(phase) or {}
            lines.append(f"  {phase:<12} {100 * share:>6.1f}% "
                         f"{summary.get('mean', 0.0):>9.2f} "
                         f"{summary.get('p90', 0.0):>9.2f}")
    kinds = doc.get("cycle_kinds") or {}
    if samples:
        lines.append("sampled cycles: "
                     + ", ".join(f"{100 * kinds.get(k, 0) / samples:.0f}% "
                                 f"{label}"
                                 for k, label in (("main_issue", "main-"
                                                   "productive"),
                                                  ("spec_only", "spec-only"),
                                                  ("stall", "stalled"))))
    ticks = doc.get("ticks") or {}
    total_ticks = ticks.get("main", 0) + ticks.get("spec", 0)
    if total_ticks:
        lines.append(f"instruction ticks: {ticks.get('main', 0)} main, "
                     f"{ticks.get('spec', 0)} spec "
                     f"({100 * ticks.get('spec', 0) / total_ticks:.0f}% "
                     f"speculative)")
    return "\n".join(lines)


def profile_run(workload: str, scale: str = "small",
                model: str = "inorder", variant: str = "ssp",
                interval: int = DEFAULT_INTERVAL) -> Tuple[Any, CycleProfiler]:
    """Run one workload in-process with a profiler attached.

    Returns ``(SimStats, CycleProfiler)``.  Convenience entry point for
    tests and ad-hoc "where does the time go" sessions; the CLI's
    ``--profile`` flag wires the same machinery into a full adapt+report
    run.
    """
    # Imported lazily: repro.runner imports repro.obs at module load.
    from ..runner.spec import RunSpec
    from ..runner.worker import artifacts_for, config_for
    from ..sim.machine import make_simulator

    spec = RunSpec.create(workload, scale=scale, model=model,
                          variant=variant)
    artifacts = artifacts_for(spec)
    program, heap_workload = artifacts.run_inputs(spec.variant)
    sim = make_simulator(program, heap_workload.build_heap(), spec.model,
                         config=config_for(spec, artifacts),
                         spawning=spec.effective_spawning)
    profiler = CycleProfiler(interval=interval)
    sim.attach_profiler(profiler)
    stats = sim.run()
    return stats, profiler
