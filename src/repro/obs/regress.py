"""Append-only bench ledger + statistical throughput-regression gate.

``BENCH_runner.json`` is a one-shot snapshot; this module gives the
repository a *trajectory* and a gate:

* :func:`measure` — median-of-K wall-time runs per workload (one
  discarded warm-up pays the artifact build), recording simulator
  throughput in cycles/second with a MAD-based noise band;
* :func:`append_record` — the append-only ledger ``BENCH_history.jsonl``
  (one record per line, never rewritten), the trajectory every later
  speed PR (ROADMAP item 1) plots itself against;
* :func:`pin_baseline` / :func:`compare` — ``BENCH_baseline.json`` and
  the gate: a workload regresses only when its throughput drop clears
  *both* the combined noise band (``nsigma`` sigmas, sigma estimated as
  1.4826·MAD) and a relative floor (``min_rel``) — so run-to-run jitter
  passes and a real slowdown fails, with a nonzero exit from
  ``repro bench compare``.

Timings are host-dependent, so CI pins a same-host baseline before
comparing; the committed baseline documents the trajectory's origin.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Ledger / baseline schema version.
LEDGER_SCHEMA = 1

#: Default file names (repository root, next to BENCH_runner.json).
LEDGER_NAME = "BENCH_history.jsonl"
BASELINE_NAME = "BENCH_baseline.json"

#: Gate defaults: flag only drops beyond 3 combined sigmas AND 10%.
DEFAULT_NSIGMA = 3.0
DEFAULT_MIN_REL = 0.10

#: Consistency factor turning a MAD into a normal-equivalent sigma.
MAD_SIGMA = 1.4826

#: Cap on the *relative* noise band.  MAD over K<=5 samples is a crude
#: sigma estimate: on a loaded host it can balloon past the median
#: itself, producing a band no real slowdown could ever clear — a gate
#: that cannot fire.  A baseline noisier than +-50% cannot veto the
#: gate; a drop past the cap always counts.
MAX_REL_BAND = 0.50


def _mad(values: Sequence[float], center: float) -> float:
    return statistics.median(abs(v - center) for v in values)


def measure(workloads: Sequence[str], scale: str = "tiny", k: int = 5,
            model: str = "inorder", variant: str = "ssp",
            label: str = "", inject_slowdown: float = 1.0,
            progress=None) -> Dict[str, Any]:
    """Median-of-K timing record for the given workloads.

    Each workload gets one discarded warm-up run (pays the per-process
    artifact build) and ``k`` measured runs.  ``inject_slowdown``
    multiplies every measured wall time — a self-test knob proving the
    compare gate actually fires (used by ``bench compare
    --inject-slowdown`` and CI).
    """
    # Imported lazily: repro.runner imports repro.obs at module load.
    from ..runner.spec import RunSpec
    from ..runner.worker import WorkerTask, execute_task

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if inject_slowdown <= 0:
        raise ValueError("inject_slowdown must be > 0")
    rows: Dict[str, Any] = {}
    for name in workloads:
        spec = RunSpec.create(name, scale=scale, model=model,
                              variant=variant)
        execute_task(WorkerTask(spec=spec))  # warm-up (artifact build)
        walls: List[float] = []
        cycles = 0
        for _ in range(k):
            payload = execute_task(WorkerTask(spec=spec))
            walls.append(payload["wall_time"] * inject_slowdown)
            cycles = payload["stats"]["cycles"]
        wall_median = statistics.median(walls)
        wall_mad = _mad(walls, wall_median)
        cps = [cycles / w for w in walls]
        cps_median = statistics.median(cps)
        rows[name] = {
            "cycles": cycles,
            "n": len(walls),
            "wall": [round(w, 5) for w in walls],
            "wall_median": wall_median,
            "wall_mad": wall_mad,
            "cps_median": cps_median,
            "cps_mad": _mad(cps, cps_median),
        }
        if progress is not None:
            progress(f"{name}: {cycles} cycles, median "
                     f"{wall_median:.3f}s ({cps_median:,.0f} cyc/s "
                     f"+- {MAD_SIGMA * rows[name]['cps_mad']:,.0f})")
    return {
        "schema": LEDGER_SCHEMA,
        "created": time.time(),
        "label": label,
        "host": platform.node(),
        "python": sys.version.split()[0],
        "scale": scale,
        "model": model,
        "variant": variant,
        "k": k,
        "inject_slowdown": inject_slowdown,
        "workloads": rows,
    }


# -- ledger / baseline files -------------------------------------------------------


def append_record(record: Dict[str, Any], path: os.PathLike) -> None:
    """Append one record to the JSONL ledger (append-only by design)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True))
        fh.write("\n")


def read_ledger(path: os.PathLike) -> List[Dict[str, Any]]:
    """All parseable ledger records, oldest first."""
    records: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue  # torn tail line of a killed writer
    except OSError:
        pass
    return records


def pin_baseline(record: Dict[str, Any], path: os.PathLike) -> None:
    """Write the pinned baseline ``compare`` gates against."""
    Path(path).write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def load_baseline(path: os.PathLike) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


# -- the gate ----------------------------------------------------------------------


def compare(baseline: Dict[str, Any], current: Dict[str, Any],
            nsigma: float = DEFAULT_NSIGMA,
            min_rel: float = DEFAULT_MIN_REL) -> Dict[str, Any]:
    """Gate ``current`` against ``baseline``; returns the verdict doc.

    Per workload present in both records, the throughput drop must clear
    both the combined noise band (``nsigma`` * sqrt(sigma_base^2 +
    sigma_new^2), sigma = 1.4826 * MAD, capped at
    :data:`MAX_REL_BAND` of the baseline) and the relative floor
    ``min_rel`` to count as a regression.  Symmetric improvements are
    reported but never fail the gate.

    A baseline row with ``cps_median == 0`` is **stale** — it carries no
    usable throughput signal (a truncated write, a killed measurement,
    or a hand-edited file), and gating against it would silently wave
    every slowdown through (``drop / base_cps`` is undefined, so no
    relative drop could ever clear the threshold).  Stale rows fail the
    gate: re-pin the baseline.

    The result carries ``median_speedup`` — the median of
    ``new_cps / base_cps`` across comparable rows — for
    ``bench compare --assert-speedup``.
    """
    base_rows = baseline.get("workloads") or {}
    new_rows = current.get("workloads") or {}
    rows: List[Dict[str, Any]] = []
    regressions = 0
    stale = 0
    ratios: List[float] = []
    for name in sorted(base_rows):
        base = base_rows[name]
        new = new_rows.get(name)
        if new is None:
            rows.append({"workload": name, "verdict": "missing"})
            continue
        base_cps = float(base.get("cps_median") or 0.0)
        new_cps = float(new.get("cps_median") or 0.0)
        if base_cps <= 0:
            stale += 1
            rows.append({
                "workload": name,
                "verdict": "stale",
                "base_cps": base_cps,
                "new_cps": new_cps,
                "base_n": int(base.get("n") or 0),
                "new_n": int(new.get("n") or 0),
            })
            continue
        sigma_base = MAD_SIGMA * float(base.get("cps_mad") or 0.0)
        sigma_new = MAD_SIGMA * float(new.get("cps_mad") or 0.0)
        band = nsigma * (sigma_base ** 2 + sigma_new ** 2) ** 0.5
        drop = base_cps - new_cps
        rel = drop / base_cps
        rel_band = min(band / base_cps, MAX_REL_BAND)
        threshold = max(min_rel, rel_band)
        if rel > threshold:
            verdict = "regressed"
            regressions += 1
        elif -rel > threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        ratios.append(new_cps / base_cps)
        rows.append({
            "workload": name,
            "verdict": verdict,
            "base_cps": base_cps,
            "new_cps": new_cps,
            "base_n": int(base.get("n") or 0),
            "new_n": int(new.get("n") or 0),
            "delta_rel": -rel,
            "noise_band": band,
            "rel_band": rel_band,
        })
    extra = sorted(set(new_rows) - set(base_rows))
    return {
        "ok": regressions == 0 and stale == 0,
        "regressions": regressions,
        "stale": stale,
        "median_speedup": statistics.median(ratios) if ratios else 0.0,
        "nsigma": nsigma,
        "min_rel": min_rel,
        "rows": rows,
        "new_workloads": extra,
    }


def render_compare(result: Dict[str, Any]) -> str:
    """The ``bench compare`` verdict table as printable text."""
    lines = []
    header = (f"{'workload':<12} {'verdict':<10} {'base cyc/s':>12} "
              f"{'new cyc/s':>12} {'n':>5} {'delta':>8} {'band':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in result.get("rows", []):
        if row.get("verdict") == "missing":
            lines.append(f"{row['workload']:<12} {'missing':<10}")
            continue
        samples = f"{row.get('base_n', 0)}/{row.get('new_n', 0)}"
        if row.get("verdict") == "stale":
            lines.append(
                f"{row['workload']:<12} {'stale':<10} "
                f"{row['base_cps']:>12,.0f} {row['new_cps']:>12,.0f} "
                f"{samples:>5}  (baseline has no throughput signal; "
                f"re-pin it)")
            continue
        lines.append(
            f"{row['workload']:<12} {row['verdict']:<10} "
            f"{row['base_cps']:>12,.0f} {row['new_cps']:>12,.0f} "
            f"{samples:>5} {100 * row['delta_rel']:>+7.1f}% "
            f"{row['noise_band']:>10,.0f}")
    if result.get("new_workloads"):
        lines.append("not in baseline: "
                     + ", ".join(result["new_workloads"]))
    if result.get("ok"):
        verdict = "PASS"
    elif result.get("stale"):
        verdict = (f"FAIL ({result.get('regressions', 0)} regression(s), "
                   f"{result['stale']} stale baseline row(s))")
    else:
        verdict = f"FAIL ({result.get('regressions', 0)} regression(s))"
    lines.append(f"gate: {verdict}  "
                 f"(> {result.get('nsigma', DEFAULT_NSIGMA):g} sigma "
                 f"and > {100 * result.get('min_rel', DEFAULT_MIN_REL):g}% "
                 f"drop)")
    if result.get("median_speedup"):
        lines.append(f"median throughput ratio vs baseline: "
                     f"{result['median_speedup']:.2f}x")
    return "\n".join(lines)
