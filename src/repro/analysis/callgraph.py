"""Call graph with profile-resolved indirect calls.

Static direct-call edges come from ``br.call``; indirect-call edges come
from the dynamic call graph captured during profiling (Section 3.1.2: "we
instrument all the indirect procedural calls to capture the call graph
during profiling, and provide the result back to the slicing algorithm").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..isa.program import Program
from .scc import strongly_connected_components


class CallSite:
    """One call instruction."""

    __slots__ = ("uid", "caller", "callee", "indirect", "count")

    def __init__(self, uid: int, caller: str, callee: Optional[str],
                 indirect: bool, count: int = 0):
        self.uid = uid
        self.caller = caller
        self.callee = callee      # None for unresolved indirect calls
        self.indirect = indirect
        self.count = count


class CallGraph:
    """Whole-program call graph."""

    def __init__(self, program: Program,
                 indirect_profile: Optional[Dict[int, Dict[str, int]]] = None):
        """``indirect_profile`` maps an indirect call site's uid to observed
        target counts, e.g. ``{uid: {"f": 10, "g": 2}}``."""
        self.program = program
        indirect_profile = indirect_profile or {}
        self.sites: List[CallSite] = []
        self._callees: Dict[str, Set[str]] = {
            name: set() for name in program.functions}
        self._callers: Dict[str, Set[str]] = {
            name: set() for name in program.functions}
        self.sites_in: Dict[str, List[CallSite]] = {
            name: [] for name in program.functions}

        for name, func in program.functions.items():
            for instr in func.instructions():
                if instr.op == "br.call":
                    self._add_site(CallSite(instr.uid, name, instr.target,
                                            indirect=False))
                elif instr.op == "br.call.ind":
                    targets = indirect_profile.get(instr.uid, {})
                    if not targets:
                        self._add_site(CallSite(instr.uid, name, None,
                                                indirect=True))
                    for target, count in targets.items():
                        self._add_site(CallSite(instr.uid, name, target,
                                                indirect=True, count=count))

        sccs = strongly_connected_components(
            list(program.functions), lambda f: self._callees.get(f, ()))
        self._recursive: Set[str] = set()
        for comp in sccs:
            if len(comp) > 1:
                self._recursive.update(comp)
            elif comp and comp[0] in self._callees.get(comp[0], ()):
                self._recursive.add(comp[0])

    def _add_site(self, site: CallSite) -> None:
        self.sites.append(site)
        self.sites_in[site.caller].append(site)
        if site.callee is not None:
            self._callees[site.caller].add(site.callee)
            self._callers.setdefault(site.callee, set()).add(site.caller)

    # -- queries ------------------------------------------------------------------

    def callees(self, name: str) -> Set[str]:
        return self._callees.get(name, set())

    def callers(self, name: str) -> Set[str]:
        return self._callers.get(name, set())

    def call_sites_of(self, caller: str,
                      callee: Optional[str] = None) -> List[CallSite]:
        sites = self.sites_in.get(caller, [])
        if callee is None:
            return sites
        return [s for s in sites if s.callee == callee]

    def is_recursive(self, name: str) -> bool:
        """True if ``name`` participates in a call-graph cycle."""
        return name in self._recursive

    def reachable_from(self, name: str) -> Set[str]:
        seen = {name}
        work = [name]
        while work:
            f = work.pop()
            for callee in self._callees.get(f, ()):
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        return seen

    def call_paths_to(self, target: str, entry: Optional[str] = None,
                      limit: int = 16) -> List[List[Tuple[str, int]]]:
        """Acyclic call paths entry -> ... -> target as lists of
        (caller, call-site uid); used to build calling contexts."""
        entry = entry or self.program.entry
        paths: List[List[Tuple[str, int]]] = []

        def walk(func: str, acc: List[Tuple[str, int]],
                 seen: Set[str]) -> None:
            if len(paths) >= limit:
                return
            if func == target:
                paths.append(list(acc))
                return
            for site in self.sites_in.get(func, []):
                if site.callee is None or site.callee in seen:
                    continue
                acc.append((func, site.uid))
                walk(site.callee, acc, seen | {site.callee})
                acc.pop()

        walk(entry, [], {entry})
        return paths
