"""Dominator / post-dominator trees and control dependence.

Uses the Cooper–Harvey–Kennedy iterative algorithm on reverse postorder.
Control dependence follows Ferrante–Ottenstein–Warren: a block *B* is
control dependent on branch block *A* iff *B* post-dominates some successor
of *A* but does not post-dominate *A* itself — computed here directly from
the post-dominator tree.

The trigger-placement pass (Section 3.3) uses dominance ("we only consider
the nodes that control-dominate the delinquent loads as potential trigger
points") and the dependence graph uses control-dependence edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import CFG, EXIT


class DominatorTree:
    """Immediate-dominator tree over a CFG-like graph."""

    def __init__(self, entry: str, order: List[str],
                 preds: Dict[str, List[str]]):
        self.entry = entry
        self.idom: Dict[str, Optional[str]] = {entry: entry}
        index = {node: i for i, node in enumerate(order)}
        changed = True
        while changed:
            changed = False
            for node in order:
                if node == entry:
                    continue
                new_idom = None
                for pred in preds.get(node, []):
                    if pred not in self.idom or pred not in index:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(pred, new_idom, index)
                if new_idom is not None and \
                        self.idom.get(node) != new_idom:
                    self.idom[node] = new_idom
                    changed = True
        self.idom[entry] = None

    def _intersect(self, a: str, b: str, index: Dict[str, int]) -> str:
        while a != b:
            while index[a] > index[b]:
                a = self.idom[a]
            while index[b] > index[a]:
                b = self.idom[b]
        return a

    def dominates(self, a: str, b: str) -> bool:
        """True iff ``a`` dominates ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def dominators_of(self, node: str) -> List[str]:
        """All dominators of ``node``, innermost first."""
        out: List[str] = []
        cur: Optional[str] = node
        while cur is not None:
            out.append(cur)
            cur = self.idom.get(cur)
        return out


def dominator_tree(cfg: CFG) -> DominatorTree:
    """Dominator tree of ``cfg`` (virtual exit excluded)."""
    order = cfg.reverse_postorder()
    return DominatorTree(cfg.entry, order, cfg.preds)


def postdominator_tree(cfg: CFG) -> DominatorTree:
    """Post-dominator tree of ``cfg``, rooted at the virtual exit."""
    # Reverse the graph: preds become succs.
    succs_rev: Dict[str, List[str]] = {n: list(cfg.predecessors(n))
                                       for n in cfg.nodes}
    # Reverse postorder of the reverse graph, from EXIT.
    seen: Set[str] = set()
    order: List[str] = []

    def visit(start: str) -> None:
        stack = [(start, iter(succs_rev.get(start, [])))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(succs_rev.get(nxt, []))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(EXIT)
    order.reverse()
    preds_rev: Dict[str, List[str]] = {n: list(cfg.successors(n))
                                       for n in cfg.labels}
    preds_rev[EXIT] = []
    return DominatorTree(EXIT, order, preds_rev)


def control_dependences(cfg: CFG) -> Dict[str, Set[str]]:
    """Map block label -> labels of blocks it is control dependent on.

    Only blocks with more than one CFG successor can be control-dependence
    sources (conditional branches).
    """
    pdom = postdominator_tree(cfg)
    result: Dict[str, Set[str]] = {label: set() for label in cfg.labels}
    for a in cfg.labels:
        succs = cfg.successors(a)
        if len(succs) < 2:
            continue
        for succ in succs:
            # Walk the post-dominator tree from succ up to (exclusive)
            # ipdom(a); everything on the way is control dependent on a.
            stop = pdom.idom.get(a)
            node: Optional[str] = succ
            while node is not None and node != stop and node != EXIT:
                if node != a:
                    result.setdefault(node, set()).add(a)
                elif node == a:
                    # Loop: a controls itself (back edge to the branch).
                    result[a].add(a)
                node = pdom.idom.get(node)
    return result
