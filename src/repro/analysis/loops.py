"""Natural-loop detection and the loop nesting forest.

A back edge is an edge ``n -> h`` whose head ``h`` dominates its tail; the
natural loop of the back edge is ``h`` plus every node that reaches ``n``
without passing through ``h``.  Loops sharing a header are merged.  The
region graph (Section 3.1.1) is built from this forest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import CFG, EXIT
from .dominance import DominatorTree, dominator_tree


class Loop:
    """One natural loop."""

    def __init__(self, header: str, body: Set[str]):
        self.header = header
        #: All block labels in the loop, including the header.
        self.body = body
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def depth(self) -> int:
        depth, cur = 1, self.parent
        while cur is not None:
            depth += 1
            cur = cur.parent
        return depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Loop(header={self.header!r}, {len(self.body)} blocks)"


def find_loops(cfg: CFG, dom: Optional[DominatorTree] = None) -> List[Loop]:
    """All natural loops of ``cfg``, with the nesting forest linked up.

    Returns loops ordered outermost-first.
    """
    dom = dom or dominator_tree(cfg)
    reachable = cfg.reachable()
    bodies: Dict[str, Set[str]] = {}
    for tail in cfg.labels:
        if tail not in reachable:
            continue
        for head in cfg.successors(tail):
            if head == EXIT or head not in reachable:
                continue
            if dom.dominates(head, tail):
                body = bodies.setdefault(head, {head})
                _grow_loop(cfg, head, tail, body)

    loops = [Loop(header, body) for header, body in bodies.items()]
    # Nesting: loop A is inside loop B iff A's header is in B's body and
    # A != B; choose the smallest enclosing body as the parent.
    for loop in loops:
        candidates = [other for other in loops
                      if other is not loop and loop.header in other.body
                      and loop.body <= other.body]
        if candidates:
            parent = min(candidates, key=lambda l: len(l.body))
            loop.parent = parent
            parent.children.append(loop)
    loops.sort(key=lambda l: l.depth)
    return loops


def _grow_loop(cfg: CFG, header: str, tail: str, body: Set[str]) -> None:
    """Add to ``body`` all nodes reaching ``tail`` without passing header."""
    stack = [tail]
    while stack:
        node = stack.pop()
        if node in body:
            continue
        body.add(node)
        for pred in cfg.predecessors(node):
            if pred not in body:
                stack.append(pred)


def innermost_loop(loops: List[Loop], label: str) -> Optional[Loop]:
    """The innermost loop containing block ``label``, if any."""
    best: Optional[Loop] = None
    for loop in loops:
        if label in loop.body:
            if best is None or len(loop.body) < len(best.body):
                best = loop
    return best
