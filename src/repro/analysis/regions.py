"""The region graph (Section 3.1.1).

"A region represents a loop, a loop body, or a procedure in the program.
Derived using CFG information, a region graph is a hierarchical program
representation that uses edges to connect a parent region to its child
regions, that is, from callers to callees, and from an outer scope to an
inner scope."

Region-based slicing walks this graph outward from the innermost region
containing a delinquent load, growing the slice until the slack is large
enough; region/model selection (Section 3.4.1) walks it with the
reduced-miss-cycle threshold.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..isa.instructions import Instruction
from ..isa.program import Program
from .callgraph import CallGraph
from .cfg import CFG
from .dominance import dominator_tree
from .loops import Loop, find_loops, innermost_loop

PROCEDURE, LOOP = "procedure", "loop"


class Region:
    """One region: a procedure or a (natural) loop."""

    def __init__(self, kind: str, function: str,
                 blocks: Set[str], loop: Optional[Loop] = None):
        self.kind = kind
        self.function = function
        self.blocks = blocks
        self.loop = loop
        self.parent: Optional["Region"] = None
        self.children: List["Region"] = []
        #: Estimated iterations per entry (1 for non-loop regions,
        #: Section 3.4.1); filled in from block profiles when available.
        self.trip_count: float = 1.0
        #: Total times the region was entered (profile).
        self.entries: int = 0

    @property
    def name(self) -> str:
        if self.kind == PROCEDURE:
            return f"proc:{self.function}"
        return f"loop:{self.function}:{self.loop.header}"

    @property
    def depth(self) -> int:
        depth, cur = 0, self.parent
        while cur is not None:
            depth += 1
            cur = cur.parent
        return depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region({self.name}, trip={self.trip_count:.1f})"


class RegionGraph:
    """All regions of a program, linked outer->inner and caller->callee."""

    def __init__(self, program: Program, callgraph: CallGraph,
                 block_freq: Optional[Dict[str, Dict[str, int]]] = None):
        """``block_freq`` maps function -> {block label -> execution count}
        (from the block profile)."""
        self.program = program
        self.callgraph = callgraph
        self.cfgs: Dict[str, CFG] = {}
        self.proc_region: Dict[str, Region] = {}
        self.loops: Dict[str, List[Loop]] = {}
        self._loop_region: Dict[str, Dict[str, Region]] = {}
        self.regions: List[Region] = []
        block_freq = block_freq or {}

        for name, func in program.functions.items():
            if not func.blocks:
                continue
            cfg = CFG(func)
            self.cfgs[name] = cfg
            proc = Region(PROCEDURE, name, set(cfg.labels))
            self.proc_region[name] = proc
            self.regions.append(proc)
            loops = find_loops(cfg, dominator_tree(cfg))
            self.loops[name] = loops
            per_header: Dict[str, Region] = {}
            for loop in loops:
                region = Region(LOOP, name, set(loop.body), loop)
                per_header[loop.header] = region
                self.regions.append(region)
            self._loop_region[name] = per_header
            # Link the scope hierarchy inside the function.
            for loop in loops:
                region = per_header[loop.header]
                if loop.parent is not None:
                    region.parent = per_header[loop.parent.header]
                else:
                    region.parent = proc
                region.parent.children.append(region)
            self._estimate_trip_counts(name, cfg, block_freq.get(name, {}))

    def _estimate_trip_counts(self, name: str, cfg: CFG,
                              freq: Dict[str, int]) -> None:
        for loop in self.loops[name]:
            region = self._loop_region[name][loop.header]
            header_count = freq.get(loop.header, 0)
            entry_count = 0
            for pred in cfg.predecessors(loop.header):
                if pred not in loop.body:
                    entry_count += freq.get(pred, 0)
            region.entries = entry_count
            if header_count and entry_count:
                region.trip_count = header_count / entry_count
            elif header_count:
                region.trip_count = float(header_count)
            else:
                # No profile: estimate (the paper: "the trip counts are
                # derived from block profiling if available; otherwise,
                # they are estimated").
                region.trip_count = 100.0

    # -- lookup ---------------------------------------------------------------------

    def region_of_block(self, function: str, label: str) -> Region:
        """Innermost region containing block ``label``."""
        loops = self.loops.get(function, [])
        loop = innermost_loop(loops, label)
        if loop is not None:
            return self._loop_region[function][loop.header]
        return self.proc_region[function]

    def region_of_instruction(self, instr: Instruction) -> Region:
        for name, func in self.program.functions.items():
            for block in func.blocks:
                for ins in block.instrs:
                    if ins.uid == instr.uid:
                        return self.region_of_block(name, block.label)
        raise KeyError(f"instruction uid {instr.uid} not in program")

    def instructions_in(self, region: Region) -> List[Instruction]:
        func = self.program.function(region.function)
        out: List[Instruction] = []
        for block in func.blocks:
            if block.label in region.blocks:
                out.extend(block.instrs)
        return out

    def outward_chain(self, region: Region) -> Iterable[Region]:
        """The region and its enclosing scopes, innermost first, extended
        through call sites into callers (the order region-based slicing
        grows the slack, Section 3.1.1)."""
        cur: Optional[Region] = region
        while cur is not None:
            yield cur
            if cur.parent is not None:
                cur = cur.parent
                continue
            # Procedure region: continue in the (unique, non-recursive)
            # caller's innermost region around the call site.
            callers = self.callgraph.callers(cur.function)
            if len(callers) != 1:
                return
            (caller,) = callers
            if self.callgraph.is_recursive(cur.function) or \
                    caller == cur.function:
                return
            sites = self.callgraph.call_sites_of(caller, cur.function)
            if len(sites) != 1:
                return
            func = self.program.function(caller)
            site_block = None
            for block in func.blocks:
                for ins in block.instrs:
                    if ins.uid == sites[0].uid:
                        site_block = block.label
                        break
            if site_block is None:
                return
            cur = self.region_of_block(caller, site_block)
