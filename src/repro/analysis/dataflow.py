"""Register dataflow: reaching definitions, def-use chains, liveness.

Instruction-granular, per function.  Calls are modelled with their implicit
register effects: a call *uses* the outgoing-argument registers and
*defines* the return-value register, so dependences flow correctly through
call boundaries without interprocedural analysis (that part is the slicer's
job).

Bitsets are plain Python ints, which keeps the iterative solvers fast for
the function sizes the post-pass tool sees.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..isa import registers as regs
from ..isa.instructions import Instruction
from ..isa.program import Function
from .cfg import CFG, EXIT


def instruction_uses(instr: Instruction, func: Function) -> Tuple[str, ...]:
    """Registers read, including implicit call/ret conventions."""
    if instr.op == "br.call":
        n = _callee_arity(instr, func)
        return tuple(regs.arg_register(i) for i in range(n))
    if instr.op == "br.call.ind":
        return instr.reads + tuple(
            regs.arg_register(i) for i in range(regs.MAX_ARGS))
    if instr.op == "br.ret":
        return (regs.RET_VALUE,)
    return instr.reads


def _callee_arity(instr: Instruction, func: Function) -> int:
    # The caller's Function has no link to the program; assume the full
    # window unless a num_params annotation travels on the instruction.
    return regs.MAX_ARGS


def instruction_defs(instr: Instruction) -> Tuple[str, ...]:
    """Registers written, including the implicit call return value."""
    if instr.op in ("br.call", "br.call.ind"):
        return (regs.RET_VALUE,)
    return instr.writes


class FunctionDataflow:
    """Reaching definitions and def-use chains for one function."""

    def __init__(self, func: Function, cfg: CFG):
        self.func = func
        self.cfg = cfg
        #: All instructions in layout order.
        self.instrs: List[Instruction] = list(func.instructions())
        self.position: Dict[int, int] = {
            ins.uid: i for i, ins in enumerate(self.instrs)}
        self.block_of: Dict[int, str] = {}
        for block in func.blocks:
            for ins in block.instrs:
                self.block_of[ins.uid] = block.label
        self._defs_by_reg: Dict[str, List[int]] = {}
        self._def_index: Dict[int, int] = {}  # position -> global def id
        self._def_positions: List[int] = []
        for i, ins in enumerate(self.instrs):
            for reg in instruction_defs(ins):
                if reg == regs.ZERO:
                    continue
                self._def_index[i] = len(self._def_positions)
                self._def_positions.append(i)
                self._defs_by_reg.setdefault(reg, []).append(i)
        self._solve_reaching()
        self._build_du_chains()

    # -- reaching definitions ------------------------------------------------------

    def _solve_reaching(self) -> None:
        func, cfg = self.func, self.cfg
        # Per block: gen/kill bitsets over def ids.
        reg_mask: Dict[str, int] = {}
        for reg, positions in self._defs_by_reg.items():
            mask = 0
            for pos in positions:
                mask |= 1 << self._def_index[pos]
            reg_mask[reg] = mask

        gen: Dict[str, int] = {}
        kill: Dict[str, int] = {}
        offset = 0
        block_start: Dict[str, int] = {}
        for block in func.blocks:
            block_start[block.label] = offset
            g = k = 0
            for j, ins in enumerate(block.instrs):
                for reg in instruction_defs(ins):
                    if reg == regs.ZERO:
                        continue
                    did = self._def_index[offset + j]
                    k |= reg_mask[reg]
                    g = (g & ~reg_mask[reg]) | (1 << did)
            gen[block.label], kill[block.label] = g, k
            offset += len(block.instrs)
        self._block_start = block_start

        live_in: Dict[str, int] = {label: 0 for label in cfg.labels}
        changed = True
        order = [l for l in cfg.reverse_postorder() if l != EXIT]
        while changed:
            changed = False
            for label in order:
                in_set = 0
                for pred in cfg.predecessors(label):
                    if pred == EXIT:
                        continue
                    in_set |= (live_in[pred] & ~kill[pred]) | gen[pred]
                if in_set != live_in[label]:
                    live_in[label] = in_set
                    changed = True
        self._reach_in = live_in

    # -- def-use chains ---------------------------------------------------------------

    def _build_du_chains(self) -> None:
        """use (uid, reg) -> set of defining instruction uids."""
        self.use_defs: Dict[Tuple[int, str], Set[int]] = {}
        self.def_uses: Dict[Tuple[int, str], Set[int]] = {}
        func = self.func
        for block in func.blocks:
            start = self._block_start[block.label]
            current: Dict[str, int] = {}  # reg -> def position in block
            reaching = self._reach_in.get(block.label, 0)
            for j, ins in enumerate(block.instrs):
                pos = start + j
                for reg in instruction_uses(ins, func):
                    if reg in (regs.ZERO, regs.TRUE_PREDICATE):
                        continue
                    defs: Set[int] = set()
                    if reg in current:
                        defs.add(self.instrs[current[reg]].uid)
                    else:
                        for dpos in self._defs_by_reg.get(reg, []):
                            if reaching >> self._def_index[dpos] & 1:
                                defs.add(self.instrs[dpos].uid)
                    if defs:
                        self.use_defs[(ins.uid, reg)] = defs
                        for d in defs:
                            self.def_uses.setdefault(
                                (d, reg), set()).add(ins.uid)
                for reg in instruction_defs(ins):
                    if reg == regs.ZERO:
                        continue
                    current[reg] = pos

    def defs_reaching_use(self, uid: int, reg: str) -> Set[int]:
        return self.use_defs.get((uid, reg), set())

    def uses_of_def(self, uid: int, reg: str) -> Set[int]:
        return self.def_uses.get((uid, reg), set())


def block_liveness(func: Function, cfg: CFG) -> Tuple[Dict[str, Set[str]],
                                                      Dict[str, Set[str]]]:
    """(live_in, live_out) register sets per basic block."""
    use: Dict[str, Set[str]] = {}
    defined: Dict[str, Set[str]] = {}
    for block in func.blocks:
        u: Set[str] = set()
        d: Set[str] = set()
        for ins in block.instrs:
            for reg in instruction_uses(ins, func):
                if reg not in d and reg not in (regs.ZERO,
                                                regs.TRUE_PREDICATE):
                    u.add(reg)
            for reg in instruction_defs(ins):
                d.add(reg)
        use[block.label], defined[block.label] = u, d

    live_in: Dict[str, Set[str]] = {l: set() for l in cfg.labels}
    live_out: Dict[str, Set[str]] = {l: set() for l in cfg.labels}
    changed = True
    while changed:
        changed = False
        for label in reversed(cfg.reverse_postorder()):
            if label == EXIT:
                continue
            out: Set[str] = set()
            for succ in cfg.successors(label):
                if succ != EXIT:
                    out |= live_in[succ]
            new_in = use[label] | (out - defined[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_in, live_out
