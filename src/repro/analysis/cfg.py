"""Control-flow graph view of a function.

Wraps a :class:`repro.isa.program.Function` with predecessor/successor maps,
a virtual exit node (so post-dominance is well defined for functions with
several ``ret``/``halt``/``kill`` exits), and reachability helpers.  All
later analyses (dominance, loops, regions, dependence) work on this view.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..isa.program import Function

#: Label of the virtual exit node.
EXIT = "<exit>"


class CFG:
    """Intra-procedural control-flow graph at basic-block granularity."""

    def __init__(self, func: Function):
        self.func = func
        self.entry = func.entry.label
        self.labels: List[str] = [b.label for b in func.blocks]
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {label: [] for label in self.labels}
        self.preds[EXIT] = []
        for block in func.blocks:
            succ = func.successors(block)
            if not succ:
                succ = [EXIT]
            self.succs[block.label] = succ
            for s in succ:
                self.preds.setdefault(s, []).append(block.label)
        self.succs[EXIT] = []

    @property
    def nodes(self) -> List[str]:
        """All nodes including the virtual exit."""
        return self.labels + [EXIT]

    def successors(self, label: str) -> List[str]:
        return self.succs[label]

    def predecessors(self, label: str) -> List[str]:
        return self.preds.get(label, [])

    def reachable(self) -> Set[str]:
        """Labels reachable from the entry."""
        seen = {self.entry}
        work = [self.entry]
        while work:
            node = work.pop()
            for succ in self.succs.get(node, []):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def reverse_postorder(self) -> List[str]:
        """Reverse postorder over reachable nodes (entry first)."""
        seen: Set[str] = set()
        order: List[str] = []

        def visit(start: str) -> None:
            stack = [(start, iter(self.succs.get(start, [])))]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs.get(succ, []))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def edges(self) -> Iterable[tuple]:
        for src, dsts in self.succs.items():
            for dst in dsts:
                yield src, dst
