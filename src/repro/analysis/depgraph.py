"""The latency-annotated dependence graph of a function.

Section 3.2: "the scheduling algorithm requires latency information in
combination with the dependence graph.  The latency of a memory operation is
determined by cache profiling, and the machine model provides latency
estimates for other instructions.  The latency information is annotated on
a dependence graph edge."

Edge kinds:

* ``flow`` — true register dependence (def -> use), from the reaching-defs
  solution.  ``loop_carried`` is set when the def sits at or after the use
  in layout order (the dependence wraps around a back edge).
* ``anti`` / ``output`` — false dependences, recorded *intra-iteration
  only*: the slicer and the chaining scheduler both ignore loop-carried
  false dependences (Sections 3.1 and 3.2.1.1), and across chained threads
  they are void anyway because every speculative thread has a private
  register file.
* ``control`` — instruction -> controlling conditional branch, from the
  post-dominance-frontier control-dependence analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..isa import registers as regs
from ..isa.instructions import Instruction
from ..isa.program import Function
from .cfg import CFG
from .dataflow import FunctionDataflow, instruction_defs, instruction_uses
from .dominance import control_dependences

FLOW, ANTI, OUTPUT, CONTROL = "flow", "anti", "output", "control"


class DepEdge:
    """A dependence edge ``src`` -> ``dst`` (dst depends on src)."""

    __slots__ = ("src", "dst", "kind", "loop_carried", "latency")

    def __init__(self, src: int, dst: int, kind: str,
                 loop_carried: bool = False, latency: int = 1):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.loop_carried = loop_carried
        self.latency = latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lc = " carried" if self.loop_carried else ""
        return f"DepEdge({self.src}->{self.dst} {self.kind}{lc} " \
               f"lat={self.latency})"


class DependenceGraph:
    """Dependence graph over one function's instructions (keyed by uid)."""

    def __init__(self, func: Function, cfg: CFG,
                 load_latency: Optional[Dict[int, float]] = None,
                 l1_latency: int = 2):
        self.func = func
        self.cfg = cfg
        self.dataflow = FunctionDataflow(func, cfg)
        self.instr_of: Dict[int, Instruction] = {
            ins.uid: ins for ins in self.dataflow.instrs}
        self.position = self.dataflow.position
        self.block_of = self.dataflow.block_of
        self._load_latency = load_latency or {}
        self._l1_latency = l1_latency
        self.out_edges: Dict[int, List[DepEdge]] = {
            uid: [] for uid in self.instr_of}
        self.in_edges: Dict[int, List[DepEdge]] = {
            uid: [] for uid in self.instr_of}
        self._build_flow_edges()
        self._build_false_edges()
        self._build_control_edges()
        self._height_cache: Dict[int, int] = {}

    # -- latency model -----------------------------------------------------------------

    def latency(self, uid: int) -> int:
        """Estimated latency of an instruction (profiled for loads)."""
        instr = self.instr_of[uid]
        if instr.op == "ld":
            profiled = self._load_latency.get(uid)
            if profiled is not None:
                return max(self._l1_latency, int(round(profiled)))
            return self._l1_latency
        return instr.fixed_latency()

    # -- construction --------------------------------------------------------------------

    def _add(self, edge: DepEdge) -> None:
        self.out_edges[edge.src].append(edge)
        self.in_edges[edge.dst].append(edge)

    def _build_flow_edges(self) -> None:
        position = self.position
        for (use_uid, reg), defs in self.dataflow.use_defs.items():
            for def_uid in defs:
                carried = position[def_uid] >= position[use_uid]
                self._add(DepEdge(def_uid, use_uid, FLOW, carried,
                                  self.latency(def_uid)))

    def _build_false_edges(self) -> None:
        """Intra-iteration anti/output dependences (positional, forward)."""
        last_def: Dict[str, int] = {}
        last_uses: Dict[str, List[int]] = {}
        for ins in self.dataflow.instrs:
            for reg in instruction_uses(ins, self.func):
                if reg in (regs.ZERO, regs.TRUE_PREDICATE):
                    continue
                last_uses.setdefault(reg, []).append(ins.uid)
            for reg in instruction_defs(ins):
                if reg == regs.ZERO:
                    continue
                for use_uid in last_uses.get(reg, []):
                    if use_uid != ins.uid:
                        self._add(DepEdge(use_uid, ins.uid, ANTI, False, 0))
                last_uses[reg] = []
                if reg in last_def and last_def[reg] != ins.uid:
                    self._add(DepEdge(last_def[reg], ins.uid, OUTPUT,
                                      False, 0))
                last_def[reg] = ins.uid

    def _build_control_edges(self) -> None:
        cdeps = control_dependences(self.cfg)
        terminator_of: Dict[str, Optional[int]] = {}
        for block in self.func.blocks:
            term = None
            if block.instrs and block.instrs[-1].op == "br.cond":
                term = block.instrs[-1].uid
            terminator_of[block.label] = term
        for block in self.func.blocks:
            controllers = cdeps.get(block.label, set())
            for ctrl_label in controllers:
                branch_uid = terminator_of.get(ctrl_label)
                if branch_uid is None:
                    continue
                for ins in block.instrs:
                    if ins.uid == branch_uid:
                        continue
                    carried = (self.position[branch_uid]
                               >= self.position[ins.uid])
                    self._add(DepEdge(branch_uid, ins.uid, CONTROL, carried,
                                      self.latency(branch_uid)))

    # -- queries ------------------------------------------------------------------------

    def preds(self, uid: int, kinds: Optional[Set[str]] = None,
              include_carried: bool = True) -> Iterable[DepEdge]:
        for edge in self.in_edges.get(uid, []):
            if kinds is not None and edge.kind not in kinds:
                continue
            if not include_carried and edge.loop_carried:
                continue
            yield edge

    def succs(self, uid: int, kinds: Optional[Set[str]] = None,
              include_carried: bool = True) -> Iterable[DepEdge]:
        for edge in self.out_edges.get(uid, []):
            if kinds is not None and edge.kind not in kinds:
                continue
            if not include_carried and edge.loop_carried:
                continue
            yield edge

    # -- dependence height (Section 3.2.1.2.2) ---------------------------------------------

    def height(self, uid: int, within: Optional[Set[int]] = None) -> int:
        """Max latency-weighted path length from ``uid`` downward.

        Loop-carried edges are excluded (heights are per-iteration).  When
        ``within`` is given, only nodes in that set participate.
        """
        cache_key = uid if within is None else None
        if cache_key is not None and cache_key in self._height_cache:
            return self._height_cache[cache_key]
        # Iterative DFS with memoisation local to the `within` filter.
        memo: Dict[int, int] = self._height_cache if within is None else {}
        stack = [(uid, False)]
        while stack:
            node, expanded = stack.pop()
            if node in memo:
                continue
            if expanded:
                best = self.latency(node)
                for edge in self.out_edges.get(node, []):
                    if edge.loop_carried or edge.kind in (ANTI, OUTPUT):
                        continue
                    if within is not None and edge.dst not in within:
                        continue
                    child = memo.get(edge.dst, 0) + self.latency(node)
                    if child > best:
                        best = child
                memo[node] = best
            else:
                stack.append((node, True))
                for edge in self.out_edges.get(node, []):
                    if edge.loop_carried or edge.kind in (ANTI, OUTPUT):
                        continue
                    if within is not None and edge.dst not in within:
                        continue
                    if edge.dst not in memo:
                        stack.append((edge.dst, False))
        return memo.get(uid, self.latency(uid))

    def max_height(self, uids: Iterable[int],
                   within: Optional[Set[int]] = None) -> int:
        """``height(region_or_slice)`` = max node height (Section 3.2.1.2.2)."""
        return max((self.height(u, within) for u in uids), default=0)

    def available_ilp(self, uids: Set[int]) -> float:
        """Sum of latencies / critical path (Cooper's available-ILP metric,
        Section 3.2.1.2.2)."""
        total = sum(self.latency(u) for u in uids)
        critical = self.max_height(uids, within=uids)
        return total / critical if critical else 1.0
