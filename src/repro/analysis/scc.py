"""Strongly connected components (iterative Tarjan).

Used by the chaining-SP scheduler's graph-partitioning phase
(Section 3.2.1.2.1): "We use the strongly connected components (SCC)
algorithm to partition a dependence graph ... our heuristics schedules all
instructions in an SCC first before scheduling instructions in another
SCC."
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List


def strongly_connected_components(
        nodes: Iterable[Hashable],
        successors: Callable[[Hashable], Iterable[Hashable]]
) -> List[List[Hashable]]:
    """Tarjan's algorithm, iterative (no recursion-limit issues).

    Returns SCCs in reverse topological order (callees/leaves first), each
    as a list of nodes.  A single node with no self-edge forms a degenerate
    SCC of size one.
    """
    index: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Dict[Hashable, bool] = {}
    stack: List[Hashable] = []
    result: List[List[Hashable]] = []
    counter = [0]

    def strongconnect(root: Hashable) -> None:
        work = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    if index[succ] < lowlink[node]:
                        lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                comp: List[Hashable] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == node:
                        break
                result.append(comp)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return result


def condensation_order(sccs: List[List[Hashable]]) -> Dict[Hashable, int]:
    """Map each node to its SCC index (indices in reverse topo order)."""
    out: Dict[Hashable, int] = {}
    for i, comp in enumerate(sccs):
        for node in comp:
            out[node] = i
    return out
