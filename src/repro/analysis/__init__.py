"""Program analyses: CFG, dominance, loops, dataflow, dependence, regions."""

from .cfg import CFG, EXIT
from .dominance import (
    DominatorTree,
    control_dependences,
    dominator_tree,
    postdominator_tree,
)
from .loops import Loop, find_loops, innermost_loop
from .scc import condensation_order, strongly_connected_components
from .dataflow import (
    FunctionDataflow,
    block_liveness,
    instruction_defs,
    instruction_uses,
)
from .depgraph import ANTI, CONTROL, FLOW, OUTPUT, DepEdge, DependenceGraph
from .callgraph import CallGraph, CallSite
from .regions import LOOP, PROCEDURE, Region, RegionGraph

__all__ = [
    "CFG", "EXIT",
    "DominatorTree", "control_dependences", "dominator_tree",
    "postdominator_tree",
    "Loop", "find_loops", "innermost_loop",
    "condensation_order", "strongly_connected_components",
    "FunctionDataflow", "block_liveness", "instruction_defs",
    "instruction_uses",
    "ANTI", "CONTROL", "FLOW", "OUTPUT", "DepEdge", "DependenceGraph",
    "CallGraph", "CallSite",
    "LOOP", "PROCEDURE", "Region", "RegionGraph",
]
