"""mst (Olden) — minimum-spanning-tree with hash-table adjacency.

Olden's mst stores edge weights in per-vertex hash tables; the kernel's
hot path walks a vertex list and performs a hash lookup per vertex pair:

    for v in vertices:                # pointer-chased list
        d = HashLookup(v->key, hash_table)
        total += d

``HashLookup`` walks a bucket chain of scattered entries — its loads are
delinquent and live in a *callee*, so the slice of their addresses is
interprocedural (Table 2 credits mst with an interprocedural slice).
"""

from __future__ import annotations

import random
from typing import Optional

from ..isa.builder import FunctionBuilder
from ..isa.memory import Heap
from ..isa.program import Program
from .base import Workload, register

VERTEX_BYTES = 64
ENTRY_BYTES = 64
OFF_V_NEXT = 0
OFF_V_KEY = 8
OFF_E_NEXT = 0
OFF_E_KEY = 8
OFF_E_VALUE = 16


@register
class MSTWorkload(Workload):
    name = "mst"
    description = "vertex walk with hash-bucket lookups (interprocedural)"
    suite = "Olden"

    PARAMS = {
        "tiny": dict(nvertices=120, nbuckets=32, chain=2),
        "small": dict(nvertices=600, nbuckets=128, chain=2),
        "default": dict(nvertices=1800, nbuckets=256, chain=3),
    }

    def __init__(self, scale: str = "default", seed: int = 20020617):
        super().__init__(scale, seed)
        p = self.PARAMS[scale]
        self.nvertices = p["nvertices"]
        self.nbuckets = p["nbuckets"]
        self.chain = p["chain"]

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        buckets = heap.alloc(self.nbuckets * 8, align=64)
        # Bucket chains: `chain` entries per bucket, scattered.
        entries = {}
        all_entries = []
        for b in range(self.nbuckets):
            chain_addrs = [heap.alloc(ENTRY_BYTES, align=64)
                           for _ in range(self.chain)]
            all_entries.append(chain_addrs)
        # Shuffle physical placement effect by interleaved allocation above;
        # now link and fill.
        expected = 0
        values = {}
        for b, chain_addrs in enumerate(all_entries):
            rng.shuffle(chain_addrs)
            heap.store(buckets + b * 8, chain_addrs[0])
            for depth, addr in enumerate(chain_addrs):
                nxt = chain_addrs[depth + 1] if depth + 1 < len(
                    chain_addrs) else 0
                key = b + (depth * self.nbuckets)
                value = rng.randrange(1, 500)
                heap.store(addr + OFF_E_NEXT, nxt)
                heap.store(addr + OFF_E_KEY, key)
                heap.store(addr + OFF_E_VALUE, value)
                values[key] = value
        vertices = [heap.alloc(VERTEX_BYTES, align=64)
                    for _ in range(self.nvertices)]
        rng.shuffle(vertices)
        for i, v in enumerate(vertices):
            nxt = vertices[i + 1] if i + 1 < len(vertices) else 0
            # Key hits a uniformly random chain position.
            key = rng.randrange(0, self.nbuckets * self.chain)
            heap.store(v + OFF_V_NEXT, nxt)
            heap.store(v + OFF_V_KEY, key)
            expected += values[key]
        out = heap.alloc(8)
        return {"head": vertices[0], "buckets": buckets, "out": out,
                "expected": expected}

    def expected_output(self, layout: dict) -> Optional[int]:
        return layout["expected"]

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")

        # int HashLookup(key, table)
        hl = FunctionBuilder(prog.add_function("HashLookup", num_params=2))
        key, table = hl.params(2)
        idx = hl.and_(key, imm=self.nbuckets - 1)
        slot = hl.shl(idx, 3)
        baddr = hl.add(table, slot)
        hl.load(baddr, 0, dest="r105")                 # bucket head
        hl.label("walk")
        ekey = hl.load("r105", OFF_E_KEY)              # delinquent
        pm = hl.cmp("eq", ekey, key)
        hl.br_cond(pm, "found")
        hl.load("r105", OFF_E_NEXT, dest="r105")        # delinquent chase
        pz = hl.cmp("ne", "r105", imm=0)
        hl.br_cond(pz, "walk")
        hl.ret(hl.mov_imm(0))                         # not found
        hl.label("found")
        val = hl.load("r105", OFF_E_VALUE)
        hl.ret(val)

        fb = FunctionBuilder(prog.add_function("main"))
        fb.mov_imm(0, dest="r110")                     # total
        fb.mov_imm(layout["head"], dest="r100")        # vertex cursor
        fb.mov_imm(layout["buckets"], dest="r101")
        fb.nop()                                      # trigger slot
        fb.label("vertex_loop")
        vkey = fb.load("r100", OFF_V_KEY, dest="r102")  # delinquent
        d = fb.call_fresh("HashLookup", ["r102", "r101"])
        fb.add("r110", d, dest="r110")
        fb.load("r100", OFF_V_NEXT, dest="r100")        # delinquent chase
        p = fb.cmp("ne", "r100", imm=0)
        fb.br_cond(p, "vertex_loop")
        o = fb.mov_imm(layout["out"])
        fb.store(o, "r110")
        fb.halt()
        return prog
