"""Workload infrastructure.

A :class:`Workload` packages one benchmark kernel: the IR program and a
deterministic heap initialiser.  Programs embed absolute data addresses
(as a loader-relocated binary would), so the heap layout must be bit-for-
bit reproducible — every ``build_heap()`` call replays the same seeded
allocation sequence, letting callers run the same program object many
times on fresh data.

Workloads sprinkle ``nop`` instructions near loop preheaders the way an
Itanium code generator leaves scheduling nops; the post-pass tool replaces
one with its ``chk.c`` trigger (Figure 7).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Type

from ..isa.memory import Heap
from ..isa.program import Program

#: Scale presets: "tiny" for unit tests, "small" for quick integration
#: runs, "default" for the experiment harness.
SCALES = ("tiny", "small", "default")


class Workload:
    """Base class for the seven benchmark kernels."""

    #: Registry name, e.g. ``"mcf"``.
    name: str = ""
    #: Short description for reports.
    description: str = ""
    #: Olden or SPEC CPU2000 (provenance, for documentation).
    suite: str = ""

    def __init__(self, scale: str = "default", seed: int = 20020617):
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; expected {SCALES}")
        self.scale = scale
        self.seed = seed
        self._program: Optional[Program] = None
        self._layout: Optional[dict] = None

    # -- subclass API ---------------------------------------------------------------

    def heap_bytes(self) -> int:
        return 1 << 25

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        """Allocate and initialise the data structures; return addresses
        the program needs (deterministic given the seed)."""
        raise NotImplementedError

    def _build_program(self, layout: dict) -> Program:
        """Construct the kernel IR from the layout addresses."""
        raise NotImplementedError

    def expected_output(self, layout: dict) -> Optional[int]:
        """The value the kernel must leave in ``layout['out']`` (None to
        skip checking)."""
        return None

    # -- public API ------------------------------------------------------------------

    def build_heap(self) -> Heap:
        """A fresh heap with the canonical deterministic layout."""
        heap = Heap(self.heap_bytes())
        layout = self._build_layout(heap, random.Random(self.seed))
        if self._layout is None:
            self._layout = layout
        elif layout != self._layout:
            raise RuntimeError(
                f"{self.name}: non-deterministic heap layout — programs "
                "embed addresses, so layouts must replay exactly")
        return heap

    def build_program(self) -> Program:
        """The kernel program (cached; finalised)."""
        if self._program is None:
            if self._layout is None:
                self.build_heap()
            self._program = self._build_program(self._layout)
            self._program.finalize()
        return self._program

    @property
    def layout(self) -> dict:
        if self._layout is None:
            self.build_heap()
        return self._layout

    def check_output(self, heap: Heap) -> None:
        """Assert the kernel produced the expected result on ``heap``."""
        expected = self.expected_output(self.layout)
        if expected is None:
            return
        actual = heap.load(self.layout["out"])
        if actual != expected:
            raise AssertionError(
                f"{self.name}: expected {expected}, got {actual}")


_REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise ValueError("workload needs a name")
    _REGISTRY[cls.name] = cls
    return cls


def workload_names() -> list:
    return sorted(_REGISTRY)


def make_workload(name: str, scale: str = "default") -> Workload:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; have {workload_names()}") from None
    return cls(scale=scale)
