"""The seven pointer-intensive benchmark kernels (Section 4.1)."""

from .base import SCALES, Workload, make_workload, register, workload_names
from .mcf import MCFWorkload
from .vpr import VPRWorkload
from .em3d import EM3DWorkload
from .mst import MSTWorkload
from .health import HealthWorkload
from .treeadd import TreeAddBFWorkload, TreeAddDFWorkload
from .hand import HandHealthWorkload, HandMCFWorkload

#: Benchmark order used in the paper's figures.
PAPER_ORDER = ["em3d", "health", "mst", "treeadd.df", "treeadd.bf",
               "mcf", "vpr"]

__all__ = [
    "SCALES", "Workload", "make_workload", "register", "workload_names",
    "MCFWorkload", "VPRWorkload", "EM3DWorkload", "MSTWorkload",
    "HealthWorkload", "TreeAddBFWorkload", "TreeAddDFWorkload",
    "HandHealthWorkload", "HandMCFWorkload",
    "PAPER_ORDER",
]
