"""mcf (SPEC CPU2000) — the ``primal_bea_map`` arc-scan kernel.

The paper's running example (Figure 3): a strided scan over the arc array
where each arc dereferences its tail node's potential:

    do {
        t = arc;
        u   = load(t->tail);
        ... = load(u->potential);
        arc = t + nr_group;
    } while (arc < K);

Arcs are visited with a large stride (``nr_group``), so every iteration
touches a new cache line; tail nodes are effectively random, so
``u->potential`` misses far down the hierarchy.  Both loads are delinquent.
The kernel makes several passes (mcf's pricing loop re-scans arcs), with a
cost reduction accumulated per arc.
"""

from __future__ import annotations

import random
from typing import Optional

from ..isa.builder import FunctionBuilder
from ..isa.memory import Heap
from ..isa.program import Program
from .base import Workload, register

ARC_STRIDE = 64        # bytes between visited arcs (nr_group * arc size)
NODE_BYTES = 64
OFF_TAIL = 0           # arc->tail
OFF_COST = 8           # arc->cost
OFF_POTENTIAL = 16     # node->potential


@register
class MCFWorkload(Workload):
    name = "mcf"
    description = "primal_bea_map arc scan (Figure 3 kernel)"
    suite = "SPEC CPU2000"

    PARAMS = {
        "tiny": dict(narcs=300, nnodes=128, passes=1),
        "small": dict(narcs=1500, nnodes=512, passes=1),
        "default": dict(narcs=3500, nnodes=1200, passes=2),
    }

    def __init__(self, scale: str = "default", seed: int = 20020617):
        super().__init__(scale, seed)
        p = self.PARAMS[scale]
        self.narcs = p["narcs"]
        self.nnodes = p["nnodes"]
        self.passes = p["passes"]

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        nodes = [heap.alloc(NODE_BYTES, align=64)
                 for _ in range(self.nnodes)]
        arcs = heap.alloc(self.narcs * ARC_STRIDE, align=64)
        expected = 0
        potentials = {}
        for node in nodes:
            potentials[node] = rng.randrange(1, 1000)
            heap.store(node + OFF_POTENTIAL, potentials[node])
        for i in range(self.narcs):
            arc = arcs + i * ARC_STRIDE
            tail = rng.choice(nodes)
            cost = rng.randrange(1, 100)
            heap.store(arc + OFF_TAIL, tail)
            heap.store(arc + OFF_COST, cost)
            expected += self.passes * (potentials[tail] + cost)
        out = heap.alloc(8)
        return {"arcs": arcs, "out": out, "expected": expected,
                "end": arcs + self.narcs * ARC_STRIDE}

    def expected_output(self, layout: dict) -> Optional[int]:
        return layout["expected"]

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        total = fb.mov_imm(0, dest="r110")
        npass = fb.mov_imm(self.passes, dest="r111")

        fb.label("pass_loop")
        fb.mov_imm(layout["arcs"], dest="r100")        # arc
        fb.mov_imm(layout["end"], dest="r101")         # K
        fb.nop()                                      # trigger slot
        fb.label("arc_loop")
        t = fb.mov("r100")                             # A: t = arc
        u = fb.load(t, OFF_TAIL)                      # B: u = t->tail
        pot = fb.load(u, OFF_POTENTIAL)               # C: u->potential
        cost = fb.load(t, OFF_COST)
        red = fb.add(pot, cost)
        fb.add("r110", red, dest="r110")
        fb.add("r100", imm=ARC_STRIDE, dest="r100")     # D: arc += nr_group
        p = fb.cmp("lt", "r100", "r101")
        fb.br_cond(p, "arc_loop")                     # E
        fb.sub("r111", imm=1, dest="r111")
        p2 = fb.cmp("gt", "r111", imm=0)
        fb.br_cond(p2, "pass_loop")

        o = fb.mov_imm(layout["out"])
        fb.store(o, "r110")
        fb.halt()
        return prog
