"""health (Olden) — Colombian health-care system simulation.

A four-ary tree of villages is traversed recursively; each village walks
its (scattered) patient list:

    long sim(village):
        if village == 0: return 0
        t = 0
        for i in 0..3: t += sim(village->child[i])
        p = village->patients
        while p: t += p->time; p = p->next
        return t + village->base

The patient-list loads are the delinquent loads.  The loop lives inside a
recursive procedure, so the region traversal stops at the procedure
boundary (the tool cannot inline recursion — the gap hand adaptation
exploits in Section 4.5); chaining SP with a predicted spawn condition
covers the list walk.
"""

from __future__ import annotations

import random
from typing import Optional

from ..isa.builder import FunctionBuilder
from ..isa.memory import Heap
from ..isa.program import Program
from .base import Workload, register

VILLAGE_BYTES = 64
PATIENT_BYTES = 64
OFF_CHILD = 0            # 4 children: offsets 0, 8, 16, 24
OFF_PATIENTS = 32
OFF_BASE = 40
OFF_P_NEXT = 0
OFF_P_TIME = 8
CHILDREN = 4


@register
class HealthWorkload(Workload):
    name = "health"
    description = "recursive village tree with scattered patient lists"
    suite = "Olden"

    PARAMS = {
        "tiny": dict(levels=3, patients=6),
        "small": dict(levels=4, patients=8),
        "default": dict(levels=5, patients=10),
    }

    def __init__(self, scale: str = "default", seed: int = 20020617):
        super().__init__(scale, seed)
        p = self.PARAMS[scale]
        self.levels = p["levels"]
        self.patients = p["patients"]

    def heap_bytes(self) -> int:
        return 1 << 26

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        # Allocate villages level by level, then patients shuffled so the
        # list walk is cache hostile.
        villages = []
        level_nodes = [heap.alloc(VILLAGE_BYTES, align=64)]
        villages.extend(level_nodes)
        for _ in range(self.levels - 1):
            nxt = []
            for parent in level_nodes:
                kids = [heap.alloc(VILLAGE_BYTES, align=64)
                        for _ in range(CHILDREN)]
                for i, kid in enumerate(kids):
                    heap.store(parent + OFF_CHILD + i * 8, kid)
                nxt.extend(kids)
            villages.extend(nxt)
            level_nodes = nxt

        patient_pool = [heap.alloc(PATIENT_BYTES, align=64)
                        for _ in range(len(villages) * self.patients)]
        rng.shuffle(patient_pool)
        expected = 0
        cursor = 0
        for village in villages:
            base = rng.randrange(1, 16)
            heap.store(village + OFF_BASE, base)
            expected += base
            plist = patient_pool[cursor:cursor + self.patients]
            cursor += self.patients
            heap.store(village + OFF_PATIENTS, plist[0] if plist else 0)
            for i, patient in enumerate(plist):
                nxt = plist[i + 1] if i + 1 < len(plist) else 0
                time = rng.randrange(1, 32)
                heap.store(patient + OFF_P_NEXT, nxt)
                heap.store(patient + OFF_P_TIME, time)
                expected += time
        out = heap.alloc(8)
        return {"root": villages[0], "out": out, "expected": expected}

    def expected_output(self, layout: dict) -> Optional[int]:
        return layout["expected"]

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")

        sim = FunctionBuilder(prog.add_function("sim", num_params=1))
        (village,) = sim.params(1)
        pz = sim.cmp("eq", village, imm=0)
        sim.br_cond(pz, "leaf")
        total = sim.mov_imm(0, dest="r110")
        # The patient-list head is loop invariant; the compiler hoists it
        # above the recursion (its line is needed for OFF_BASE anyway).
        # The SSP trigger lands right after this producer, so the patient
        # chain prefetches while the subtree recursion runs.
        sim.load(village, OFF_PATIENTS, dest="r111")   # patient cursor
        base = sim.load(village, OFF_BASE, dest="r112")
        sim.nop()                                     # trigger slot
        for i in range(CHILDREN):
            child = sim.load(village, OFF_CHILD + i * 8)
            sub = sim.call_fresh("sim", [child])
            sim.add("r110", sub, dest="r110")
        pempty = sim.cmp("eq", "r111", imm=0)
        sim.br_cond(pempty, "done")
        sim.label("patient_loop")
        t = sim.load("r111", OFF_P_TIME)               # delinquent
        sim.add("r110", t, dest="r110")
        sim.load("r111", OFF_P_NEXT, dest="r111")       # delinquent chase
        pp = sim.cmp("ne", "r111", imm=0)
        sim.br_cond(pp, "patient_loop")
        sim.label("done")
        result = sim.add("r110", "r112")
        sim.ret(result)
        sim.label("leaf")
        sim.ret(sim.mov_imm(0))

        fb = FunctionBuilder(prog.add_function("main"))
        root = fb.mov_imm(layout["root"])
        total = fb.call_fresh("sim", [root])
        # The recursion returns child totals only at leaves = 0; the
        # interior villages' patients are all accumulated in `total`.
        o = fb.mov_imm(layout["out"])
        fb.store(o, total)
        fb.halt()
        return prog
