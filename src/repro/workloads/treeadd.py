"""treeadd (Olden) — depth-first and breadth-first tree sums.

The paper enhances Olden's treeadd to study both traversal orders
(Section 4.1): ``treeadd.df`` performs the classic recursive depth-first
sum; ``treeadd.bf`` walks the same tree breadth-first through an explicit
queue.  Tree nodes are allocated in shuffled order, so every child
dereference is a cache miss.

treeadd.df is the one benchmark whose tool adaptation uses **basic SP**
(Section 4.2): a trigger at ``treeadd`` entry spawns a thread that loads
the child pointers and prefetches the child nodes the upcoming recursive
calls will touch.  treeadd.bf's queue loop is a normal chaining candidate.
"""

from __future__ import annotations

import random
from typing import Optional

from ..isa.builder import FunctionBuilder
from ..isa.memory import Heap
from ..isa.program import Program
from .base import Workload, register

NODE_BYTES = 64
OFF_VALUE = 0
OFF_LEFT = 8
OFF_RIGHT = 16


class _TreeBase(Workload):
    suite = "Olden"

    PARAMS = {
        "tiny": dict(levels=7),
        "small": dict(levels=10),
        "default": dict(levels=12),
    }

    def __init__(self, scale: str = "default", seed: int = 20020617):
        super().__init__(scale, seed)
        self.levels = self.PARAMS[scale]["levels"]

    def heap_bytes(self) -> int:
        return 1 << 26

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        count = (1 << self.levels) - 1
        nodes = [heap.alloc(NODE_BYTES, align=64) for _ in range(count)]
        rng.shuffle(nodes)
        expected = 0
        # Heap-indexed complete binary tree over shuffled addresses.
        for i, node in enumerate(nodes):
            value = rng.randrange(1, 64)
            expected += value
            heap.store(node + OFF_VALUE, value)
            left = 2 * i + 1
            right = 2 * i + 2
            heap.store(node + OFF_LEFT,
                       nodes[left] if left < count else 0)
            heap.store(node + OFF_RIGHT,
                       nodes[right] if right < count else 0)
        out = heap.alloc(8)
        # Queue storage for the breadth-first variant.
        queue = heap.alloc((count + 2) * 8, align=64)
        return {"root": nodes[0], "out": out, "expected": expected,
                "queue": queue, "count": count}

    def expected_output(self, layout: dict) -> Optional[int]:
        return layout["expected"]


@register
class TreeAddDFWorkload(_TreeBase):
    name = "treeadd.df"
    description = "recursive depth-first sum over a shuffled binary tree"

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")

        ta = FunctionBuilder(prog.add_function("treeadd", num_params=1))
        (n,) = ta.params(1)
        pz = ta.cmp("eq", n, imm=0)
        ta.br_cond(pz, "leaf")
        left = ta.load(n, OFF_LEFT, dest="r110")       # delinquent
        right = ta.load(n, OFF_RIGHT, dest="r111")     # same line
        value = ta.load(n, OFF_VALUE, dest="r112")
        ta.nop()                                      # trigger slot
        lsum = ta.call_fresh("treeadd", ["r110"])
        ta.add("r112", lsum, dest="r112")
        rsum = ta.call_fresh("treeadd", ["r111"])
        total = ta.add("r112", rsum)
        ta.ret(total)
        ta.label("leaf")
        ta.ret(ta.mov_imm(0))

        fb = FunctionBuilder(prog.add_function("main"))
        root = fb.mov_imm(layout["root"])
        total = fb.call_fresh("treeadd", [root])
        o = fb.mov_imm(layout["out"])
        fb.store(o, total)
        fb.halt()
        return prog


@register
class TreeAddBFWorkload(_TreeBase):
    name = "treeadd.bf"
    description = "breadth-first sum through an explicit queue"

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        queue = layout["queue"]

        total = fb.mov_imm(0, dest="r110")
        head = fb.mov_imm(0, dest="r111")
        tail = fb.mov_imm(1, dest="r112")
        qbase = fb.mov_imm(queue, dest="r113")
        root = fb.mov_imm(layout["root"])
        fb.store(qbase, root, 0)
        fb.nop()                                      # trigger slot
        fb.label("bfs_loop")
        hoff = fb.shl("r111", 3)
        haddr = fb.add("r113", hoff)
        n = fb.load(haddr, 0, dest="r114")             # queue[head]
        fb.add("r111", imm=1, dest="r111")
        v = fb.load("r114", OFF_VALUE)                 # delinquent
        fb.add("r110", v, dest="r110")
        left = fb.load("r114", OFF_LEFT, dest="r115")
        pl = fb.cmp("ne", "r115", imm=0)
        toff = fb.shl("r112", 3)
        taddr = fb.add("r113", toff)
        fb.store(taddr, "r115", 0, pred=pl)
        fb.add("r112", imm=1, dest="r112", pred=pl)
        right = fb.load("r114", OFF_RIGHT, dest="r116")
        pr = fb.cmp("ne", "r116", imm=0)
        toff2 = fb.shl("r112", 3)
        taddr2 = fb.add("r113", toff2)
        fb.store(taddr2, "r116", 0, pred=pr)
        fb.add("r112", imm=1, dest="r112", pred=pr)
        pcont = fb.cmp("lt", "r111", "r112")
        fb.br_cond(pcont, "bfs_loop")

        o = fb.mov_imm(layout["out"])
        fb.store(o, "r110")
        fb.halt()
        return prog
