"""Hand-adapted SSP binaries for mcf and health (Section 4.5).

"Wang et al. performed hand adaptation on three memory-intensive benchmarks
for speculative precomputation [31].  In contrast, we use the automated
binary adaptation tool ... The common programs from both works are mcf and
health."

The hand versions encode what the tool cannot do automatically:

* **mcf.hand** — the chaining slice covers *two* arc iterations per
  speculative thread, halving the chain's spawn/copy overhead and doubling
  its run-ahead rate.
* **health.hand** — the slice inlines one level of the recursive call
  structure ("the inlining of a few levels of recursive function calls by
  the programmer's hand adaptation to create large enough slack"): besides
  chain-walking the current village's patients, it prefetches all four
  child villages and their patient-list heads.
"""

from __future__ import annotations

from ..isa.builder import FunctionBuilder
from ..isa.program import Program
from .base import register
from .health import (
    CHILDREN,
    OFF_BASE,
    OFF_CHILD,
    OFF_P_NEXT,
    OFF_P_TIME,
    OFF_PATIENTS,
    HealthWorkload,
)
from .mcf import ARC_STRIDE, OFF_COST, OFF_POTENTIAL, OFF_TAIL, MCFWorkload


@register
class HandMCFWorkload(MCFWorkload):
    """mcf with the hand-tuned chaining adaptation attached."""

    name = "mcf.hand"
    description = "hand-adapted mcf: two iterations per chained thread"

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        fb.mov_imm(0, dest="r110")
        fb.mov_imm(self.passes, dest="r111")

        fb.label("pass_loop")
        fb.mov_imm(layout["arcs"], dest="r100")
        fb.mov_imm(layout["end"], dest="r101")
        fb.chk_c("hand_stub")                         # hand trigger
        fb.label("arc_loop")
        t = fb.mov("r100")
        u = fb.load(t, OFF_TAIL)
        pot = fb.load(u, OFF_POTENTIAL)
        cost = fb.load(t, OFF_COST)
        red = fb.add(pot, cost)
        fb.add("r110", red, dest="r110")
        fb.add("r100", imm=ARC_STRIDE, dest="r100")
        p = fb.cmp("lt", "r100", "r101")
        fb.br_cond(p, "arc_loop")
        fb.sub("r111", imm=1, dest="r111")
        p2 = fb.cmp("gt", "r111", imm=0)
        fb.br_cond(p2, "pass_loop")
        o = fb.mov_imm(layout["out"])
        fb.store(o, "r110")
        fb.halt()

        # -- hand attachment: 2 iterations per chained thread ------------------
        fb.label("hand_stub")
        fb.lib_store(0, "r100")
        fb.lib_store(1, "r101")
        fb.spawn("hand_slice")
        fb.rfi()
        fb.label("hand_slice")
        fb.lib_load(0, dest="r100")
        fb.lib_load(1, dest="r101")
        t1 = fb.mov("r100", dest="r120")
        t2 = fb.add("r100", imm=ARC_STRIDE, dest="r121")
        fb.add("r100", imm=2 * ARC_STRIDE, dest="r100")
        fb.lib_store(0, "r100")
        fb.lib_store(1, "r101")
        pc = fb.cmp("lt", "r100", "r101")
        from ..isa.instructions import Instruction
        fb.emit(Instruction(op="spawn", target="hand_slice", pred=pc))
        u1 = fb.load("r120", OFF_TAIL, dest="r122")
        u2 = fb.load("r121", OFF_TAIL, dest="r123")
        fb.prefetch("r122", OFF_POTENTIAL)
        fb.prefetch("r123", OFF_POTENTIAL)
        fb.kill()
        return prog


@register
class HandHealthWorkload(HealthWorkload):
    """health with one recursion level inlined into the hand slice."""

    name = "health.hand"
    description = "hand-adapted health: child villages prefetched too"

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")
        from ..isa.instructions import Instruction

        sim = FunctionBuilder(prog.add_function("sim", num_params=1))
        (village,) = sim.params(1)
        pz = sim.cmp("eq", village, imm=0)
        sim.br_cond(pz, "leaf")
        sim.mov_imm(0, dest="r110")
        sim.load(village, OFF_PATIENTS, dest="r111")
        base = sim.load(village, OFF_BASE, dest="r112")
        sim.mov(village, dest="r119")
        sim.chk_c("hand_stub")                        # hand trigger
        for i in range(CHILDREN):
            child = sim.load(village, OFF_CHILD + i * 8)
            sub = sim.call_fresh("sim", [child])
            sim.add("r110", sub, dest="r110")
        pempty = sim.cmp("eq", "r111", imm=0)
        sim.br_cond(pempty, "done")
        sim.label("patient_loop")
        t = sim.load("r111", OFF_P_TIME)
        sim.add("r110", t, dest="r110")
        sim.load("r111", OFF_P_NEXT, dest="r111")
        pp = sim.cmp("ne", "r111", imm=0)
        sim.br_cond(pp, "patient_loop")
        sim.label("done")
        result = sim.add("r110", "r112")
        sim.ret(result)
        sim.label("leaf")
        sim.ret(sim.mov_imm(0))

        # -- hand attachment ------------------------------------------------------
        # Stub: pass the patient cursor and the village itself.
        sim.label("hand_stub")
        sim.lib_store(0, "r111")
        sim.lib_store(1, "r119")
        sim.spawn("hand_slice")
        sim.rfi()
        # Slice: one recursion level inlined — prefetch every child village
        # and its patient-list head, then chain-walk this village's own
        # patient list.
        sim.label("hand_slice")
        sim.lib_load(0, dest="r111")
        sim.lib_load(1, dest="r119")
        # Chain over the patient list first (critical part), handing the
        # successor off before blocking on the inlined-child prefetches.
        pk = sim.cmp("eq", "r111", imm=0)
        sim.emit(Instruction(op="kill", pred=pk))
        t2 = sim.load("r111", OFF_P_NEXT, dest="r118")
        sim.lib_store(0, "r118")
        sim.mov_imm(0, dest="r117")
        sim.lib_store(1, "r117")
        sim.spawn("hand_slice")
        sim.prefetch("r111", OFF_P_TIME)
        # Inlined recursion level: only the head thread (spawned from the
        # stub with the village pointer) prefetches the child villages'
        # lines — the child pointers sit on the (warm) parent line, so
        # these loads are cheap and the thread frees its context quickly.
        pv = sim.cmp("ne", "r119", imm=0)
        for i in range(CHILDREN):
            child = sim.load("r119", OFF_CHILD + i * 8, pred=pv)
            sim.prefetch(child, OFF_PATIENTS, pred=pv)
        sim.kill()

        fb = FunctionBuilder(prog.add_function("main"))
        root = fb.mov_imm(layout["root"])
        total = fb.call_fresh("sim", [root])
        o = fb.mov_imm(layout["out"])
        fb.store(o, total)
        fb.halt()
        return prog
