"""em3d (Olden) — electromagnetic wave propagation on a bipartite graph.

Each E-node's value is recomputed from the H-nodes it depends on, reached
through a per-node ``from`` pointer array; the E-node list itself is a
linked list laid out in allocation-shuffled order:

    for node in e_nodes:                     # pointer-chased list
        value = 0
        for j in range(DEGREE):              # unrolled (fixed degree)
            value += node->coeffs[j] * node->from[j]->value
        node->value = value

The ``from[j]->value`` loads are the delinquent loads (random H-nodes);
the list-walk load ``node->next`` is delinquent too and *carries* the
chain, so the chaining scheduler must predict the spawn condition
(``node != 0``) to keep the spawn ahead of the miss (Section 3.2.1.1).
"""

from __future__ import annotations

import random
from typing import Optional

from ..isa.builder import FunctionBuilder
from ..isa.memory import Heap
from ..isa.program import Program
from .base import Workload, register

E_NODE_BYTES = 64
H_NODE_BYTES = 64
OFF_NEXT = 0
OFF_VALUE = 8
OFF_COEFFS = 16       # pointer to coeff array
OFF_FROM = 24         # pointer to from-node array
DEGREE = 3


@register
class EM3DWorkload(Workload):
    name = "em3d"
    description = "bipartite E/H node update with indirection arrays"
    suite = "Olden"

    PARAMS = {
        "tiny": dict(enodes=100, hnodes=128, iters=1),
        "small": dict(enodes=600, hnodes=600, iters=1),
        "default": dict(enodes=1500, hnodes=1500, iters=2),
    }

    def __init__(self, scale: str = "default", seed: int = 20020617):
        super().__init__(scale, seed)
        p = self.PARAMS[scale]
        self.enodes = p["enodes"]
        self.hnodes = p["hnodes"]
        self.iters = p["iters"]

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        hnodes = [heap.alloc(H_NODE_BYTES, align=64)
                  for _ in range(self.hnodes)]
        hvalues = {}
        for h in hnodes:
            hvalues[h] = rng.randrange(1, 64)
            heap.store(h + OFF_VALUE, hvalues[h])
        enodes = [heap.alloc(E_NODE_BYTES, align=64)
                  for _ in range(self.enodes)]
        rng.shuffle(enodes)
        expected = 0
        for i, e in enumerate(enodes):
            nxt = enodes[i + 1] if i + 1 < len(enodes) else 0
            heap.store(e + OFF_NEXT, nxt)
            coeffs = heap.alloc(DEGREE * 8, align=64)
            froms = heap.alloc(DEGREE * 8, align=64)
            heap.store(e + OFF_COEFFS, coeffs)
            heap.store(e + OFF_FROM, froms)
            value = 0
            for j in range(DEGREE):
                c = rng.randrange(1, 8)
                h = rng.choice(hnodes)
                heap.store(coeffs + j * 8, c)
                heap.store(froms + j * 8, h)
                value += c * hvalues[h]
            expected += self.iters * value
        out = heap.alloc(8)
        return {"head": enodes[0], "out": out, "expected": expected}

    def expected_output(self, layout: dict) -> Optional[int]:
        return layout["expected"]

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        total = fb.mov_imm(0, dest="r110")
        iters = fb.mov_imm(self.iters, dest="r111")

        fb.label("iter_loop")
        fb.mov_imm(layout["head"], dest="r100")        # node cursor
        fb.nop()                                      # trigger slot
        fb.label("node_loop")
        coeffs = fb.load("r100", OFF_COEFFS, dest="r101")
        froms = fb.load("r100", OFF_FROM, dest="r102")
        value = fb.mov_imm(0, dest="r103")
        for j in range(DEGREE):
            c = fb.load("r101", j * 8)
            h = fb.load("r102", j * 8)
            hv = fb.load(h, OFF_VALUE)                # delinquent
            term = fb.mul(c, hv)
            fb.add("r103", term, dest="r103")
        fb.store("r100", "r103", OFF_VALUE)
        fb.add("r110", "r103", dest="r110")
        fb.load("r100", OFF_NEXT, dest="r100")          # chase the list
        p = fb.cmp("ne", "r100", imm=0)
        fb.br_cond(p, "node_loop")
        fb.sub("r111", imm=1, dest="r111")
        p2 = fb.cmp("gt", "r111", imm=0)
        fb.br_cond(p2, "iter_loop")

        o = fb.mov_imm(layout["out"])
        fb.store(o, "r110")
        fb.halt()
        return prog
