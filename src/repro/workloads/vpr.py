"""vpr (SPEC CPU2000) — FPGA placement bounding-box cost kernel.

The placement inner loop of VPR evaluates net cost by walking each net's
pin list and reading the (scattered) block structures the pins connect to:

    for each net:
        for each pin of net:
            blk = net->pins[pin]
            x, y = block[blk].x, block[blk].y
            grow bounding box
        cost += (xmax - xmin) + (ymax - ymin)

Block structures are placed randomly in memory, so the ``block`` loads are
delinquent; the pin count per net is small (the inner loop has a tiny trip
count), so region selection must move outward to the net loop — exercising
the region-graph traversal of Section 3.4.1.
"""

from __future__ import annotations

import random
from typing import Optional

from ..isa.builder import FunctionBuilder
from ..isa.memory import Heap
from ..isa.program import Program
from .base import Workload, register

NET_BYTES = 64
BLOCK_BYTES = 64
OFF_NET_PINS = 0       # net -> pin-array pointer
OFF_NET_COST = 8       # net -> cached cost
OFF_BLOCK_X = 0
OFF_BLOCK_Y = 8
PINS_PER_NET = 4


@register
class VPRWorkload(Workload):
    name = "vpr"
    description = "placement bounding-box cost over nets and blocks"
    suite = "SPEC CPU2000"

    PARAMS = {
        "tiny": dict(nnets=80, nblocks=128, sweeps=1),
        "small": dict(nnets=400, nblocks=600, sweeps=1),
        "default": dict(nnets=1000, nblocks=1600, sweeps=2),
    }

    def __init__(self, scale: str = "default", seed: int = 20020617):
        super().__init__(scale, seed)
        p = self.PARAMS[scale]
        self.nnets = p["nnets"]
        self.nblocks = p["nblocks"]
        self.sweeps = p["sweeps"]

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        blocks = [heap.alloc(BLOCK_BYTES, align=64)
                  for _ in range(self.nblocks)]
        coords = {}
        for blk in blocks:
            x, y = rng.randrange(0, 256), rng.randrange(0, 256)
            coords[blk] = (x, y)
            heap.store(blk + OFF_BLOCK_X, x)
            heap.store(blk + OFF_BLOCK_Y, y)
        nets = heap.alloc(self.nnets * NET_BYTES, align=64)
        expected = 0
        for i in range(self.nnets):
            net = nets + i * NET_BYTES
            pins = heap.alloc(PINS_PER_NET * 8, align=64)
            heap.store(net + OFF_NET_PINS, pins)
            xs, ys = [], []
            for j in range(PINS_PER_NET):
                blk = rng.choice(blocks)
                heap.store(pins + j * 8, blk)
                xs.append(coords[blk][0])
                ys.append(coords[blk][1])
            expected += self.sweeps * (
                (max(xs) - min(xs)) + (max(ys) - min(ys)))
        out = heap.alloc(8)
        return {"nets": nets, "out": out, "expected": expected,
                "end": nets + self.nnets * NET_BYTES}

    def expected_output(self, layout: dict) -> Optional[int]:
        return layout["expected"]

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")
        fb = FunctionBuilder(prog.add_function("main"))
        total = fb.mov_imm(0, dest="r110")
        sweeps = fb.mov_imm(self.sweeps, dest="r111")

        fb.label("sweep_loop")
        fb.mov_imm(layout["nets"], dest="r100")        # net cursor
        fb.mov_imm(layout["end"], dest="r101")
        fb.nop()                                      # trigger slot
        fb.label("net_loop")
        pins = fb.load("r100", OFF_NET_PINS, dest="r102")
        # Bounding box accumulators.
        fb.mov_imm(1 << 30, dest="r103")   # xmin
        fb.mov_imm(0, dest="r104")         # xmax
        fb.mov_imm(1 << 30, dest="r105")   # ymin
        fb.mov_imm(0, dest="r106")         # ymax
        fb.mov_imm(0, dest="r107")         # pin index
        fb.label("pin_loop")
        off = fb.shl("r107", 3)
        paddr = fb.add("r102", off)
        blk = fb.load(paddr, 0)                        # pins[j]
        x = fb.load(blk, OFF_BLOCK_X)                  # delinquent
        y = fb.load(blk, OFF_BLOCK_Y)
        pxl = fb.cmp("lt", x, "r103")
        fb.mov(x, dest="r103", pred=pxl)
        pxg = fb.cmp("gt", x, "r104")
        fb.mov(x, dest="r104", pred=pxg)
        pyl = fb.cmp("lt", y, "r105")
        fb.mov(y, dest="r105", pred=pyl)
        pyg = fb.cmp("gt", y, "r106")
        fb.mov(y, dest="r106", pred=pyg)
        fb.add("r107", imm=1, dest="r107")
        pp = fb.cmp("lt", "r107", imm=PINS_PER_NET)
        fb.br_cond(pp, "pin_loop")
        dx = fb.sub("r104", "r103")
        dy = fb.sub("r106", "r105")
        cost = fb.add(dx, dy)
        fb.add("r110", cost, dest="r110")
        fb.store("r100", cost, OFF_NET_COST)            # cache the cost
        fb.add("r100", imm=NET_BYTES, dest="r100")
        pn = fb.cmp("lt", "r100", "r101")
        fb.br_cond(pn, "net_loop")
        fb.sub("r111", imm=1, dest="r111")
        ps = fb.cmp("gt", "r111", imm=0)
        fb.br_cond(ps, "sweep_loop")

        o = fb.mov_imm(layout["out"])
        fb.store(o, "r110")
        fb.halt()
        return prog
