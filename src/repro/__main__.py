"""``python -m repro`` — the ``ssp-postpass`` command line.

Delegates to :func:`repro.tool.cli.main`, so ``python -m repro check``,
``python -m repro mcf --scale small`` etc. behave exactly like the
installed console script.
"""

from __future__ import annotations

import sys

from .tool.cli import main

if __name__ == "__main__":
    sys.exit(main())
