"""Reproduction of "Post-Pass Binary Adaptation for Software-Based
Speculative Precomputation" (Liao et al., PLDI 2002).

Top-level convenience API::

    import repro

    workload = repro.make_workload("mcf", scale="small")
    program = workload.build_program()
    profile = repro.collect_profile(program, workload.build_heap)
    result = repro.SSPPostPassTool().adapt(program, profile)
    stats = repro.simulate(result.program, workload.build_heap(),
                           "inorder")

Subpackages: ``repro.isa`` (the Itanium-like ISA), ``repro.sim`` (the SMT
timing simulator), ``repro.profiling``, ``repro.analysis``,
``repro.slicing``, ``repro.scheduling``, ``repro.triggers``,
``repro.codegen``, ``repro.tool`` (the post-pass tool), ``repro.workloads``
(the seven benchmarks), ``repro.runner`` (parallel run orchestration with
a content-addressed result cache) and ``repro.experiments`` (the paper's
evaluation).
"""

from .profiling import collect_profile
from .runner import ResultCache, Runner, RunSpec
from .sim import inorder_config, ooo_config, simulate
from .tool import SSPPostPassTool, ToolOptions
from .workloads import PAPER_ORDER, make_workload, workload_names

__version__ = "1.0.0"

#: The paper being reproduced.
PAPER = ("Liao, Wang, Wang, Hoflehner, Lavery, Shen: Post-Pass Binary "
         "Adaptation for Software-Based Speculative Precomputation. "
         "PLDI 2002. DOI 10.1145/512529.512544")

__all__ = [
    "collect_profile",
    "ResultCache", "Runner", "RunSpec",
    "inorder_config", "ooo_config", "simulate",
    "SSPPostPassTool", "ToolOptions",
    "PAPER_ORDER", "make_workload", "workload_names",
    "PAPER", "__version__",
]
