"""Watchdog supervision of runner workers, with breaker and ladder.

The :class:`Supervisor` owns a batch of specs and drives each one to a
terminal :class:`SupervisedOutcome` through an explicit failure policy:

* every parallel attempt runs in its **own** ``multiprocessing.Process``
  (a pool cannot kill one hung member), reporting its result over a pipe
  and its liveness through a :class:`~repro.resilience.heartbeat.Heartbeat`
  file;
* the watchdog loop kills workers whose heartbeat goes stale past
  ``heartbeat_timeout`` (and, as a hard backstop, workers that outlive
  the wall-clock deadline the worker itself was supposed to enforce);
* failed attempts retry after exponential backoff with **deterministic
  jitter** (seeded from the spec hash and attempt number — chaos runs
  reproduce);
* repeated failures trip a per-spec **circuit breaker** from parallel to
  in-process serial execution; repeated serial failures — and any
  resource-budget blowout — descend the
  :mod:`~repro.resilience.ladder`; a spec that exhausts the ladder (or
  the global attempt cap) is **skipped with a diagnostic** instead of
  wedging the batch.

The supervisor is deliberately generic over the unit of work: the
executor supplies ``make_task``/``task_fn`` (keeping this module free of
imports from :mod:`repro.runner.worker`, which imports *us*).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..guard import faultinject
from ..guard.errors import CheckpointError, ResourceBudgetError
from ..obs.tracer import NULL_TRACER
from .heartbeat import heartbeat_age
from .ladder import STEP_FULL, degrade_spec, ladder_steps

#: Failure kinds that mean "resource pressure" — descend the ladder
#: immediately rather than retrying the same capability level.
_BUDGET_KINDS = ("budget", "deadline", "oom")


def classify_failure(exc: BaseException) -> str:
    """Map an exception to the failure kind the policy routes on."""
    if isinstance(exc, ResourceBudgetError):
        return "budget"
    if isinstance(exc, MemoryError):
        return "oom"
    if isinstance(exc, CheckpointError):
        return "checkpoint"
    if isinstance(exc, faultinject.InjectedFault):
        return "fault"
    return "error"


@dataclass
class ResilienceConfig:
    """Knobs for supervised execution (CLI flags map onto these)."""

    #: Per-run wall-clock budget (seconds).  The worker enforces it
    #: softly at checkpoint boundaries (ResourceBudgetError → ladder);
    #: the supervisor backstops it with a hard kill.
    deadline: Optional[float] = None
    #: Simulated cycles between checkpoint writes (None = no checkpoints).
    checkpoint_every: Optional[int] = None
    #: Resume first attempts from existing on-disk checkpoints.
    resume: bool = False
    #: Peak-RSS budget (MiB), enforced at checkpoint boundaries.
    rss_budget_mb: Optional[float] = None
    #: Seconds without a heartbeat before the watchdog kills a worker.
    heartbeat_timeout: float = 30.0
    #: Supervisor event-loop cadence.
    poll_interval: float = 0.05
    #: Failures at one (mode, rung) before the breaker advances:
    #: parallel → serial → next ladder rung.
    breaker_threshold: int = 2
    #: Hard cap on total attempts per spec (safety net).
    max_attempts: int = 10
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 5.0


@dataclass
class SupervisedOutcome:
    """Terminal state of one spec under supervision."""

    spec: Any
    executed_spec: Any
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    ladder_step: str = STEP_FULL
    watchdog_kills: int = 0
    serial: bool = False
    skipped: bool = False
    reasons: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.payload is not None


class _Job:
    """Mutable per-spec supervision state."""

    def __init__(self, spec: Any):
        self.spec = spec
        self.executed_spec = spec
        self.step = STEP_FULL
        self.mode = "parallel"
        self.attempts = 0
        self.failures_in_mode = 0
        self.watchdog_kills = 0
        self.not_before = 0.0          # monotonic earliest next attempt
        self.reasons: List[str] = []
        self.outcome: Optional[SupervisedOutcome] = None


class _Handle:
    """One live worker process."""

    def __init__(self, proc, conn, heartbeat_path: Path):
        self.proc = proc
        self.conn = conn
        self.heartbeat_path = heartbeat_path
        self.started_wall = time.time()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except Exception:
            pass
        self.proc.join(timeout=10)
        self.close()

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass


def _die_with_supervisor() -> None:
    """Tie this worker's life to its supervisor's.

    ``daemon=True`` only covers a *clean* supervisor exit; a SIGKILLed
    supervisor leaves the worker orphaned, silently finishing — and then
    *retiring the checkpoints of* — the very run the kill abandoned,
    racing any resumed replacement.  ``PR_SET_PDEATHSIG`` makes the
    kernel deliver SIGKILL here the moment the parent dies (Linux-only;
    elsewhere the orphan completes, which is safe but untidy).  The
    ``getppid`` check closes the fork-to-prctl race: a parent that died
    first has already reparented us, and no signal will ever arrive.
    """
    try:
        import ctypes
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # 1 == PR_SET_PDEATHSIG
    except Exception:  # pragma: no cover - non-Linux hosts
        return
    if os.getppid() == 1:  # pragma: no cover - lost the race already
        os._exit(1)


def _worker_entry(task_fn, task, conn) -> None:
    """Child-process shim: run the task, ship one message, exit."""
    _die_with_supervisor()
    try:
        payload = task_fn(task)
    except BaseException as exc:  # noqa: BLE001 - report, don't judge
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       classify_failure(exc)))
        except Exception:
            pass
    else:
        try:
            conn.send(("ok", payload))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class Supervisor:
    """Drives specs to terminal outcomes under the failure policy."""

    def __init__(self, config: ResilienceConfig,
                 task_fn: Callable[[Any], Dict[str, Any]],
                 make_task: Callable[..., Any],
                 jobs: int = 1,
                 telemetry: Optional[Any] = None,
                 tracer=NULL_TRACER):
        """
        Args:
            config: supervision knobs.
            task_fn: picklable unit of work (``execute_task``).
            make_task: builds the task object for one attempt; called as
                ``make_task(spec=, attempt=, heartbeat_path=, resume=,
                hang_seconds=)``.
            jobs: parallel worker slots (1 still supervises — one
                killable process at a time).
            telemetry: a :class:`~repro.runner.telemetry.RunnerTelemetry`
                (or None) receiving launch/kill/trip/degrade/skip events.
            tracer: observability sink for supervision events.
        """
        self.config = config
        self.task_fn = task_fn
        self.make_task = make_task
        self.jobs = max(1, int(jobs))
        self.telemetry = telemetry
        self.tracer = tracer
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = multiprocessing.get_context()

    # -- public API ------------------------------------------------------------------

    def run(self, specs: Sequence[Any]) -> List[SupervisedOutcome]:
        jobs = [_Job(spec) for spec in specs]
        queue = deque(jobs)
        active: Dict[_Job, _Handle] = {}
        with tempfile.TemporaryDirectory(prefix="repro-hb-") as hb_dir:
            hb_root = Path(hb_dir)
            while queue or active:
                now = time.monotonic()
                self._fill_slots(queue, active, hb_root, now)
                progressed = self._poll_active(queue, active)
                if not progressed:
                    time.sleep(self.config.poll_interval)
        return [job.outcome for job in jobs]

    # -- scheduling ------------------------------------------------------------------

    def _fill_slots(self, queue, active, hb_root: Path,
                    now: float) -> None:
        deferred: List[_Job] = []
        while queue:
            job = queue.popleft()
            if job.not_before > now:
                deferred.append(job)
                continue
            if job.mode == "serial":
                # Breaker is open: run in-process, one at a time.
                self._run_serial_attempt(job, hb_root, queue)
                now = time.monotonic()
                continue
            if len(active) >= self.jobs:
                deferred.append(job)
                break
            self._launch(job, hb_root, active, queue)
        queue.extend(deferred)

    def _launch(self, job: _Job, hb_root: Path, active,
                queue) -> None:
        job.attempts += 1
        hb_path = hb_root / f"{job.spec.content_hash()[:16]}.hb"
        task = self.make_task(
            spec=job.executed_spec, attempt=job.attempts,
            heartbeat_path=str(hb_path), resume=self._resume_for(job),
            hang_seconds=max(4 * self.config.heartbeat_timeout, 1.0))
        if self.telemetry is not None:
            self.telemetry.record_launch(job.executed_spec.label())
        conn_recv, conn_send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(target=_worker_entry,
                                 args=(self.task_fn, task, conn_send),
                                 daemon=True)
        try:
            proc.start()
        except Exception as exc:  # pragma: no cover - host trouble
            # Can't fork at all: fall straight back to serial execution.
            job.mode = "serial"
            self._on_failure(job, "crash",
                             f"worker failed to start: {exc}", queue)
            return
        conn_send.close()
        active[job] = _Handle(proc, conn_recv, hb_path)

    def _resume_for(self, job: _Job) -> bool:
        if self.config.resume:
            return True
        # Retries of a checkpointing run resume from the last good
        # checkpoint rather than starting over — that is the point.
        return (job.attempts > 1
                and self.config.checkpoint_every is not None)

    # -- event loop ------------------------------------------------------------------

    def _poll_active(self, queue, active) -> bool:
        progressed = False
        for job, handle in list(active.items()):
            msg = None
            if handle.conn.poll():
                try:
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    msg = None
            if msg is not None:
                handle.proc.join(timeout=10)
                handle.close()
                del active[job]
                progressed = True
                if msg[0] == "ok":
                    self._finish_ok(job, msg[1])
                else:
                    self._on_failure(job, msg[2], msg[1], queue)
                continue
            if not handle.proc.is_alive():
                handle.close()
                del active[job]
                progressed = True
                self._on_failure(
                    job, "crash",
                    f"worker exited (code {handle.proc.exitcode}) "
                    f"without reporting a result", queue)
                continue
            verdict = self._liveness_verdict(handle)
            if verdict is not None:
                kind, message = verdict
                handle.kill()
                del active[job]
                progressed = True
                job.watchdog_kills += 1
                if self.telemetry is not None:
                    self.telemetry.record_watchdog_kill(
                        job.executed_spec.label(), message)
                self.tracer.event("watchdog.kill", category="resilience",
                                  spec=job.spec.label(), kind=kind)
                self._on_failure(job, kind, message, queue)
        return progressed

    def _liveness_verdict(self, handle: _Handle):
        """(kind, message) when a live worker must die, else None."""
        cfg = self.config
        now_wall = time.time()
        age = heartbeat_age(handle.heartbeat_path, now=now_wall)
        silence = age if age is not None \
            else now_wall - handle.started_wall
        if silence > cfg.heartbeat_timeout:
            return ("hang", f"no heartbeat for {silence:.1f}s "
                            f"(deadline {cfg.heartbeat_timeout}s)")
        if cfg.deadline is not None:
            hard = cfg.deadline + max(cfg.heartbeat_timeout, 5.0)
            elapsed = now_wall - handle.started_wall
            if elapsed > hard:
                return ("deadline", f"worker alive {elapsed:.1f}s past "
                                    f"the {cfg.deadline}s deadline")
        return None

    # -- serial attempts -------------------------------------------------------------

    def _run_serial_attempt(self, job: _Job, hb_root: Path,
                            queue) -> None:
        job.attempts += 1
        hb_path = hb_root / f"{job.spec.content_hash()[:16]}.hb"
        # hang_seconds=0: an in-process worker.hang firing raises
        # immediately — there is no watchdog to exercise and a real
        # sleep would block the supervisor itself.
        task = self.make_task(
            spec=job.executed_spec, attempt=job.attempts,
            heartbeat_path=str(hb_path), resume=self._resume_for(job),
            hang_seconds=0.0)
        if self.telemetry is not None:
            self.telemetry.record_launch(job.executed_spec.label())
        try:
            payload = self.task_fn(task)
        except Exception as exc:  # noqa: BLE001 - routed by policy
            self._on_failure(job, classify_failure(exc),
                             f"{type(exc).__name__}: {exc}", queue)
        else:
            self._finish_ok(job, payload)

    # -- outcome policy --------------------------------------------------------------

    def _finish_ok(self, job: _Job, payload: Dict[str, Any]) -> None:
        meta = payload.get("resilience") or {}
        if self.telemetry is not None:
            resumed = meta.get("resumed_from_cycle")
            if resumed is not None:
                self.telemetry.record_resume(job.executed_spec.label(),
                                             resumed)
            self.telemetry.record_checkpoints(meta.get("checkpoints", 0))
        job.outcome = SupervisedOutcome(
            spec=job.spec, executed_spec=job.executed_spec,
            payload=payload, attempts=job.attempts,
            ladder_step=job.step, watchdog_kills=job.watchdog_kills,
            serial=(job.mode == "serial"), reasons=list(job.reasons))

    def _on_failure(self, job: _Job, kind: str, message: str,
                    queue) -> None:
        job.reasons.append(
            f"attempt {job.attempts} [{job.mode}/{job.step}] "
            f"{kind}: {message}")
        self.tracer.event("worker.failure", category="resilience",
                          spec=job.spec.label(), kind=kind,
                          attempt=job.attempts, mode=job.mode,
                          step=job.step)
        if job.attempts >= self.config.max_attempts:
            self._skip(job, f"attempt cap ({self.config.max_attempts}) "
                            f"reached")
            return
        if kind in _BUDGET_KINDS:
            # Resource pressure: same capability level will blow the
            # same budget — descend the ladder now.
            if not self._descend(job, kind):
                self._skip(job, f"{kind} failure with the degradation "
                                f"ladder exhausted")
                return
        else:
            job.failures_in_mode += 1
            if job.failures_in_mode >= self.config.breaker_threshold:
                if job.mode == "parallel":
                    self._trip_breaker(job)
                elif not self._descend(job, kind):
                    self._skip(job, "repeated failures with the "
                                    "degradation ladder exhausted")
                    return
        job.not_before = time.monotonic() + self._backoff(job)
        queue.append(job)

    def _trip_breaker(self, job: _Job) -> None:
        job.mode = "serial"
        job.failures_in_mode = 0
        if self.telemetry is not None:
            self.telemetry.record_circuit_trip(job.spec.label())
        self.tracer.event("breaker.trip", category="resilience",
                          spec=job.spec.label(),
                          failures=self.config.breaker_threshold)

    def _descend(self, job: _Job, kind: str) -> bool:
        steps = ladder_steps(job.spec)
        try:
            idx = steps.index(job.step)
        except ValueError:  # pragma: no cover - defensive
            return False
        if idx + 1 >= len(steps):
            return False
        job.step = steps[idx + 1]
        job.executed_spec = degrade_spec(job.spec, job.step)
        job.failures_in_mode = 0
        if self.telemetry is not None:
            self.telemetry.record_degraded(job.spec.label(), job.step,
                                           kind)
        self.tracer.event("ladder.descend", category="resilience",
                          spec=job.spec.label(), step=job.step,
                          kind=kind)
        return True

    def _skip(self, job: _Job, why: str) -> None:
        diagnostic = f"skipped: {why}; " + "; ".join(job.reasons[-3:])
        if self.telemetry is not None:
            self.telemetry.record_skip(job.spec.label(), why)
        self.tracer.event("spec.skip", category="resilience",
                          spec=job.spec.label(), why=why)
        job.outcome = SupervisedOutcome(
            spec=job.spec, executed_spec=job.executed_spec,
            error=diagnostic, attempts=job.attempts,
            ladder_step=job.step, watchdog_kills=job.watchdog_kills,
            serial=(job.mode == "serial"), skipped=True,
            reasons=list(job.reasons))

    # -- backoff ---------------------------------------------------------------------

    def _backoff(self, job: _Job) -> float:
        cfg = self.config
        exponent = max(0, job.attempts - 1)
        delay = min(cfg.backoff_max,
                    cfg.backoff_base * (cfg.backoff_factor ** exponent))
        # Deterministic jitter in [0, 0.5): same spec + attempt always
        # waits the same time, so chaos runs reproduce exactly.
        seed = f"{job.spec.content_hash()}:{job.attempts}"
        digest = hashlib.sha256(seed.encode("utf-8")).digest()
        jitter = int.from_bytes(digest[:4], "big") / 2 ** 33
        return delay * (1.0 + jitter)
