"""Versioned, checksummed, crash-safe checkpoint files.

A checkpoint carries a simulator ``snapshot()`` (pickle) wrapped in a
self-describing envelope::

    MAGIC(8) | header_len(4, big-endian) | header(JSON, utf-8) | payload
    | sha256(everything before the digest)(32)

The trailing digest covers every preceding byte — magic, length, header
and payload — so flipping *any* byte of the file makes :meth:`load`
refuse it with a :class:`~repro.guard.errors.CheckpointError` rather
than resuming from damaged state.  The header records the format
version, the code-version salt (checkpoints from a different source
tree are stale, not wrong — they are refused the same way), the spec's
content hash, and the cycle count for ``repro runs`` listings.

Durability: writes go to a temp file in the same directory, are
``fsync``'d, then ``os.replace``'d over the destination; the previous
checkpoint is first rotated to ``*.prev`` so a crash *during* the
rotation still leaves one intact generation on disk.  :meth:`load`
tries current-then-prev and falls back to ``None`` (fresh run) only
when neither survives validation.

The ``checkpoint.corrupt`` fault-injection site flips one byte of the
current file just before a resume read, exercising exactly this
refuse-and-fall-back path.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..guard import faultinject
from ..guard.errors import CheckpointError

MAGIC = b"RPRCKPT1"
#: Bump when the envelope layout changes; older files are refused.
CHECKPOINT_FORMAT = 1

_LEN = struct.Struct(">I")
_DIGEST_BYTES = 32

#: Overrides the checkpoint root (useful for tests and CI).
ENV_CHECKPOINT_DIR = "REPRO_CHECKPOINT_DIR"
_DEFAULT_ROOT = Path(".repro-cache") / "checkpoints"


def _fsync_dir(path: Path) -> None:
    """Durably record a rename in its directory (best-effort off-POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows directories
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """Atomic checkpoint files for resumable runs, keyed by spec hash.

    Files live under ``<root>/<code-version>/<key>.ckpt`` — the same
    source-digest salting the result cache uses, so editing the
    simulator invalidates old checkpoints wholesale instead of letting
    them resume into incompatible code.
    """

    def __init__(self, root: Optional[Path] = None,
                 salt: Optional[str] = None):
        if root is None:
            root = Path(os.environ.get(ENV_CHECKPOINT_DIR, _DEFAULT_ROOT))
        if salt is None:
            # Lazy: runner.cache imports nothing from resilience, but the
            # reverse top-level import would tie the packages in a cycle.
            from ..runner.cache import code_version
            salt = code_version()
        self.root = Path(root)
        self.salt = salt
        self.dir = self.root / salt

    # -- paths -------------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.dir / f"{key}.ckpt"

    def _prev_for(self, key: str) -> Path:
        return self.dir / f"{key}.ckpt.prev"

    # -- write -------------------------------------------------------------------

    def save(self, key: str, payload: Dict[str, object], *,
             cycle: int, label: str = "") -> Path:
        """Atomically write a new checkpoint generation for ``key``."""
        header = {
            "format": CHECKPOINT_FORMAT,
            "code_version": self.salt,
            "key": key,
            "label": label,
            "cycle": int(cycle),
            "created": time.time(),
        }
        blob = self._encode(header, payload)
        self.dir.mkdir(parents=True, exist_ok=True)
        dest = self.path_for(key)
        tmp = dest.with_name(dest.name + f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        # Rotate the old generation aside before replacing: if we die
        # between the two renames, *.prev still validates and loads.
        if dest.exists():
            os.replace(dest, self._prev_for(key))
        os.replace(tmp, dest)
        _fsync_dir(self.dir)
        return dest

    @staticmethod
    def _encode(header: Dict[str, object],
                payload: Dict[str, object]) -> bytes:
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        buf = io.BytesIO()
        buf.write(MAGIC)
        buf.write(_LEN.pack(len(header_bytes)))
        buf.write(header_bytes)
        buf.write(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        body = buf.getvalue()
        return body + hashlib.sha256(body).digest()

    # -- read --------------------------------------------------------------------

    def load(self, key: str, errors: Optional[List[str]] = None
             ) -> Optional[Tuple[Dict[str, object], Dict[str, object]]]:
        """Return ``(payload, header)`` for the newest intact generation.

        Tries the current file, then the ``.prev`` rotation; records each
        refusal in ``errors`` (if given) and returns ``None`` when no
        generation survives — the caller starts a fresh run.
        """
        self._maybe_corrupt(self.path_for(key))
        for path in (self.path_for(key), self._prev_for(key)):
            try:
                return self.read_file(path)
            except FileNotFoundError:
                continue
            except CheckpointError as exc:
                if errors is not None:
                    errors.append(f"{path.name}: {exc}")
        return None

    def read_file(self, path: Path
                  ) -> Tuple[Dict[str, object], Dict[str, object]]:
        """Decode and validate one checkpoint file.

        Raises :class:`CheckpointError` on any damage or version skew and
        :class:`FileNotFoundError` when the file is absent.
        """
        data = Path(path).read_bytes()
        if len(data) < len(MAGIC) + _LEN.size + _DIGEST_BYTES:
            raise CheckpointError(f"checkpoint {path} is truncated "
                                  f"({len(data)} bytes)")
        body, digest = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
        if hashlib.sha256(body).digest() != digest:
            raise CheckpointError(f"checkpoint {path} fails its sha256 "
                                  f"integrity check")
        if body[:len(MAGIC)] != MAGIC:
            raise CheckpointError(f"checkpoint {path} has bad magic "
                                  f"{body[:len(MAGIC)]!r}")
        header_len = _LEN.unpack_from(body, len(MAGIC))[0]
        header_end = len(MAGIC) + _LEN.size + header_len
        if header_end > len(body):
            raise CheckpointError(f"checkpoint {path} header overruns "
                                  f"the file")
        try:
            header = json.loads(body[len(MAGIC) + _LEN.size:header_end])
        except ValueError as exc:
            raise CheckpointError(f"checkpoint {path} header is not "
                                  f"valid JSON: {exc}") from exc
        if header.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format "
                f"{header.get('format')!r}, expected {CHECKPOINT_FORMAT}")
        if header.get("code_version") != self.salt:
            raise CheckpointError(
                f"checkpoint {path} was written by code version "
                f"{header.get('code_version')!r} (current {self.salt!r})")
        try:
            # The digest already proved the bytes intact, so unpickling
            # here only ever sees what *we* wrote.
            payload = pickle.loads(body[header_end:])
        except Exception as exc:
            raise CheckpointError(f"checkpoint {path} payload does not "
                                  f"unpickle: {exc}") from exc
        if not isinstance(payload, dict):
            raise CheckpointError(f"checkpoint {path} payload has type "
                                  f"{type(payload).__name__}, expected dict")
        return payload, header

    @staticmethod
    def _maybe_corrupt(path: Path) -> None:
        """``checkpoint.corrupt`` site: flip one byte before the read."""
        if not faultinject.fires("checkpoint.corrupt"):
            return
        try:
            data = bytearray(path.read_bytes())
        except OSError:
            return
        if data:
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))

    # -- lifecycle ---------------------------------------------------------------

    def discard(self, key: str) -> None:
        """Drop every generation for ``key`` (run completed or abandoned)."""
        for path in (self.path_for(key), self._prev_for(key)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def list_runs(self) -> List[Dict[str, object]]:
        """Describe resumable checkpoints (for ``repro runs``).

        One entry per current-generation file, newest first; entries that
        fail validation are listed with ``valid: False`` and the refusal
        reason so a damaged run is visible, not silently absent.
        """
        if not self.dir.is_dir():
            return []
        out: List[Dict[str, object]] = []
        for path in sorted(self.dir.glob("*.ckpt")):
            entry: Dict[str, object] = {"path": str(path),
                                        "key": path.stem, "valid": True}
            try:
                _, header = self.read_file(path)
            except (CheckpointError, OSError) as exc:
                entry["valid"] = False
                entry["error"] = str(exc)
            else:
                entry.update(label=header.get("label", ""),
                             cycle=header.get("cycle", 0),
                             created=header.get("created", 0.0))
            out.append(entry)
        out.sort(key=lambda e: e.get("created", 0.0), reverse=True)
        return out
