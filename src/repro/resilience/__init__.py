"""Resilient execution layer: checkpoint/resume, watchdog, degradation.

The paper's headline experiments are long cycle-accurate simulations; this
package keeps them alive through the failures long runs actually hit:

* :mod:`~repro.resilience.checkpoint` — versioned, checksummed,
  atomically-written checkpoint files for the simulators'
  ``snapshot()``/``restore()`` state, so a killed run resumes from its
  last good checkpoint instead of restarting (and lands on byte-identical
  statistics).
* :mod:`~repro.resilience.heartbeat` — file-based worker heartbeats the
  supervisor watches to tell "slow" from "hung".
* :mod:`~repro.resilience.supervisor` — the watchdog: kills hung workers,
  retries with exponential backoff + deterministic jitter, trips a
  per-spec circuit breaker to serial execution, and finally skips with a
  diagnostic rather than wedging a batch.
* :mod:`~repro.resilience.ladder` — the graceful-degradation ladder a run
  descends when it blows its wall-clock/RSS budgets: chaining SP →
  basic SP → top-1 delinquent load → unadapted binary.
"""

from .checkpoint import CHECKPOINT_FORMAT, CheckpointStore
from .heartbeat import Heartbeat, heartbeat_age, read_heartbeat
from .ladder import (
    LADDER,
    STEP_BASIC,
    STEP_FULL,
    STEP_TOP1,
    STEP_UNADAPTED,
    degrade_spec,
    ladder_applies,
    ladder_steps,
    next_step,
)
from .supervisor import ResilienceConfig, SupervisedOutcome, Supervisor

__all__ = [
    "CHECKPOINT_FORMAT", "CheckpointStore",
    "Heartbeat", "heartbeat_age", "read_heartbeat",
    "LADDER", "STEP_BASIC", "STEP_FULL", "STEP_TOP1", "STEP_UNADAPTED",
    "degrade_spec", "ladder_applies", "ladder_steps", "next_step",
    "ResilienceConfig", "SupervisedOutcome", "Supervisor",
]
