"""The graceful-degradation ladder: re-adapt down instead of failing.

When an adapted run blows its wall-clock or RSS budget (or keeps hitting
guard failures after the circuit breaker has already forced it serial),
the supervisor walks the run *down* the paper's own capability ladder —
each step trades speculative coverage for a cheaper, better-understood
binary:

    full     — the tool's defaults (chaining SP, all delinquent loads)
    basic    — basic SP only (``disable_chaining``)
    top1     — basic SP for the single worst delinquent load
    unadapted — the original binary, no speculative threads at all

Each step is expressed as a *new* :class:`~repro.runner.spec.RunSpec`
(merged tool options, or the ``base`` variant for the final rung), so a
degraded result is cached under its own content hash and can never
masquerade as the full-capability result.
"""

from __future__ import annotations

from typing import Optional

from ..runner.spec import RunSpec
from ..tool.postpass import DEGRADATION_PRESETS

STEP_FULL = "full"
STEP_BASIC = "basic"
STEP_TOP1 = "top1"
STEP_UNADAPTED = "unadapted"

#: Rungs in descending capability order.  The tool-adapted middle rungs
#: take their ToolOptions overrides from
#: :data:`repro.tool.postpass.DEGRADATION_PRESETS`.
LADDER = (STEP_FULL, STEP_BASIC, STEP_TOP1, STEP_UNADAPTED)


def ladder_steps(spec: RunSpec) -> tuple:
    """The rungs available to one spec, in descending capability order.

    Tool-adapted runs have the full ladder; hand-adapted binaries can
    only fall back to the unadapted original (there is no tool to
    re-run with weaker options); everything else has nothing to shed.
    """
    if spec.variant == "ssp":
        return LADDER
    if spec.variant == "hand":
        return (STEP_FULL, STEP_UNADAPTED)
    return (STEP_FULL,)


def ladder_applies(spec: RunSpec) -> bool:
    """Whether the spec has any capability to shed."""
    return len(ladder_steps(spec)) > 1


def next_step(step: str) -> Optional[str]:
    """The rung below ``step``, or None at the bottom."""
    idx = LADDER.index(step)
    return LADDER[idx + 1] if idx + 1 < len(LADDER) else None


def degrade_spec(spec: RunSpec, step: str) -> RunSpec:
    """Re-express ``spec`` at the given ladder rung.

    ``unadapted`` switches to the ``base`` variant (original binary, no
    spawning); the tool-adapted rungs merge the rung's overrides into the
    spec's existing tool options.
    """
    if step == STEP_FULL:
        return spec
    if step == STEP_UNADAPTED:
        return spec.derive(variant="base", spawning=False,
                           tool_options=None)
    merged = dict(spec.tool_options)
    merged.update(DEGRADATION_PRESETS[step])
    return spec.derive(tool_options=merged)
