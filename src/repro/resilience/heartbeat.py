"""File-based worker heartbeats for the supervisor's watchdog.

A supervised worker owns one heartbeat file and rewrites it (atomic
temp + rename, so the watchdog never reads a torn JSON) at checkpoint
boundaries and other progress points.  The watchdog judges liveness by
the file's **mtime** — the payload (cycle, stage, pid) is diagnostic
garnish for "worker killed after N cycles at stage X" messages, not the
staleness signal itself, so a worker that wedges *between* writes is
still detected.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Dict, Optional

#: Cached once: the host tag lets a reader decide whether the writer's
#: pid is probeable (same host) or opaque (over a shared filesystem).
_HOSTNAME = socket.gethostname()


class Heartbeat:
    """Writer side: owned by the worker process."""

    def __init__(self, path: Path):
        self.path = Path(path)

    def beat(self, *, cycle: Optional[int] = None,
             stage: Optional[str] = None) -> None:
        payload = {"pid": os.getpid(), "host": _HOSTNAME,
                   "time": time.time()}
        if cycle is not None:
            payload["cycle"] = int(cycle)
        if stage is not None:
            payload["stage"] = stage
        tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, self.path)
        except OSError:
            # A failed beat must never kill the run it is reporting on.
            pass

    def clear(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def read_heartbeat(path: Path) -> Optional[Dict[str, object]]:
    """Last-written heartbeat payload, or None if absent/unreadable."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def heartbeat_age(path: Path, now: Optional[float] = None
                  ) -> Optional[float]:
    """Seconds since the heartbeat file was last written (None if absent)."""
    try:
        mtime = Path(path).stat().st_mtime
    except OSError:
        return None
    return (now if now is not None else time.time()) - mtime
