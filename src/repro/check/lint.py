"""Static linter over SSP-adapted binaries.

Binary rewriting is only trustworthy when the rewritten binary is provably
well formed, so every adapted :class:`~repro.isa.program.Program` can be
held against a set of machine-checkable rules.  Where
:mod:`repro.codegen.verify` asserts the Figure 7 *shape* of stubs and
slices, the linter proves the properties that make the adaptation safe to
run:

**Control-flow integrity**

* ``cfi.spawn-target`` — every ``spawn`` targets a real slice block in the
  same function;
* ``cfi.slice-escape`` — control flow started in a slice region stays in
  the region (branches, fall-throughs) until the thread stops;
* ``cfi.slice-termination`` — every slice-region exit is a ``kill``
  (thread-stop), never a fall-through into neighbouring code;
* ``cfi.fallthrough`` — no reachable main-code path falls through into an
  appended stub/slice block or off the end of a function into the next
  function's code;
* ``cfi.spec-store`` / ``cfi.slice-call`` — speculative code (slices and
  ``.sspclone`` callees) contains no stores, and direct calls from slices
  only reach store-free clones.

**Register discipline** (needs the :mod:`repro.analysis.dataflow` liveness)

* ``regs.live-in-coverage`` — every live-in slot a slice reads is written
  by each stub that spawns it;
* ``regs.stub-clobber`` — a stub never writes a register that is live in
  the main thread at the resumption point (``chk.c`` + 1), so a fired
  trigger cannot corrupt main-thread state.

**Trigger legality** (against the *original* binary)

* ``trig.main-code-preserved`` — adaptation only replaces ``nop`` slots
  with ``chk.c`` or inserts ``chk.c``; every other main-code instruction
  survives bit-for-bit (uids are preserved by the clone);
* ``trig.double-trigger`` — no two triggers of one slice lie on a common
  path (one dominates the other);
* ``trig.covers-load`` — every path from the function entry to a slice's
  delinquent load executes one of the slice's triggers first (the cut-set
  property of Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg import CFG, EXIT
from ..analysis.dataflow import (
    block_liveness,
    instruction_defs,
    instruction_uses,
)
from ..analysis.dominance import dominator_tree
from ..codegen.emit import SPEC_CLONE_SUFFIX
from ..codegen.verify import SLICE_PREFIX, STUB_PREFIX
from ..isa import registers as regs
from ..isa.instructions import (
    OP_BR,
    OP_BR_COND,
    OP_CALL,
    OP_CHK_C,
    OP_KILL,
    OP_LIB_LD,
    OP_LIB_ST,
    OP_NOP,
    OP_RFI,
    OP_SPAWN,
)
from ..isa.program import BasicBlock, Function, Program


@dataclass
class LintViolation:
    """One broken rule at one location."""

    rule: str
    function: str
    location: str
    message: str

    def __str__(self) -> str:
        return (f"[{self.rule}] {self.function}:{self.location}: "
                f"{self.message}")


def _slice_region(func: Function, root: str) -> List[str]:
    """The slice root plus its continuation blocks (``root.*`` chains)."""
    labels = [b.label for b in func.blocks]
    out = [root]
    for label in labels[labels.index(root) + 1:]:
        if label.startswith(root + "."):
            out.append(label)
        else:
            break
    return out


def _local_label(target: Optional[str], func_name: str) -> Optional[str]:
    """Strip a ``func::label`` qualification when it names ``func_name``."""
    if target is None:
        return None
    if "::" in target:
        qualifier, label = target.split("::", 1)
        return label if qualifier == func_name else None
    return target


class _FunctionLint:
    """All lint rules for one function of the adapted program."""

    def __init__(self, program: Program, func: Function,
                 original: Optional[Function],
                 violations: List[LintViolation]):
        self.program = program
        self.func = func
        self.original = original
        self.violations = violations
        self.stub_labels = [b.label for b in func.blocks
                            if b.label.startswith(STUB_PREFIX)]
        self.slice_roots = [
            b.label for b in func.blocks
            if b.label.startswith(SLICE_PREFIX)
            and "." not in b.label[len(SLICE_PREFIX):]]
        self.regions: Dict[str, List[str]] = {
            root: _slice_region(func, root) for root in self.slice_roots}
        self.speculative: Set[str] = set(self.stub_labels)
        for labels in self.regions.values():
            self.speculative.update(labels)
        self.cfg = CFG(func)

    def report(self, rule: str, location: str, message: str) -> None:
        self.violations.append(LintViolation(
            rule=rule, function=self.func.name, location=location,
            message=message))

    # -- control-flow integrity ------------------------------------------------------

    def check_cfi(self) -> None:
        func = self.func
        reachable = self.cfg.reachable()
        last_label = func.blocks[-1].label
        for block in func.blocks:
            if block.label in self.speculative:
                continue
            if block.label not in reachable:
                continue  # dead code cannot leak control flow
            term = block.instrs[-1] if block.instrs else None
            falls = term is None or not term.is_terminator
            if falls and block.label == last_label:
                self.report("cfi.fallthrough", block.label,
                            "reachable block falls off the end of the "
                            "function into the next function's code")
            for succ in self.cfg.successors(block.label):
                if succ in self.speculative:
                    self.report("cfi.fallthrough", block.label,
                                f"main code falls through or branches "
                                f"into appended block {succ!r}")

        for label in self.stub_labels:
            block = func.block(label)
            if not block.instrs or block.instrs[-1].op != OP_RFI:
                self.report("cfi.slice-termination", label,
                            "stub block does not end in rfi")

        for root, labels in self.regions.items():
            self._check_slice_region(root, labels)

    def _check_slice_region(self, root: str, labels: List[str]) -> None:
        func = self.func
        region = set(labels)
        for label in labels:
            block = func.block(label)
            term = block.instrs[-1] if block.instrs else None
            succs = [s for s in self.cfg.successors(label) if s != EXIT]
            if not succs:
                if term is None or term.op != OP_KILL:
                    self.report("cfi.slice-termination", label,
                                "slice-region exit does not stop the "
                                "thread with kill")
            # Every control transfer (including mid-block branches the
            # block-granular CFG does not model) must stay in the region.
            for instr in block.instrs:
                if instr.op in (OP_BR, OP_BR_COND):
                    target = _local_label(instr.target, func.name)
                    if target is None or target not in region:
                        self.report(
                            "cfi.slice-escape", label,
                            f"{instr.op} leaves the slice region for "
                            f"{instr.target!r}")
                elif instr.op == OP_SPAWN:
                    target = _local_label(instr.target, func.name)
                    if target not in self.slice_roots:
                        self.report(
                            "cfi.spawn-target", label,
                            f"spawn targets {instr.target!r}, not a "
                            "slice block of this function")
                elif instr.op == OP_CALL:
                    if not instr.target.endswith(SPEC_CLONE_SUFFIX):
                        self.report(
                            "cfi.slice-call", label,
                            f"slice calls {instr.target!r}, which is not "
                            "a store-free speculative clone")
            # Fall-through out of the region (block-granular edges; the
            # virtual exit is the legal kill/ret destination).
            for succ in succs:
                if succ not in region:
                    self.report("cfi.slice-escape", label,
                                f"slice region falls through to {succ!r}")

    def check_spawn_targets(self) -> None:
        """Spawns outside slice regions (i.e. in stubs) target slices."""
        for label in self.stub_labels:
            for instr in self.func.block(label).instrs:
                if instr.op == OP_SPAWN:
                    target = _local_label(instr.target, self.func.name)
                    if target not in self.slice_roots:
                        self.report(
                            "cfi.spawn-target", label,
                            f"spawn targets {instr.target!r}, not a "
                            "slice block of this function")

    def check_spec_stores(self) -> None:
        labels = set(self.stub_labels) | {
            l for labels in self.regions.values() for l in labels}
        clone = self.func.name.endswith(SPEC_CLONE_SUFFIX)
        for block in self.func.blocks:
            if not clone and block.label not in labels:
                continue
            for instr in block.instrs:
                if instr.is_store:
                    self.report("cfi.spec-store", block.label,
                                f"store in speculative code: {instr}")

    # -- register discipline ---------------------------------------------------------

    def check_register_discipline(self) -> None:
        func = self.func
        stub_slots: Dict[str, Set[int]] = {}
        stub_target: Dict[str, Optional[str]] = {}
        for label in self.stub_labels:
            block = func.block(label)
            stub_slots[label] = {i.imm for i in block.instrs
                                 if i.op == OP_LIB_ST}
            spawn = next((i for i in block.instrs if i.op == OP_SPAWN),
                         None)
            stub_target[label] = _local_label(
                spawn.target, func.name) if spawn is not None else None

        for stub, root in stub_target.items():
            if root not in self.regions:
                continue
            read = {i.imm
                    for label in self.regions[root]
                    for i in func.block(label).instrs
                    if i.op == OP_LIB_LD}
            missing = read - stub_slots[stub]
            if missing:
                self.report(
                    "regs.live-in-coverage", root,
                    f"slice reads live-in slots {sorted(missing)} that "
                    f"stub {stub} never writes")

        # Stub clobber: registers a stub writes vs. main-thread liveness
        # at the resumption point of each trigger using it.
        stub_defs: Dict[str, Set[str]] = {}
        for label in self.stub_labels:
            defs: Set[str] = set()
            for instr in func.block(label).instrs:
                defs.update(instruction_defs(instr))
            stub_defs[label] = defs - {regs.ZERO}
        if not any(stub_defs.values()):
            return  # nothing written anywhere: liveness not needed
        _, live_out = block_liveness(func, self.cfg)
        for block in func.blocks:
            if block.label in self.speculative:
                continue
            for index, instr in enumerate(block.instrs):
                if instr.op != OP_CHK_C:
                    continue
                stub = _local_label(instr.target, func.name)
                defs = stub_defs.get(stub, set())
                if not defs:
                    continue
                live = set(live_out.get(block.label, set()))
                for later in reversed(block.instrs[index + 1:]):
                    live -= set(instruction_defs(later))
                    live |= {r for r in instruction_uses(later, func)
                             if r not in (regs.ZERO, regs.TRUE_PREDICATE)}
                clobbered = defs & live
                if clobbered:
                    self.report(
                        "regs.stub-clobber", f"{block.label}@{index}",
                        f"stub {stub} writes {sorted(clobbered)}, live "
                        "in the main thread at the resumption point")

    # -- trigger legality -------------------------------------------------------------

    def check_main_code_preserved(self) -> None:
        if self.original is None:
            if not self.func.name.endswith(SPEC_CLONE_SUFFIX):
                self.report("trig.main-code-preserved", "<function>",
                            "function does not exist in the original "
                            "binary and is not a speculative clone")
            return
        orig_labels = {b.label for b in self.original.blocks}
        seen = set()
        for block in self.func.blocks:
            if block.label in self.speculative:
                continue
            seen.add(block.label)
            if block.label not in orig_labels:
                self.report("trig.main-code-preserved", block.label,
                            "main-code block does not exist in the "
                            "original binary")
                continue
            self._check_block_preserved(
                block, self.original.block(block.label))
        for label in orig_labels - seen:
            self.report("trig.main-code-preserved", label,
                        "original block missing from the adapted binary")

    def _check_block_preserved(self, block: BasicBlock,
                               orig: BasicBlock) -> None:
        """Adapted block == original with nops replaced by / chk.c added."""
        chk_count = sum(1 for i in block.instrs if i.op == OP_CHK_C)
        kept = [i for i in block.instrs if i.op != OP_CHK_C]
        skipped_nops = 0
        i = 0
        for instr in kept:
            while i < len(orig.instrs) and orig.instrs[i].uid != instr.uid:
                if orig.instrs[i].op != OP_NOP:
                    self.report(
                        "trig.main-code-preserved", block.label,
                        f"original instruction {orig.instrs[i]} was "
                        "dropped or reordered by adaptation")
                    return
                skipped_nops += 1
                i += 1
            if i >= len(orig.instrs):
                self.report("trig.main-code-preserved", block.label,
                            f"adaptation introduced {instr} into main "
                            "code")
                return
            i += 1
        for rest in orig.instrs[i:]:
            if rest.op != OP_NOP:
                self.report("trig.main-code-preserved", block.label,
                            f"original instruction {rest} was dropped by "
                            "adaptation")
                return
            skipped_nops += 1
        if skipped_nops > chk_count:
            self.report("trig.main-code-preserved", block.label,
                        f"{skipped_nops} nops vanished but only "
                        f"{chk_count} chk.c were placed")

    def _triggers_by_slice(self) -> Dict[str, List[Tuple[str, int]]]:
        """slice root -> [(block label, index)] of its chk.c triggers."""
        stub_target: Dict[str, Optional[str]] = {}
        for label in self.stub_labels:
            spawn = next((i for i in self.func.block(label).instrs
                          if i.op == OP_SPAWN), None)
            stub_target[label] = _local_label(
                spawn.target, self.func.name) if spawn else None
        out: Dict[str, List[Tuple[str, int]]] = {}
        for block in self.func.blocks:
            if block.label in self.speculative:
                continue
            for index, instr in enumerate(block.instrs):
                if instr.op != OP_CHK_C:
                    continue
                stub = _local_label(instr.target, self.func.name)
                root = stub_target.get(stub)
                if root is None:
                    self.report("cfi.spawn-target",
                                f"{block.label}@{index}",
                                f"chk.c targets {instr.target!r}, which "
                                "does not spawn a slice of this function")
                    continue
                out.setdefault(root, []).append((block.label, index))
        return out

    def check_trigger_legality(self) -> None:
        triggers = self._triggers_by_slice()
        if not triggers:
            return
        dom = dominator_tree(self.cfg)
        prefetch_sources = self.program.prefetch_sources
        uid_site: Dict[int, Tuple[str, int]] = {}
        for block in self.func.blocks:
            if block.label in self.speculative:
                continue
            for index, instr in enumerate(block.instrs):
                uid_site[instr.uid] = (block.label, index)

        for root, sites in triggers.items():
            # One trigger per path: no trigger dominates another.
            for a_label, a_index in sites:
                for b_label, b_index in sites:
                    if (a_label, a_index) >= (b_label, b_index):
                        continue
                    if a_label == b_label or dom.dominates(a_label,
                                                           b_label):
                        self.report(
                            "trig.double-trigger",
                            f"{a_label}@{a_index}",
                            f"trigger for {root} at {b_label}@{b_index} "
                            "lies on the same path (double trigger)")
            # Cut-set: every entry-to-load path passes a trigger first.
            delinquents = {
                prefetch_sources[i.uid]
                for label in self.regions.get(root, [])
                for i in self.func.block(label).instrs
                if i.uid in prefetch_sources}
            trigger_blocks: Dict[str, int] = {}
            for label, index in sites:
                prev = trigger_blocks.get(label)
                trigger_blocks[label] = index if prev is None \
                    else min(prev, index)
            for uid in sorted(delinquents):
                site = uid_site.get(uid)
                if site is None:
                    continue  # load lives in another function
                self._check_cut_set(root, trigger_blocks, site)

    def _check_cut_set(self, root: str, triggers: Dict[str, int],
                       load_site: Tuple[str, int]) -> None:
        """BFS from entry; trigger blocks absorb paths (the trigger runs
        before the block's continuation), so reaching the load through
        trigger-free blocks — or before the trigger inside its own block —
        breaks the cut."""
        load_label, load_index = load_site
        entry = self.cfg.entry
        seen = {entry}
        work = [entry]
        while work:
            label = work.pop()
            trig_index = triggers.get(label)
            if label == load_label and (trig_index is None
                                        or load_index < trig_index):
                self.report(
                    "trig.covers-load", f"{load_label}@{load_index}",
                    f"delinquent load of slice {root} is reachable from "
                    "the entry without executing a trigger first")
                return
            if trig_index is not None:
                continue  # path covered from here on
            for succ in self.cfg.successors(label):
                if succ != EXIT and succ not in seen:
                    seen.add(succ)
                    work.append(succ)


def lint_program(original: Program, adapted: Program) -> List[LintViolation]:
    """Lint ``adapted`` against every rule; returns all violations.

    ``original`` is the pre-adaptation binary the trigger-legality rules
    compare against (instruction uids are preserved by the tool's clone).
    An empty list means the binary passed.
    """
    violations: List[LintViolation] = []
    for name, func in adapted.functions.items():
        if not func.blocks:
            continue
        orig = original.functions.get(name)
        checker = _FunctionLint(adapted, func, orig, violations)
        checker.check_cfi()
        checker.check_spawn_targets()
        checker.check_spec_stores()
        checker.check_register_discipline()
        checker.check_main_code_preserved()
        checker.check_trigger_legality()
    return violations
