"""Correctness subsystem: binary linter, differential oracle, fuzzing.

Three layers of assurance over the post-pass adaptation pipeline:

* :mod:`repro.check.lint` — static rules (control-flow integrity,
  register discipline, trigger legality) over adapted binaries;
* :mod:`repro.check.oracle` — cross-model differential testing of the
  interpreter and both timing pipelines on the benchmark workloads;
* :mod:`repro.check.fuzz` — seeded random-program generation driving the
  whole pipeline and re-asserting the above on every generated binary.

``python -m repro check`` runs all three.
"""

from .fuzz import FuzzReport, run_case, run_fuzz
from .lint import LintViolation, lint_program
from .oracle import OracleResult, run_oracle

__all__ = [
    "FuzzReport",
    "LintViolation",
    "OracleResult",
    "lint_program",
    "run_case",
    "run_fuzz",
    "run_oracle",
]
