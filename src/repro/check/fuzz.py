"""Seeded random-program fuzzing of the whole adaptation pipeline.

The seven benchmark kernels exercise the tool along seven fixed paths; the
fuzzer generates an unbounded family of pointer-chasing kernels and drives
each through the complete pipeline — profile → slice → schedule → trigger
→ emit → **lint** → **differential oracle** — asserting at the end what
the linter and oracle assert for the real workloads.  Violations are
reported through the :mod:`repro.guard` diagnostic taxonomy (stage
``"check"``) and emitted as :mod:`repro.obs` events, so a fuzz run plugs
into the same reporting machinery as a tool run.

The generated programs are linked-list traversals — the delinquent-load
shape SSP targets — randomised along the axes that have historically
broken binary rewriters:

* 1–3 independent lists of 24–96 shuffled 64-byte nodes (cache-hostile);
* an optional *partner* pointer field, giving the slice a second
  dependent load off the chase spine;
* an optional callee wrapper around the value load, exercising region
  slicing across calls and speculative callee cloning;
* 0–3 scheduling ``nop``s sprinkled at loop headers and *inside* loop
  bodies — including directly after the chase load, which is exactly the
  slot a naive nearby-nop search would illegally steal for the trigger.

Everything is derived from one integer seed, so any failure replays with
``run_case(seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..codegen.verify import _architectural_outcome, differential_check
from ..guard.errors import ABORT, ERROR, FATAL, Diagnostic
from ..isa.builder import FunctionBuilder
from ..isa.interp import FunctionalInterpreter
from ..isa.memory import Heap
from ..isa.program import Program
from ..obs.tracer import NULL_TRACER
from ..profiling.collect import collect_profile
from ..sim.config import inorder_config
from ..sim.inorder import InOrderSimulator
from ..tool.postpass import SSPPostPassTool
from ..workloads.base import Workload
from .lint import lint_program

NODE_BYTES = 64
OFF_NEXT = 0
OFF_VALUE = 8
OFF_PARTNER = 16


class FuzzWorkload(Workload):
    """One random pointer-chasing kernel, fully determined by its seed."""

    name = "fuzz"
    description = "generated linked-list chase"
    suite = "fuzz"

    def __init__(self, seed: int):
        super().__init__("tiny", seed)

    def heap_bytes(self) -> int:
        return 1 << 22

    def _build_layout(self, heap: Heap, rng: random.Random) -> dict:
        num_lists = rng.randint(1, 3)
        partner = rng.random() < 0.5
        callee = rng.random() < 0.4
        lists = []
        expected = 0
        for _ in range(num_lists):
            count = rng.randint(24, 96)
            nodes = [heap.alloc(NODE_BYTES, align=64)
                     for _ in range(count)]
            rng.shuffle(nodes)
            for i, node in enumerate(nodes):
                value = rng.randrange(1, 100)
                expected += value
                heap.store(node + OFF_VALUE, value)
                heap.store(node + OFF_NEXT,
                           nodes[i + 1] if i + 1 < count else 0)
                if partner:
                    heap.store(node + OFF_PARTNER,
                               nodes[rng.randrange(count)])
            lists.append(nodes[0])
        if partner:
            # Partner values are only known once every node is filled in;
            # accumulate them in a deterministic second pass.
            for head in lists:
                cur = head
                while cur:
                    mate = heap.load(cur + OFF_PARTNER)
                    expected += heap.load(mate + OFF_VALUE)
                    cur = heap.load(cur + OFF_NEXT)
        out = heap.alloc(8)
        # Nop sprinkling positions, drawn here so layout and program agree.
        nops = {
            "preheader": rng.randint(0, 2),
            "after_chase": rng.randint(0, 2),
            "mid_body": rng.randint(0, 1),
        }
        return {"heads": lists, "out": out, "expected": expected,
                "partner": partner, "callee": callee, "nops": nops}

    def expected_output(self, layout: dict) -> Optional[int]:
        return layout["expected"]

    def _build_program(self, layout: dict) -> Program:
        prog = Program(entry="main")
        partner = layout["partner"]
        nops = layout["nops"]

        if layout["callee"]:
            cb = FunctionBuilder(prog.add_function("nodeval",
                                                   num_params=1))
            (n,) = cb.params(1)
            v = cb.load(n, OFF_VALUE)
            cb.ret(v)

        fb = FunctionBuilder(prog.add_function("main"))
        total = fb.mov_imm(0, dest="r110")
        for li, head in enumerate(layout["heads"]):
            fb.mov_imm(head, dest="r111")
            for _ in range(nops["preheader"]):
                fb.nop()  # scheduling slack at the preheader: trigger slot
            fb.label(f"loop{li}")
            done = fb.cmp("eq", "r111", imm=0)
            fb.br_cond(done, f"done{li}")
            if layout["callee"]:
                v = fb.call_fresh("nodeval", ["r111"])
            else:
                v = fb.load("r111", OFF_VALUE)
            fb.add(total, v, dest=total)
            for _ in range(nops["mid_body"]):
                fb.nop()
            if partner:
                mate = fb.load("r111", OFF_PARTNER)
                mv = fb.load(mate, OFF_VALUE)
                fb.add(total, mv, dest=total)
            fb.load("r111", OFF_NEXT, dest="r111")  # the chase load
            for _ in range(nops["after_chase"]):
                fb.nop()  # nop *after* the chase: an illegal trigger slot
            fb.br(f"loop{li}")
            fb.label(f"done{li}")
        o = fb.mov_imm(layout["out"])
        fb.store(o, total)
        fb.halt()
        return prog


@dataclass
class FuzzOutcome:
    """Result of one fuzz case."""

    seed: int
    stages: List[str] = field(default_factory=list)
    violations: List[Diagnostic] = field(default_factory=list)
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def violate(self, error: str, message: str,
                severity: str = ERROR) -> None:
        self.violations.append(Diagnostic(
            stage="check", error=error, severity=severity, policy=ABORT,
            message=f"seed {self.seed}: {message}"))


def run_case(seed: int, tracer=NULL_TRACER) -> FuzzOutcome:
    """One random program through the complete pipeline."""
    outcome = FuzzOutcome(seed=seed)
    with tracer.span("fuzz_case", category="check", seed=seed):
        _run_case(seed, outcome, tracer)
    for diag in outcome.violations:
        tracer.event("fuzz_violation", category="check",
                     **diag.to_dict())
    return outcome


def _run_case(seed: int, outcome: FuzzOutcome, tracer) -> None:
    workload = FuzzWorkload(seed)
    program = workload.build_program()

    # Pipeline front half: profile and adapt (the tool's own guard layer
    # is allowed to degrade — drops and rollbacks are not fuzz failures,
    # crashes and invariant violations are).
    try:
        profile = collect_profile(program, workload.build_heap)
    except Exception as exc:  # noqa: BLE001 - fuzzing for crashes
        outcome.violate("ProfileCrash", repr(exc), severity=FATAL)
        return
    outcome.stages.append("profile")

    result = SSPPostPassTool(tracer=tracer).adapt(
        program, profile, heap_factory=workload.build_heap)
    outcome.stages.append("adapt")
    if result.adapted is None:
        outcome.degraded = True
        return  # guarded degradation: legal, nothing left to lint
    adapted = result.adapted.program

    # Lint: every static rule on the adapted binary.
    for violation in lint_program(program, adapted):
        outcome.violate(f"Lint:{violation.rule}", str(violation))
    outcome.stages.append("lint")

    # Differential: interpreter equality (chk.c inert) ...
    heap = workload.build_heap()
    ref_state = FunctionalInterpreter(program, heap).run(count=False)
    workload.check_output(heap)
    heap = workload.build_heap()
    interp = FunctionalInterpreter(adapted, heap)
    try:
        adapted_state = interp.run(count=False)
        workload.check_output(heap)
    except Exception as exc:  # noqa: BLE001
        outcome.violate("InterpDivergence", repr(exc), severity=FATAL)
        return
    if _architectural_outcome(adapted_state) != \
            _architectural_outcome(ref_state):
        outcome.violate("InterpDivergence",
                        "adapted main-thread state differs",
                        severity=FATAL)
    outcome.stages.append("interp")

    # ... forced-fire shadow run (p-slices really execute) ...
    report = differential_check(program, adapted, workload.build_heap)
    if not report.equivalent:
        outcome.violate("ShadowDivergence", report.reason or "diverged",
                        severity=FATAL)
    outcome.stages.append("shadow")

    # ... and a live in-order run: results + net retired instructions.
    heap = workload.build_heap()
    sim = InOrderSimulator(adapted, heap, inorder_config(), True,
                           50_000_000)
    try:
        stats = sim.run()
        workload.check_output(heap)
    except Exception as exc:  # noqa: BLE001
        outcome.violate("SimDivergence", repr(exc), severity=FATAL)
        return
    if _architectural_outcome(sim.main_state) != \
            _architectural_outcome(ref_state):
        outcome.violate("SimDivergence",
                        "in-order final state differs from interpreter",
                        severity=FATAL)
    net = stats.main_instructions - stats.main_stub_instructions
    if net != interp.steps:
        outcome.violate(
            "RetiredMismatch",
            f"in-order retires {net} net main instructions, "
            f"interpreter {interp.steps}")
    outcome.stages.append("inorder")


@dataclass
class FuzzReport:
    """Aggregate of one fuzz run."""

    base_seed: int
    cases: List[FuzzOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def degraded(self) -> int:
        return sum(1 for case in self.cases if case.degraded)

    def summary(self) -> str:
        failed = [case for case in self.cases if not case.ok]
        lines = [f"fuzz: {len(self.cases)} programs, "
                 f"{self.degraded} guarded degradations, "
                 f"{len(failed)} with violations (base seed "
                 f"{self.base_seed})"]
        for case in failed:
            for diag in case.violations:
                lines.append(f"  [{diag.error}] {diag.message}")
        return "\n".join(lines)


def run_fuzz(count: int = 50, base_seed: int = 20020617,
             tracer=NULL_TRACER) -> FuzzReport:
    """Run ``count`` seeded cases; seeds are ``base_seed + i``."""
    report = FuzzReport(base_seed=base_seed)
    for i in range(count):
        report.cases.append(run_case(base_seed + i, tracer=tracer))
    return report
