"""Cross-model differential oracle.

The three execution engines — the functional interpreter, the in-order SMT
pipeline and the out-of-order pipeline — implement one ISA three times.
Speculative precomputation must be architecturally invisible, so all three
must agree on what an adapted binary *computes*; they are only allowed to
disagree on how long it takes.  The oracle runs one workload through every
engine and asserts:

* **architectural results** — the final main-thread register/predicate
  state (:func:`repro.codegen.verify._architectural_outcome`) and the
  workload's checked heap output are identical across interpreter,
  in-order and OOO runs of the adapted binary;
* **retired-instruction counts** — both timing models retire exactly
  ``interp.steps`` main-thread instructions net of recovery-stub overhead
  (``main_instructions - main_stub_instructions``); stubs are the only
  legal difference a fired ``chk.c`` may introduce;
* **adapted vs. unadapted** — the adapted binary's main thread computes
  the same result as the original (interpreter equality, plus the
  forced-fire :func:`repro.codegen.verify.differential_check` shadow run
  so the p-slices really execute); when every trigger replaced a ``nop``
  the adapted step count equals the original's *exactly*.

Budget variants re-run the timing models with aggressive runaway-slice
containment budgets enabled — killing speculative threads mid-flight must
not perturb any of the above.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..codegen.verify import _architectural_outcome, differential_check
from ..isa.instructions import OP_CHK_C
from ..isa.interp import FunctionalInterpreter
from ..isa.program import Program
from ..runner.worker import WorkloadArtifacts
from ..sim.machine import MODELS, make_config

#: Timing models the oracle exercises.
TIMING_MODELS = ("inorder", "ooo")

#: Aggressive containment budgets for the budget-enabled variant: small
#: enough that long slices are killed mid-flight on the tiny scale.
BUDGET_OVERRIDES = {"spec_instruction_budget": 48, "spec_cycle_budget": 400}


@dataclass
class OracleResult:
    """Outcome of the oracle for one workload."""

    workload: str
    scale: str
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    #: main-thread retired instructions net of stubs, per engine.
    retired: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def expect(self, name: str, condition: bool, detail: str) -> None:
        if condition:
            self.checks.append(name)
        else:
            self.failures.append(f"{name}: {detail}")

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = (f"{self.workload:<12} {self.scale:<8} {status} "
                f"({len(self.checks)} checks)")
        return "\n".join([line] + [f"  {f}" for f in self.failures])


def _inserted_instructions(original: Program, adapted: Program) -> int:
    """Main-code instructions adaptation *added* (vs. replacing nops).

    Appended stub/slice blocks and speculative clone functions are the
    expected additions; beyond those, block lengths only grow when a
    ``chk.c`` was inserted rather than overwriting a ``nop`` slot.  When
    this is zero the adapted main thread retires exactly as many
    instructions as the original.
    """
    inserted = 0
    for name, func in original.functions.items():
        new_func = adapted.functions.get(name)
        if new_func is None:
            continue
        lengths = {b.label: len(b.instrs) for b in func.blocks}
        for block in new_func.blocks:
            old = lengths.get(block.label)
            if old is not None:
                inserted += max(0, len(block.instrs) - old)
    return inserted


def _run_model(model: str, program: Program, workload,
               overrides: Optional[Dict[str, Any]] = None):
    """One timing-model run; returns (simulator, stats) after output check."""
    config = make_config(model)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    _, sim_cls = MODELS[model]
    heap = workload.build_heap()
    sim = sim_cls(program, heap, config, True, 200_000_000)
    stats = sim.run()
    workload.check_output(heap)
    return sim, stats


def run_oracle(name: str, scale: str = "tiny", *,
               budgets: bool = False,
               artifacts: Optional[WorkloadArtifacts] = None
               ) -> OracleResult:
    """Run the full differential oracle for one workload."""
    artifacts = artifacts or WorkloadArtifacts(name, scale)
    workload = artifacts.workload
    original = artifacts.program
    result = OracleResult(workload=name, scale=scale)

    adapted = artifacts.tool_result.adapted
    if adapted is None:
        result.expect("tool.adapted", False,
                      "adaptation degraded to a no-op: "
                      + artifacts.tool_result.guard.summary())
        return result
    adapted = adapted.program

    # Interpreter runs: unadapted reference, then adapted (chk.c inert).
    heap = workload.build_heap()
    interp = FunctionalInterpreter(original, heap)
    ref_state = interp.run(count=False)
    workload.check_output(heap)
    ref_outcome = _architectural_outcome(ref_state)
    ref_steps = interp.steps

    heap = workload.build_heap()
    interp = FunctionalInterpreter(adapted, heap)
    adapted_state = interp.run(count=False)
    workload.check_output(heap)
    adapted_outcome = _architectural_outcome(adapted_state)
    adapted_steps = interp.steps

    result.expect(
        "interp.adapted-vs-unadapted", adapted_outcome == ref_outcome,
        "adapted binary computes a different main-thread state")
    inserted = _inserted_instructions(original, adapted)
    if inserted == 0:
        result.expect(
            "interp.steps-exact", adapted_steps == ref_steps,
            f"every trigger replaced a nop, yet the adapted binary "
            f"retires {adapted_steps} steps vs. {ref_steps} original")
    else:
        result.expect(
            "interp.steps-inserted", adapted_steps >= ref_steps,
            f"{inserted} inserted chk.c, yet steps shrank "
            f"({adapted_steps} < {ref_steps})")
    result.retired["interp"] = adapted_steps

    # Forced-fire shadow equivalence: the p-slices really run.
    report = differential_check(original, adapted, workload.build_heap)
    result.expect("shadow.equivalent", report.equivalent,
                  report.reason or "shadow divergence")

    # Timing models on the adapted binary, speculation live.
    variants = [("", None)]
    if budgets:
        variants.append(("+budgets", BUDGET_OVERRIDES))
    for suffix, overrides in variants:
        for model in TIMING_MODELS:
            tag = model + suffix
            try:
                sim, stats = _run_model(model, adapted, workload,
                                        overrides)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                result.expect(f"{tag}.run", False, f"{exc!r}")
                continue
            outcome = _architectural_outcome(sim.main_state)
            result.expect(
                f"{tag}.outcome", outcome == ref_outcome,
                "final main-thread state diverges from the interpreter")
            net = stats.main_instructions - stats.main_stub_instructions
            result.retired[tag] = net
            result.expect(
                f"{tag}.retired", net == adapted_steps,
                f"retires {stats.main_instructions} main instructions "
                f"({stats.main_stub_instructions} in stubs): net {net} "
                f"!= interpreter {adapted_steps}")
    return result


def count_inserted_triggers(adapted: Program) -> int:
    """Number of ``chk.c`` instructions in an adapted binary (reporting)."""
    return sum(1 for func in adapted.functions.values()
               for block in func.blocks
               for i in block.instrs if i.op == OP_CHK_C)
