"""Figure 8 — speedups of SSP, OOO, and SSP+OOO over the baseline
in-order model.

"The three bars associated with each application denote the speedup of SSP
on the in-order machine, that of the OOO machine, and that of SSP on the
OOO machine, respectively.  The baseline is the in-order processor without
the precomputation threads."

Headline numbers being reproduced (in shape): SSP averages 87% speedup on
in-order; the OOO model alone averages 175%; SSP adds ~5% on top of OOO.
"""

from __future__ import annotations

from typing import List, Optional

from ..workloads import PAPER_ORDER
from .context import ExperimentContext, ExperimentResult


#: The (model, variant) grid this figure reads — warmed as one batch.
PAIRS = tuple((model, variant) for model in ("inorder", "ooo")
              for variant in ("base", "ssp"))


def run(context: Optional[ExperimentContext] = None, scale: str = "small",
        benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    context = context or ExperimentContext(scale)
    context.warm(benchmarks or PAPER_ORDER, PAIRS)
    rows = []
    for name in benchmarks or PAPER_ORDER:
        wr = context.run(name)
        base = wr.cycles("inorder", "base")
        rows.append([
            name,
            base / wr.cycles("inorder", "ssp"),
            base / wr.cycles("ooo", "base"),
            base / wr.cycles("ooo", "ssp"),
            wr.cycles("ooo", "base") / wr.cycles("ooo", "ssp"),
        ])
    avg = ["average"] + [sum(r[i] for r in rows) / len(rows)
                         for i in range(1, 5)]
    rows.append(avg)
    return ExperimentResult(
        title="Figure 8: speedups over the baseline in-order model",
        headers=["benchmark", "in-order+SSP", "OOO", "OOO+SSP",
                 "SSP gain on OOO"],
        rows=rows,
        notes="Paper shape: in-order+SSP averages 1.87x; OOO alone 2.75x; "
              "SSP on OOO adds a much smaller factor than on in-order.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
