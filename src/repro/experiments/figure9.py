"""Figure 9 — where delinquent loads are satisfied when they miss in L1.

"Figure 9 shows the percentage breakdown of which level of the memory
hierarchy is accessed.  The height of any bar in the figure is the L1
cache miss rate.  ... the four configurations for each benchmark are: the
baseline in-order model, the in-order model with SSP, the OOO model, and
the OOO model with SSP.  All the partial misses denote the percentage of
accesses to cache lines which were already in transit to L1."

Expected shape: with SSP, satisfaction moves out of full-latency memory
hits into partial hits and nearer levels ("most of the reduction of cache
misses happens in the lower cache levels").
"""

from __future__ import annotations

from typing import List, Optional

from ..workloads import PAPER_ORDER
from .context import ExperimentContext, ExperimentResult

CONFIGS = (("inorder", "base", "io"), ("inorder", "ssp", "io+SSP"),
           ("ooo", "base", "ooo"), ("ooo", "ssp", "ooo+SSP"))

CATEGORIES = ("L2 Hit", "Partial L2 Hit", "L3 Hit", "Partial L3 Hit",
              "Mem Hit", "Partial Mem Hit")


def run(context: Optional[ExperimentContext] = None, scale: str = "small",
        benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    context = context or ExperimentContext(scale)
    context.warm(benchmarks or PAPER_ORDER,
                 [(model, variant) for model, variant, _ in CONFIGS])
    rows = []
    for name in benchmarks or PAPER_ORDER:
        wr = context.run(name)
        uids = wr.delinquent_uids
        for model, variant, label in CONFIGS:
            stats = wr.stats(model, variant)
            breakdown = stats.delinquent_breakdown(uids)
            rows.append([name, label] +
                        [100 * breakdown.get(cat, 0.0)
                         for cat in CATEGORIES] +
                        [100 * breakdown.get("miss rate", 0.0)])
    return ExperimentResult(
        title="Figure 9: % of delinquent-load accesses satisfied per "
              "level when missing L1",
        headers=["benchmark", "config"] + list(CATEGORIES) +
                ["miss rate"],
        rows=rows,
        notes="All columns are % of delinquent-load accesses; the bar "
              "height (miss rate) is their sum.  SSP converts full-latency "
              "Mem hits into partial hits and nearer levels.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
