"""The paper's evaluation, reproduced: one module per table/figure."""

from .context import ExperimentContext, ExperimentResult, WorkloadRun
from .charts import render_bars, render_stacked
from . import figure2, figure8, figure9, figure10, hand_vs_auto
from . import table1, table2

#: experiment id -> runner, for the CLI and the benchmark harness.
ALL_EXPERIMENTS = {
    "table1": table1.run,
    "figure2": figure2.run,
    "table2": table2.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "hand_vs_auto": hand_vs_auto.run,
}


def run_all(scale: str = "small", context=None):
    """Run every experiment, sharing one context; returns id -> result."""
    context = context or ExperimentContext(scale)
    return {name: runner(context=context, scale=scale)
            for name, runner in ALL_EXPERIMENTS.items()}


__all__ = [
    "ExperimentContext", "ExperimentResult", "WorkloadRun",
    "render_bars", "render_stacked",
    "ALL_EXPERIMENTS", "run_all",
    "table1", "table2", "figure2", "figure8", "figure9", "figure10",
    "hand_vs_auto",
]
