"""ASCII bar-chart rendering for the reproduced figures.

The paper's figures are bar charts; ``render_bars`` turns an
:class:`ExperimentResult` whose numeric columns are bar heights into an
ASCII chart, so ``examples/evaluation.py --charts`` shows the same visual
shapes the paper prints (who wins, by roughly what factor, where
crossovers fall) without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .context import ExperimentResult

BAR = "█"
HALF = "▌"


def _bar(value: float, scale: float, width: int) -> str:
    cells = value / scale * width if scale else 0
    full = int(cells)
    text = BAR * full
    if cells - full >= 0.5:
        text += HALF
    return text


def render_bars(result: ExperimentResult,
                value_columns: Optional[Sequence[int]] = None,
                label_columns: Optional[Sequence[int]] = None,
                width: int = 40) -> str:
    """Render selected numeric columns of ``result`` as grouped bars.

    ``value_columns`` defaults to every float column; ``label_columns``
    to every non-numeric leading column.
    """
    if not result.rows:
        return result.title + "\n(no data)"
    first = result.rows[0]
    if value_columns is None:
        value_columns = [i for i, cell in enumerate(first)
                         if isinstance(cell, (int, float))
                         and not isinstance(cell, bool)]
    if label_columns is None:
        label_columns = [i for i in range(len(first))
                         if i not in value_columns
                         and isinstance(first[i], str)]
    peak = max((row[i] for row in result.rows for i in value_columns
                if isinstance(row[i], (int, float))), default=1.0)

    label_width = max(
        (len(" ".join(str(row[i]) for i in label_columns))
         for row in result.rows), default=4)
    header_width = max(len(result.headers[i]) for i in value_columns)

    lines = [result.title, "=" * len(result.title)]
    for row in result.rows:
        label = " ".join(str(row[i]) for i in label_columns)
        for j, i in enumerate(value_columns):
            value = row[i]
            if not isinstance(value, (int, float)):
                continue
            prefix = label.ljust(label_width) if j == 0 else \
                " " * label_width
            name = result.headers[i].ljust(header_width)
            lines.append(f"{prefix}  {name} "
                         f"{_bar(value, peak, width):<{width}} "
                         f"{value:.2f}")
        lines.append("")
    return "\n".join(lines)


def render_stacked(result: ExperimentResult,
                   value_columns: Sequence[int],
                   label_columns: Sequence[int],
                   glyphs: str = "▓▒░█▞·",
                   width: int = 60,
                   total: Optional[float] = None) -> str:
    """Render rows as stacked horizontal bars (Figure 9/10 style).

    Each value column becomes one segment; segment lengths are
    proportional to their values against ``total`` (default: the largest
    row sum).
    """
    sums = [sum(row[i] for i in value_columns) for row in result.rows]
    scale = total if total is not None else max(sums, default=1.0)
    label_width = max(
        (len(" ".join(str(row[i]) for i in label_columns))
         for row in result.rows), default=4)
    lines = [result.title, "=" * len(result.title)]
    legend = "  ".join(f"{glyphs[k % len(glyphs)]}={result.headers[i]}"
                       for k, i in enumerate(value_columns))
    lines.append(legend)
    for row, row_sum in zip(result.rows, sums):
        label = " ".join(str(row[i]) for i in label_columns)
        bar: List[str] = []
        for k, i in enumerate(value_columns):
            cells = int(round(row[i] / scale * width)) if scale else 0
            bar.append(glyphs[k % len(glyphs)] * cells)
        lines.append(f"{label.ljust(label_width)} |{''.join(bar)}| "
                     f"{row_sum:.1f}")
    return "\n".join(lines)
