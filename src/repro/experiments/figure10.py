"""Figure 10 — cycle breakdown, normalised to the baseline in-order model.

"The total cycles are partitioned into six categories: L3, L2, L1,
Cache+Exec, Exec, and Other.  The first three denote the miss cycles for
L3, L2, and L1 cache respectively, while no instruction is issued. ...
Figure 10 shows that SSP effectively reduces the L3 cycles, which is the
main reason for the 87% speedup on the in-order processor."

The paper plots em3d, treeadd.df and vpr; we reproduce those three (any
benchmark may be passed).  Each benchmark gets four bars: io, io+SSP, ooo,
ooo+SSP — every category is a percentage of the *baseline in-order* cycle
count, so shorter bars mean faster execution.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.stats import CYCLE_CATEGORIES
from .context import ExperimentContext, ExperimentResult

#: The benchmarks shown in the paper's Figure 10.
PAPER_FIGURE10 = ["em3d", "treeadd.df", "vpr"]

CONFIGS = (("inorder", "base", "io"), ("inorder", "ssp", "io+SSP"),
           ("ooo", "base", "ooo"), ("ooo", "ssp", "ooo+SSP"))


def run(context: Optional[ExperimentContext] = None, scale: str = "small",
        benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    context = context or ExperimentContext(scale)
    context.warm(benchmarks or PAPER_FIGURE10,
                 [(model, variant) for model, variant, _ in CONFIGS])
    rows = []
    for name in benchmarks or PAPER_FIGURE10:
        wr = context.run(name)
        baseline = wr.cycles("inorder", "base")
        for model, variant, label in CONFIGS:
            stats = wr.stats(model, variant)
            row = [name, label]
            for cat in CYCLE_CATEGORIES:
                row.append(100 * stats.cycle_breakdown[cat] / baseline)
            row.append(100 * stats.cycles / baseline)
            rows.append(row)
    return ExperimentResult(
        title="Figure 10: cycle breakdown normalised to baseline in-order "
              "(percent)",
        headers=["benchmark", "config"] + list(CYCLE_CATEGORIES) +
                ["total"],
        rows=rows,
        notes="Paper shape: the L3 category dominates baseline in-order "
              "bars and SSP mostly removes it; OOO already hides most L1 "
              "stalls, so its bars are shorter to begin with.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
