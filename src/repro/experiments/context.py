"""Shared experiment infrastructure.

Running the paper's evaluation means simulating every benchmark under many
configurations (baseline/SSP × in-order/OOO × perfect-memory variants).
:class:`ExperimentContext` memoises everything per (workload, scale):
profile, tool adaptation, and each simulation run — so Figure 8, Figure 9
and Figure 10 share the same underlying runs instead of re-simulating.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.program import Program
from ..profiling.collect import collect_profile
from ..profiling.profile import ProgramProfile
from ..sim.config import MachineConfig, inorder_config, ooo_config
from ..sim.machine import simulate
from ..sim.stats import SimStats
from ..tool.postpass import SSPPostPassTool, ToolOptions, ToolResult
from ..workloads import PAPER_ORDER, make_workload

#: Simulation variants understood by :meth:`WorkloadRun.stats`.
VARIANTS = ("base", "ssp", "perfect_mem", "perfect_dloads", "hand")


class WorkloadRun:
    """All artifacts for one benchmark at one scale, lazily built."""

    def __init__(self, name: str, scale: str,
                 tool_options: Optional[ToolOptions] = None):
        self.name = name
        self.scale = scale
        self.workload = make_workload(name, scale)
        self.program: Program = self.workload.build_program()
        self.tool_options = tool_options
        self._profile: Optional[ProgramProfile] = None
        self._tool_result: Optional[ToolResult] = None
        self._hand_program: Optional[Program] = None
        self._stats: Dict[Tuple[str, str], SimStats] = {}

    # -- artifacts -----------------------------------------------------------------

    @property
    def profile(self) -> ProgramProfile:
        if self._profile is None:
            self._profile = collect_profile(self.program,
                                            self.workload.build_heap)
        return self._profile

    @property
    def tool_result(self) -> ToolResult:
        if self._tool_result is None:
            tool = SSPPostPassTool(self.tool_options)
            self._tool_result = tool.adapt(self.program, self.profile)
        return self._tool_result

    @property
    def adapted_program(self) -> Program:
        return self.tool_result.program

    @property
    def delinquent_uids(self) -> List[int]:
        return self.tool_result.delinquent_uids

    @property
    def hand_program(self) -> Program:
        """The hand-adapted binary (mcf and health only, Section 4.5)."""
        if self._hand_program is None:
            hand = make_workload(self.name + ".hand", self.scale)
            self._hand_program = hand.build_program()
            self._hand_workload = hand
        return self._hand_program

    # -- simulation ------------------------------------------------------------------

    def _config(self, model: str, variant: str) -> MachineConfig:
        config = inorder_config() if model == "inorder" else ooo_config()
        if variant == "perfect_mem":
            config = config.with_perfect_memory()
        elif variant == "perfect_dloads":
            config = config.with_perfect_loads(self.delinquent_uids)
        return config

    def stats(self, model: str, variant: str = "base") -> SimStats:
        """Memoised simulation of one (model, variant) configuration."""
        key = (model, variant)
        if key in self._stats:
            return self._stats[key]
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        if variant == "ssp":
            program, spawning = self.adapted_program, True
            heap = self.workload.build_heap()
        elif variant == "hand":
            program, spawning = self.hand_program, True
            heap = self._hand_workload.build_heap()
        else:
            program, spawning = self.program, False
            heap = self.workload.build_heap()
        result = simulate(program, heap, model,
                          config=self._config(model, variant),
                          spawning=spawning)
        if variant in ("base", "ssp"):
            self.workload.check_output(heap)
        self._stats[key] = result
        return result

    def cycles(self, model: str, variant: str = "base") -> int:
        return self.stats(model, variant).cycles

    def speedup(self, model: str, variant: str,
                over: Tuple[str, str] = ("inorder", "base")) -> float:
        """Speedup of (model, variant) over a reference configuration."""
        return self.cycles(*over) / self.cycles(model, variant)


class ExperimentContext:
    """Memoised workload runs shared across experiment harnesses."""

    def __init__(self, scale: str = "small",
                 tool_options: Optional[ToolOptions] = None):
        self.scale = scale
        self.tool_options = tool_options
        self._runs: Dict[str, WorkloadRun] = {}

    def run(self, name: str) -> WorkloadRun:
        if name not in self._runs:
            self._runs[name] = WorkloadRun(name, self.scale,
                                           self.tool_options)
        return self._runs[name]

    def runs(self, names: Optional[List[str]] = None) -> List[WorkloadRun]:
        return [self.run(n) for n in (names or PAPER_ORDER)]


class ExperimentResult:
    """A reproduced table/figure: headers + rows + formatting."""

    def __init__(self, title: str, headers: List[str],
                 rows: List[List], notes: str = ""):
        self.title = title
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def format(self) -> str:
        def fmt(cell) -> str:
            if isinstance(cell, float):
                return f"{cell:.2f}"
            return str(cell)

        table = [self.headers] + [[fmt(c) for c in row]
                                  for row in self.rows]
        widths = [max(len(row[i]) for row in table)
                  for i in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        for r, row in enumerate(table):
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def row_map(self) -> Dict[str, List]:
        """Rows keyed by their first column (benchmark name)."""
        return {row[0]: row for row in self.rows}
