"""Shared experiment infrastructure.

Running the paper's evaluation means simulating every benchmark under many
configurations (baseline/SSP × in-order/OOO × perfect-memory variants).
All simulations route through :mod:`repro.runner`: each (workload, scale,
model, variant) pair becomes a content-addressed
:class:`~repro.runner.spec.RunSpec`, executed by the context's
:class:`~repro.runner.executor.Runner` — which consults the on-disk result
cache first, can fan a warmed batch out over worker processes, and records
telemetry.  On top of that, :class:`WorkloadRun` keeps the historical
in-memory memo so repeated queries within one context return the same
:class:`~repro.sim.stats.SimStats` object.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..isa.program import Program
from ..profiling.profile import ProgramProfile
from ..runner import Runner, RunSpec, artifacts_for
from ..runner.spec import VARIANTS  # noqa: F401  (historical re-export)
from ..sim.stats import SimStats
from ..tool.postpass import ToolOptions, ToolResult
from ..workloads import PAPER_ORDER, make_workload

#: (model, variant) pairs covering the full evaluation grid (the ``hand``
#: variant exists only for mcf/health and is warmed separately).
ALL_PAIRS: Tuple[Tuple[str, str], ...] = tuple(
    (model, variant)
    for model in ("inorder", "ooo")
    for variant in ("base", "ssp", "perfect_mem", "perfect_dloads"))


class WorkloadRun:
    """All artifacts for one benchmark at one scale, lazily built.

    Build products (program, profile, tool adaptation) come from the
    runner's per-process artifact memo, so in-process simulation shares
    them with this object instead of building twice.
    """

    def __init__(self, name: str, scale: str,
                 tool_options: Optional[ToolOptions] = None,
                 runner: Optional[Runner] = None):
        self.name = name
        self.scale = scale
        self.tool_options = tool_options
        self.runner = runner or Runner()
        self._artifacts = artifacts_for(self.spec("inorder", "base"))
        self.workload = self._artifacts.workload
        self._stats: Dict[Tuple[str, str], SimStats] = {}

    # -- artifacts -----------------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._artifacts.program

    @property
    def profile(self) -> ProgramProfile:
        return self._artifacts.profile

    @property
    def tool_result(self) -> ToolResult:
        return self._artifacts.tool_result

    @property
    def adapted_program(self) -> Program:
        return self.tool_result.program

    @property
    def delinquent_uids(self) -> List[int]:
        return self.tool_result.delinquent_uids

    @property
    def hand_program(self) -> Program:
        """The hand-adapted binary (mcf and health only, Section 4.5)."""
        return self._artifacts.hand_workload.build_program()

    # -- simulation ------------------------------------------------------------------

    def spec(self, model: str, variant: str = "base") -> RunSpec:
        """The declarative run spec for one (model, variant) pair."""
        return RunSpec.create(self.name, scale=self.scale, model=model,
                              variant=variant,
                              tool_options=self.tool_options)

    def stats(self, model: str, variant: str = "base") -> SimStats:
        """Memoised simulation of one (model, variant) configuration."""
        key = (model, variant)
        if key in self._stats:
            self.runner.telemetry.record_memo_hit(
                f"{self.name}/{self.scale}/{model}/{variant}")
            return self._stats[key]
        result = self.runner.stats(self.spec(model, variant))
        self._stats[key] = result
        return result

    def cycles(self, model: str, variant: str = "base") -> int:
        return self.stats(model, variant).cycles

    def speedup(self, model: str, variant: str,
                over: Tuple[str, str] = ("inorder", "base")) -> float:
        """Speedup of (model, variant) over a reference configuration."""
        return self.cycles(*over) / self.cycles(model, variant)


class ExperimentContext:
    """Memoised workload runs shared across experiment harnesses.

    The optional ``runner`` is shared by every :class:`WorkloadRun`; give
    it ``jobs > 1`` (or pass ``jobs=`` here) to execute each experiment's
    warmed batch of simulations in parallel worker processes.
    """

    def __init__(self, scale: str = "small",
                 tool_options: Optional[ToolOptions] = None,
                 runner: Optional[Runner] = None,
                 jobs: Optional[int] = None):
        self.scale = scale
        self.tool_options = tool_options
        self.runner = runner or Runner(jobs=jobs or 1)
        self._runs: Dict[str, WorkloadRun] = {}

    @property
    def telemetry(self):
        return self.runner.telemetry

    def run(self, name: str) -> WorkloadRun:
        if name not in self._runs:
            self._runs[name] = WorkloadRun(name, self.scale,
                                           self.tool_options,
                                           runner=self.runner)
        return self._runs[name]

    def runs(self, names: Optional[List[str]] = None) -> List[WorkloadRun]:
        return [self.run(n) for n in (names or PAPER_ORDER)]

    def warm(self, names: Optional[Iterable[str]] = None,
             pairs: Iterable[Tuple[str, str]] = ALL_PAIRS) -> int:
        """Execute every missing (benchmark, model, variant) run as one
        batch through the runner.

        Experiments call this with exactly the grid they query, so a
        multi-job runner overlaps the simulations instead of discovering
        them one ``stats()`` call at a time.  Returns the number of runs
        that were actually dispatched (cache hits included, memo hits
        not).  Failed runs are left unmemoised; the eventual ``stats()``
        query surfaces the error.
        """
        pairs = list(pairs)
        requests = []
        for name in names or PAPER_ORDER:
            wr = self.run(name)
            for model, variant in pairs:
                if (model, variant) not in wr._stats:
                    requests.append((wr, (model, variant)))
        if not requests:
            return 0
        results = self.runner.run(
            [wr.spec(model, variant) for wr, (model, variant) in requests])
        for (wr, key), result in zip(requests, results):
            if result.ok:
                wr._stats[key] = result.stats
        return len(requests)


class ExperimentResult:
    """A reproduced table/figure: headers + rows + formatting."""

    def __init__(self, title: str, headers: List[str],
                 rows: List[List], notes: str = ""):
        self.title = title
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def format(self) -> str:
        def fmt(cell) -> str:
            if isinstance(cell, float):
                return f"{cell:.2f}"
            return str(cell)

        table = [self.headers] + [[fmt(c) for c in row]
                                  for row in self.rows]
        widths = [max(len(row[i]) for row in table)
                  for i in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        for r, row in enumerate(table):
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def row_map(self) -> Dict[str, List]:
        """Rows keyed by their first column (benchmark name)."""
        return {row[0]: row for row in self.rows}
