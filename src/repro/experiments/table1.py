"""Table 1 — the modelled research Itanium processor.

Not an experiment per se: prints the machine-model parameters the
simulator implements, in the paper's table format, so a reader can check
the configuration against the paper row by row.
"""

from __future__ import annotations

from ..sim.config import table1_rows
from .context import ExperimentResult


def run(context=None, scale=None) -> ExperimentResult:
    rows = [[param, value] for param, value in table1_rows()]
    return ExperimentResult(
        title="Table 1: Modeled Research Itanium Processor",
        headers=["Parameter", "Value"],
        rows=rows,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
