"""Table 2 — slice characteristics.

Per benchmark: number of p-slices the tool generated, how many are
interprocedural, the average slice size (instructions emitted into the
slice block), and the average number of live-in values.

Paper values for reference: 2-8 slices per benchmark, sizes 9.0-28.3,
live-ins 2.8-4.8, interprocedural slices for health and mst; treeadd.df
uses basic SP while most loops use chaining (Section 4.2).
"""

from __future__ import annotations

from typing import List, Optional

from ..workloads import PAPER_ORDER
from .context import ExperimentContext, ExperimentResult


def run(context: Optional[ExperimentContext] = None, scale: str = "small",
        benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    context = context or ExperimentContext(scale)
    rows = []
    for name in benchmarks or PAPER_ORDER:
        wr = context.run(name)
        row = wr.tool_result.table2_row()
        kinds = sorted(set(wr.tool_result.kinds()))
        rows.append([name, int(row["slices"]), int(row["interproc"]),
                     row["avg_size"], row["avg_live_ins"],
                     "+".join(kinds)])
    return ExperimentResult(
        title="Table 2: slice characteristics",
        headers=["benchmark", "slices", "interproc", "avg size",
                 "avg live-ins", "SP models"],
        rows=rows,
        notes="Paper: em3d 8/0/10.3/2.8, health 2/1/9.0/3.5, "
              "mst 4/1/28.3/4.8, treeadd.df 3/0/11.3/3.0, "
              "treeadd.bf 2/0/12.5/4.5, mcf 5/0/14.0/4.4, "
              "vpr 6/0/13.5/4.0.  treeadd.df uses basic SP; most loops "
              "use chaining SP.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
