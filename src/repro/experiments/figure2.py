"""Figure 2 — speedup with perfect memory vs. perfect delinquent loads.

"The first bar in each category shows the speedup assuming a perfect
memory subsystem where all loads hit in the L1 cache. ... The second bar
represents the speedup when the delinquent loads are assumed to always hit
in the L1 cache.  This information also provides us the upper bound on
what the post-pass tool can achieve."

Expected shape: both bars are large on the in-order model and smaller on
the OOO model ("compared with the in-order model, the OOO model has less
room for improvement via SSP"), and the perfect-delinquent-loads bar
captures most of the perfect-memory bar ("eliminating performance losses
from only the delinquent loads yields much of the speedup achievable by
zero-miss-latency memory").
"""

from __future__ import annotations

from typing import List, Optional

from ..workloads import PAPER_ORDER
from .context import ExperimentContext, ExperimentResult


#: The (model, variant) grid this figure reads — warmed as one batch.
PAIRS = tuple((model, variant) for model in ("inorder", "ooo")
              for variant in ("base", "perfect_mem", "perfect_dloads"))


def run(context: Optional[ExperimentContext] = None, scale: str = "small",
        benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    context = context or ExperimentContext(scale)
    context.warm(benchmarks or PAPER_ORDER, PAIRS)
    rows = []
    for name in benchmarks or PAPER_ORDER:
        wr = context.run(name)
        io_base = wr.cycles("inorder", "base")
        ooo_base = wr.cycles("ooo", "base")
        rows.append([
            name,
            io_base / wr.cycles("inorder", "perfect_mem"),
            io_base / wr.cycles("inorder", "perfect_dloads"),
            ooo_base / wr.cycles("ooo", "perfect_mem"),
            ooo_base / wr.cycles("ooo", "perfect_dloads"),
        ])
    avg = ["average"] + [sum(r[i] for r in rows) / len(rows)
                         for i in range(1, 5)]
    rows.append(avg)
    return ExperimentResult(
        title="Figure 2: speedup with perfect memory vs. perfect "
              "delinquent loads",
        headers=["benchmark", "io perfect-mem", "io perfect-dloads",
                 "ooo perfect-mem", "ooo perfect-dloads"],
        rows=rows,
        notes="Speedups are over each model's own baseline.  Paper shape: "
              "large on in-order, smaller on OOO; the delinquent-load bar "
              "captures most of the perfect-memory bar.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
