"""Section 4.5 — automatic vs. hand adaptation on mcf and health.

"On an in-order processor, hand-adaptation achieves a speedup of 73% on
mcf, while the post-pass tool achieves 37% ... For the health benchmark,
the enhanced binary from SSP achieves 103% speedup on the in-order
processor, while hand adaptation achieves a speedup of 130%."

The reproduction compares the tool's output against the hand-adapted
binaries of :mod:`repro.workloads.hand` on both machine models.  One
expected deviation, documented in EXPERIMENTS.md: our tool automates a
one-level recursive-context substitution that the 2002 tool lacked, so on
health the automatic adaptation is close to (rather than clearly behind)
the hand adaptation.
"""

from __future__ import annotations

from typing import List, Optional

from .context import ExperimentContext, ExperimentResult

HAND_BENCHMARKS = ["mcf", "health"]


def run(context: Optional[ExperimentContext] = None, scale: str = "small",
        benchmarks: Optional[List[str]] = None) -> ExperimentResult:
    context = context or ExperimentContext(scale)
    context.warm(benchmarks or HAND_BENCHMARKS,
                 [(model, variant) for model in ("inorder", "ooo")
                  for variant in ("base", "ssp", "hand")])
    rows = []
    for name in benchmarks or HAND_BENCHMARKS:
        wr = context.run(name)
        for model in ("inorder", "ooo"):
            base = wr.cycles(model, "base")
            auto = base / wr.cycles(model, "ssp")
            hand = base / wr.cycles(model, "hand")
            rows.append([name, model, auto, hand, auto / hand])
    return ExperimentResult(
        title="Section 4.5: automatic vs. hand adaptation",
        headers=["benchmark", "model", "auto speedup", "hand speedup",
                 "auto/hand"],
        rows=rows,
        notes="Paper (in-order): mcf hand 1.73x vs auto 1.37x; health hand "
              "2.30x vs auto 2.03x.  OOO: health hand 3.0x vs auto 2.2x.",
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().format())
