"""Control-flow speculative slicing (Section 3.1.2).

"This approach, called control-flow speculative slicing, alleviates the
imprecision problem of static slicing by exploiting block profiling and
dynamic call graphs.  This control flow information is used to filter out
unexecuted paths and unrealized calls."

Concretely: instructions in blocks that never executed (or executed below a
small fraction of the enclosing region's entries) are excluded from every
slice — speculation is safe because p-slices are not held to correctness
constraints.  Dynamic call-graph filtering happens in
:class:`repro.analysis.callgraph.CallGraph` (indirect edges come only from
observed targets).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..isa.program import Program

#: Blocks executed fewer than this fraction of the hottest block of their
#: function are speculated away from slices.
DEFAULT_COLD_FRACTION = 0.001


def executed_instruction_uids(
        program: Program,
        block_freq: Dict[str, Dict[str, int]],
        cold_fraction: float = DEFAULT_COLD_FRACTION,
        exec_counts: Optional[Dict[int, int]] = None) -> Set[int]:
    """The set of instruction uids speculative slicing may include.

    Args:
        program: the profiled program.
        block_freq: function -> {block label -> execution count}.
        cold_fraction: blocks below this fraction of their function's
            hottest block are filtered out (unexecuted paths).
        exec_counts: optional per-instruction execution counts; when given,
            instructions that never executed are excluded even inside warm
            blocks (e.g. predicated-off code).
    """
    allowed: Set[int] = set()
    for name, func in program.functions.items():
        freqs = block_freq.get(name, {})
        hottest = max(freqs.values(), default=0)
        threshold = hottest * cold_fraction
        for block in func.blocks:
            count = freqs.get(block.label, 0)
            if hottest and count <= threshold:
                continue
            for instr in block.instrs:
                if exec_counts is not None and \
                        exec_counts.get(instr.uid, 0) == 0 and hottest:
                    continue
                allowed.add(instr.uid)
        if not hottest:
            # Unprofiled function: keep everything (pure static slicing).
            for instr in func.instructions():
                allowed.add(instr.uid)
    return allowed
