"""Context-sensitive backward slicing (Section 3.1).

The slicer computes, for a delinquent load, the set of instructions that
its *address* computation depends on, following flow and control dependence
edges backwards.  Interprocedurally it implements the context-sensitive
equation of [Liao et al., PPoPP'99] quoted in the paper:

    slice(r, [c1..cn]) = slice(r, f)  U  slice(contextmap(f, cn), [c1..cn-1])

i.e. a slice is built only *up the chain of calls on the call stack*:
within the load's function the intra-procedural slice is taken; every
formal parameter the slice depends on is mapped to the actual argument at
the call site on the context, and slicing continues in the caller.

Descents into callees happen through *slice summaries*: when the slice
reaches a value returned by a call, the callee's return-value summary
(instructions + the set of formals the return value depends on) is spliced
in.  Summaries are memoised; recurrences (recursive calls) are resolved by
the paper's worklist fixed-point: a summary already under construction is
used approximately, the dependence is recorded, and dependent summaries are
recomputed until nothing changes.

False dependences are never followed ("Our slicing tool also ignores
loop-carried anti dependences and output dependences").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa import registers as regs
from ..isa.instructions import Instruction
from ..isa.program import Program
from ..analysis.callgraph import CallGraph
from ..analysis.depgraph import CONTROL, FLOW, DependenceGraph
from ..guard import faultinject
from ..obs.tracer import Tracer, ensure_tracer


class SliceSummary:
    """Return-value slice summary of one function.

    Attributes:
        instructions: uids of the function's own instructions in the slice
            of its return value.
        formals: indices of formal parameters the return value depends on
            (the set *F* in the paper's equation).
        callees: names of callee functions whose summaries are spliced in.
    """

    def __init__(self):
        self.instructions: Set[int] = set()
        self.formals: Set[int] = set()
        self.callees: Set[str] = set()

    def key(self) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[str]]:
        return (frozenset(self.instructions), frozenset(self.formals),
                frozenset(self.callees))


class ProgramSlice:
    """A backward slice of one delinquent load's address."""

    def __init__(self, load: Instruction, function: str):
        self.load = load
        self.function = function
        #: function name -> uids of that function's instructions in slice.
        self.instructions: Dict[str, Set[int]] = {function: {load.uid}}
        #: formal-parameter indices of ``function`` the address depends on.
        self.formals: Set[int] = set()
        #: callees whose return-value summaries were spliced in.
        self.callees: Set[str] = set()
        #: callers visited while mapping formals up the context chain.
        self.context_functions: List[str] = []
        #: One-level recursive context substitutions: (producer uid,
        #: offset) pairs — the producer's value is the actual argument a
        #: self-recursive call passes for the formal the load's address
        #: depends on, so prefetching ``[producer + offset]`` precomputes
        #: the *next* activation's delinquent access (the
        #: context-sensitive payoff on recursive code like treeadd).
        self.substituted_prefetches: List[Tuple[int, int]] = []

    @property
    def interprocedural(self) -> bool:
        multi = sum(1 for uids in self.instructions.values() if uids)
        return multi > 1 or bool(self.callees)

    def size(self) -> int:
        return sum(len(uids) for uids in self.instructions.values())

    def uids_in(self, function: str) -> Set[int]:
        return self.instructions.get(function, set())


def _formal_index(reg: str) -> Optional[int]:
    """Argument-register index of ``reg``, if it is one."""
    if reg.startswith("r") and reg[1:].isdigit():
        n = int(reg[1:])
        if regs.FIRST_ARG <= n < regs.FIRST_ARG + regs.MAX_ARGS:
            return n - regs.FIRST_ARG
    return None


class ContextSensitiveSlicer:
    """Whole-program slicer with memoised callee summaries."""

    def __init__(self, program: Program, callgraph: CallGraph,
                 depgraphs: Dict[str, DependenceGraph],
                 executed_uids: Optional[Set[int]] = None,
                 max_callee_depth: int = 3,
                 tracer: Optional[Tracer] = None):
        """``depgraphs`` maps function name to its dependence graph.

        ``executed_uids``, when given, restricts slicing to instructions
        observed executing (control-flow speculative slicing hands this in,
        Section 3.1.2).  ``max_callee_depth`` bounds summary splicing (the
        region-graph traversal "stops when it is nested several levels
        deep").  ``tracer`` counts summary memo hits/computations and
        fixed-point recomputations.
        """
        self.program = program
        self.callgraph = callgraph
        self.depgraphs = depgraphs
        self.executed_uids = executed_uids
        self.max_callee_depth = max_callee_depth
        self.tracer = ensure_tracer(tracer)
        self._summaries: Dict[str, SliceSummary] = {}
        self._in_progress: List[str] = []       # summary construction stack
        self._summary_deps: Dict[str, Set[str]] = {}

    # -- public API -----------------------------------------------------------------

    def slice_load_address(self, load: Instruction,
                           function: str) -> ProgramSlice:
        """Backward slice of the address operand of ``load``."""
        faultinject.check("slice.exception")
        result = ProgramSlice(load, function)
        dg = self.depgraphs[function]
        seeds = self._address_seed_edges(load, dg)
        self._slice_in_function(function, seeds, result, depth=0)
        self._map_formals_up_contexts(result)
        self._substitute_recursive_contexts(load, function, result)
        return result

    def _substitute_recursive_contexts(self, load: Instruction,
                                       function: str,
                                       result: ProgramSlice) -> None:
        """One level of the context equation on self-recursive calls.

        When the load's address depends on a formal of a recursive
        function, ``contextmap`` at each self-call-site names the actual
        argument — a value computed in *this* activation.  Prefetching
        ``[actual + offset]`` precomputes the child activation's delinquent
        load (treeadd: prefetch both subtree roots at entry).  Deeper
        inlining is what only the hand adaptation performs (Section 4.5).
        """
        if not result.formals or not self.callgraph.is_recursive(function):
            return
        dg = self.depgraphs[function]
        offset = load.imm or 0
        for site in self.callgraph.call_sites_of(function, function):
            for formal in sorted(result.formals):
                reg = regs.arg_register(formal)
                for def_uid in dg.dataflow.defs_reaching_use(site.uid, reg):
                    producer = dg.instr_of.get(def_uid)
                    # Look through the argument-setup mov to the real
                    # producer (its register survives across calls).
                    hops = 0
                    while (producer is not None and producer.op == "mov"
                           and producer.srcs and hops < 4):
                        defs = dg.dataflow.defs_reaching_use(
                            producer.uid, producer.srcs[0])
                        if len(defs) != 1:
                            break
                        def_uid = next(iter(defs))
                        producer = dg.instr_of.get(def_uid)
                        hops += 1
                    if producer is None or producer.dest is None:
                        continue
                    if not self._allowed(def_uid):
                        continue
                    pair = (def_uid, offset)
                    if pair not in result.substituted_prefetches:
                        result.substituted_prefetches.append(pair)
                    self._slice_in_function(function, [def_uid], result,
                                            depth=0)

    def summary(self, function: str) -> SliceSummary:
        """Return-value slice summary of ``function`` (fixed point)."""
        if function in self._summaries and \
                function not in self._in_progress:
            self.tracer.counter("slicer.summary_hits").add()
            return self._summaries[function]
        if function in self._in_progress:
            # Recurrence: use the approximate summary already built and
            # record the dependence for the fixed-point worklist.
            approx = self._summaries.setdefault(function, SliceSummary())
            if self._in_progress:
                self._summary_deps.setdefault(function, set()).add(
                    self._in_progress[-1])
            return approx

        self._in_progress.append(function)
        self._summaries[function] = SliceSummary()
        summary = self._compute_summary(function)
        self.tracer.counter("slicer.summaries_computed").add()
        old_key = self._summaries[function].key()
        self._summaries[function] = summary
        self._in_progress.pop()

        # Fixed point: if this summary changed while others used its
        # approximation, recompute the dependents until stable.
        worklist = list(self._summary_deps.get(function, set())) \
            if summary.key() != old_key else []
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > 100 * max(1, len(self.program.functions)):
                raise RuntimeError("slice-summary fixed point diverged")
            name = worklist.pop()
            if name in self._in_progress:
                continue
            previous = self._summaries.get(name, SliceSummary()).key()
            self._in_progress.append(name)
            self._summaries[name] = self._compute_summary(name)
            self.tracer.counter("slicer.fixed_point_recomputes").add()
            self._in_progress.pop()
            if self._summaries[name].key() != previous:
                worklist.extend(self._summary_deps.get(name, set()))
        return self._summaries[function]

    # -- internals --------------------------------------------------------------------

    def _allowed(self, uid: int) -> bool:
        return self.executed_uids is None or uid in self.executed_uids

    def _address_seed_edges(self, load: Instruction,
                            dg: DependenceGraph) -> List[int]:
        """Defs of the load's *address* registers plus its controllers."""
        seeds: List[int] = []
        for edge in dg.preds(load.uid, kinds={FLOW, CONTROL}):
            seeds.append(edge.src)
        return seeds

    def _slice_in_function(self, function: str, seeds: List[int],
                           result: ProgramSlice, depth: int) -> None:
        """Backward closure over flow+control edges within ``function``,
        splicing callee summaries for values returned by calls."""
        dg = self.depgraphs[function]
        bucket = result.instructions.setdefault(function, set())
        work = [uid for uid in seeds if self._allowed(uid)]
        while work:
            uid = work.pop()
            if uid in bucket:
                continue
            bucket.add(uid)
            instr = dg.instr_of[uid]
            if instr.op in ("br.call", "br.call.ind"):
                self._splice_callee(function, instr, result, depth)
            # Formal parameter uses surface as flow edges from nothing;
            # detect them from the instruction's own reads.
            for reg in instr.reads:
                formal = _formal_index(reg)
                if formal is not None and \
                        not dg.dataflow.defs_reaching_use(uid, reg):
                    if function == result.function:
                        result.formals.add(formal)
            for edge in dg.preds(uid, kinds={FLOW, CONTROL}):
                if edge.src not in bucket and self._allowed(edge.src):
                    work.append(edge.src)

    def _splice_callee(self, function: str, call: Instruction,
                       result: ProgramSlice, depth: int) -> None:
        """The sliced value flowed out of a call: include the callee's
        return-value summary and the actual-argument computation."""
        if depth >= self.max_callee_depth:
            return
        if call.op == "br.call":
            targets = [call.target]
        else:
            targets = [s.callee for s in self.callgraph.sites_in[function]
                       if s.uid == call.uid and s.callee is not None]
        for callee in targets:
            if callee is None or callee not in self.depgraphs:
                continue
            if self.callgraph.is_recursive(callee):
                # The tool does not inline recursive chains (Section 4.5:
                # only hand adaptation performed that); the summary is still
                # computed for live-in analysis, but instructions are not
                # spliced beyond the recursion boundary.
                result.callees.add(callee)
                continue
            summary = self.summary(callee)
            result.callees.add(callee)
            callee_bucket = result.instructions.setdefault(callee, set())
            new = summary.instructions - callee_bucket
            callee_bucket |= summary.instructions
            result.callees |= summary.callees
            # Formals of the callee map to actuals at this site: the movs
            # into arg registers just before the call.
            dg = self.depgraphs[function]
            for formal in summary.formals:
                reg = regs.arg_register(formal)
                for def_uid in dg.dataflow.defs_reaching_use(call.uid, reg):
                    self._slice_in_function(function, [def_uid], result,
                                            depth)
            # Transitive splicing for the callee's own calls happens when
            # its summary was computed, so `new` needs no further work.
            del new

    def _compute_summary(self, function: str) -> SliceSummary:
        """Intra-procedural slice of the function's return value."""
        summary = SliceSummary()
        dg = self.depgraphs.get(function)
        if dg is None:
            return summary
        func = self.program.function(function)
        # Seeds: every instruction defining the return-value register that
        # reaches a ret (approximated as every def of RET_VALUE).
        seeds: List[int] = []
        for instr in func.instructions():
            if instr.dest == regs.RET_VALUE:
                seeds.append(instr.uid)
        work = [uid for uid in seeds if self._allowed(uid)]
        while work:
            uid = work.pop()
            if uid in summary.instructions:
                continue
            summary.instructions.add(uid)
            instr = dg.instr_of[uid]
            if instr.op in ("br.call", "br.call.ind"):
                targets = ([instr.target] if instr.op == "br.call" else
                           [s.callee for s in
                            self.callgraph.sites_in[function]
                            if s.uid == instr.uid and s.callee])
                for callee in targets:
                    if callee is None or callee not in self.depgraphs:
                        continue
                    summary.callees.add(callee)
                    callee_summary = self.summary(callee)
                    for formal in callee_summary.formals:
                        reg = regs.arg_register(formal)
                        for def_uid in dg.dataflow.defs_reaching_use(
                                instr.uid, reg):
                            if def_uid not in summary.instructions:
                                work.append(def_uid)
            for reg in instr.reads:
                formal = _formal_index(reg)
                if formal is not None and \
                        not dg.dataflow.defs_reaching_use(uid, reg):
                    summary.formals.add(formal)
            for edge in dg.preds(uid, kinds={FLOW, CONTROL}):
                if edge.src not in summary.instructions and \
                        self._allowed(edge.src):
                    work.append(edge.src)
        return summary

    def _map_formals_up_contexts(self, result: ProgramSlice) -> None:
        """Continue the slice in callers for each formal the address
        depends on — the context part of the slicing equation."""
        if not result.formals:
            return
        paths = self.callgraph.call_paths_to(result.function)
        for path in paths:
            for caller, site_uid in reversed(path):
                if caller not in self.depgraphs:
                    continue
                result.context_functions.append(caller)
                self.tracer.counter("slicer.context_mappings").add()
                self.tracer.event("context_map", category="slicing",
                                  load_uid=result.load.uid, caller=caller,
                                  function=result.function,
                                  formals=len(result.formals))
                dg = self.depgraphs[caller]
                for formal in sorted(result.formals):
                    reg = regs.arg_register(formal)
                    for def_uid in dg.dataflow.defs_reaching_use(site_uid,
                                                                 reg):
                        self._slice_in_function(caller, [def_uid], result,
                                                depth=0)
                # Only the innermost caller is mapped precisely; deeper
                # contexts would need per-level formal tracking, which the
                # region-based traversal makes unnecessary (it stops growing
                # once slack suffices).
                break
