"""Program slicing for speculative precomputation (Section 3.1)."""

from .slicer import ContextSensitiveSlicer, ProgramSlice, SliceSummary
from .speculative import DEFAULT_COLD_FRACTION, executed_instruction_uids
from .regional import (RegionSlice, live_in_registers,
                       merge_region_slices, restrict_to_region)

__all__ = [
    "ContextSensitiveSlicer", "ProgramSlice", "SliceSummary",
    "DEFAULT_COLD_FRACTION", "executed_instruction_uids",
    "RegionSlice", "live_in_registers", "merge_region_slices",
    "restrict_to_region",
]
