"""Region-based slicing (Section 3.1.1) — restricting a slice to a region.

Region-based slicing "allows us to increase the slack value incrementally
from one code region to its outer ones, to find slices with large enough
slack to avoid untimely prefetches, but small enough slack to avoid early
eviction".  The post-pass tool walks the region graph outward
(:meth:`repro.analysis.regions.RegionGraph.outward_chain`), and at each
region builds a :class:`RegionSlice`: the whole-program slice pruned to the
instructions of that region (plus spliced callee summaries for calls made
*inside* the region).

The pruning is the "slice-pruning" operation the paper calls key for SSP:
dependences leading out of the region are cut and their values become
live-ins supplied by the main thread at the trigger.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..isa.instructions import Instruction
from ..analysis.depgraph import DependenceGraph
from ..analysis.regions import LOOP, Region, RegionGraph
from .slicer import ProgramSlice


class RegionSlice:
    """A program slice restricted to one region."""

    def __init__(self, slice_: ProgramSlice, region: Region,
                 body: List[Instruction], dg: DependenceGraph):
        #: The underlying whole-program slice.
        self.slice = slice_
        #: The region this slice will precompute within.
        self.region = region
        #: Slice instructions inside the region, in layout order.
        self.body = body
        #: The region function's dependence graph.
        self.dg = dg
        #: Callee functions whose summaries the body's calls splice in.
        self.callees: Set[str] = set(slice_.callees)
        #: All delinquent loads this slice covers (grows when slices that
        #: share dependence-graph nodes are combined, Section 3.4.1).
        self.delinquent_uids: Set[int] = {slice_.load.uid}
        #: (producer uid, offset) recursive-context prefetch substitutions
        #: whose producers live in this body.
        body_uids = {ins.uid for ins in body}
        self.extra_prefetches = [
            (uid, off) for uid, off in slice_.substituted_prefetches
            if uid in body_uids]

    @property
    def load(self) -> Instruction:
        return self.slice.load

    @property
    def body_uids(self) -> Set[int]:
        return {ins.uid for ins in self.body}

    @property
    def is_loop(self) -> bool:
        return self.region.kind == LOOP

    def size(self) -> int:
        return len(self.body)

    def contains_stores(self) -> bool:
        return any(ins.is_store for ins in self.body)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RegionSlice(load={self.load.uid}, region="
                f"{self.region.name}, {len(self.body)} instrs)")


def restrict_to_region(slice_: ProgramSlice, region: Region,
                       region_graph: RegionGraph,
                       depgraphs: Dict[str, DependenceGraph]
                       ) -> Optional[RegionSlice]:
    """Prune ``slice_`` to ``region``; None when the region holds none of
    the slice (the load is elsewhere and nothing can be precomputed)."""
    func_name = region.function
    uids = slice_.uids_in(func_name)
    if not uids:
        return None
    dg = depgraphs[func_name]
    func = region_graph.program.function(func_name)
    body: List[Instruction] = []
    for block in func.blocks:
        if block.label not in region.blocks:
            continue
        for instr in block.instrs:
            if instr.uid in uids and not instr.is_store:
                body.append(instr)
    if not any(ins.uid == slice_.load.uid for ins in body):
        return None
    return RegionSlice(slice_, region, body, dg)


def merge_region_slices(slices: List[RegionSlice]) -> RegionSlice:
    """Combine slices that target the same region (Section 3.4.1:
    "different slices are combined if they share nodes in the dependence
    graph").  The merged body is the uid-union in layout order; all covered
    delinquent loads are prefetched by the one combined p-slice."""
    if not slices:
        raise ValueError("nothing to merge")
    if len(slices) == 1:
        return slices[0]
    primary = slices[0]
    union: Set[int] = set()
    for rs in slices:
        if rs.region is not primary.region:
            raise ValueError("can only merge slices of the same region")
        union |= rs.body_uids
    func = primary.dg.func
    body: List[Instruction] = []
    for block in func.blocks:
        if block.label not in primary.region.blocks:
            continue
        for instr in block.instrs:
            if instr.uid in union:
                body.append(instr)
    merged = RegionSlice(primary.slice, primary.region, body, primary.dg)
    merged.extra_prefetches = []
    for rs in slices:
        merged.callees |= rs.callees
        merged.delinquent_uids |= rs.delinquent_uids
        for pair in rs.extra_prefetches:
            if pair not in merged.extra_prefetches:
                merged.extra_prefetches.append(pair)
    return merged


def live_in_registers(region_slice: RegionSlice) -> List[str]:
    """Registers the slice body reads before defining — the live-ins the
    main thread must supply through the live-in buffer (Section 3.4.2).

    Order is deterministic (first-use order) so live-in buffer slots are
    stable across stub and slice codegen.
    """
    from ..analysis.dataflow import instruction_defs, instruction_uses
    from ..isa import registers as regs

    func = region_slice.dg.func
    defined: Set[str] = set()
    live: List[str] = []
    for instr in region_slice.body:
        for reg in instruction_uses(instr, func):
            if reg in (regs.ZERO, regs.TRUE_PREDICATE):
                continue
            if reg.startswith("p"):
                continue  # predicates are recomputed inside the slice
            if reg not in defined and reg not in live:
                live.append(reg)
        for reg in instruction_defs(instr):
            defined.add(reg)
    return live
