"""Live-in transfer code generation (Sections 2.1 and 3.4.2).

The machine has no flash-copy between register files; live-ins travel
through the on-chip live-in buffer (the RSE backing-store spill area).  The
*stub block*, run by the main thread as chk.c recovery code, copies live-in
registers into the buffer; the *slice block*, run by the spawned thread,
copies them out into its private register file.  A chaining thread re-fills
the buffer with updated values before spawning its successor.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa.instructions import Instruction
from ..isa.interp import LIB_SLOTS


class LiveInLayout:
    """Deterministic register -> live-in-buffer slot assignment."""

    def __init__(self, live_ins: List[str]):
        if len(live_ins) > LIB_SLOTS:
            raise ValueError(
                f"slice needs {len(live_ins)} live-ins; the live-in buffer "
                f"has {LIB_SLOTS} slots — the region selector should have "
                "rejected this slice")
        self.registers = list(live_ins)
        self.slot_of: Dict[str, int] = {
            reg: i for i, reg in enumerate(live_ins)}

    def __len__(self) -> int:
        return len(self.registers)

    def copy_in_code(self) -> List[Instruction]:
        """lib.st sequence: registers -> buffer (stub / pre-spawn code)."""
        return [Instruction(op="lib.st", srcs=(reg,), imm=slot)
                for slot, reg in enumerate(self.registers)]

    def copy_out_code(self) -> List[Instruction]:
        """lib.ld sequence: buffer -> registers (slice entry code)."""
        return [Instruction(op="lib.ld", dest=reg, imm=slot)
                for slot, reg in enumerate(self.registers)]
