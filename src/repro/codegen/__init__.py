"""SSP-enabled code generation (Section 3.4.2)."""

from .liveins import LiveInLayout
from .emit import (
    SPEC_CLONE_SUFFIX,
    AdaptedBinary,
    EmitError,
    SliceRecord,
    SSPEmitter,
)
from .verify import (
    VerificationError,
    is_well_formed,
    verify_adapted_binary,
)

__all__ = ["LiveInLayout", "SPEC_CLONE_SUFFIX", "AdaptedBinary",
           "EmitError", "SliceRecord", "SSPEmitter",
           "VerificationError", "is_well_formed",
           "verify_adapted_binary"]
