"""SSP-enabled code generation (Section 3.4.2, Figure 7).

The emitter takes the original binary, the scheduled slices and their
trigger points, and produces the adapted binary:

* each trigger becomes a ``chk.c`` — replacing a nop in the trigger block
  when one is available (the paper's binary adaptation replaces a nop
  slot), otherwise inserted;
* a *stub block* per slice is appended after the trigger's function: it
  copies live-ins to the buffer, spawns the slice, and returns to the
  interrupted instruction (``rfi``);
* a *slice block* holds the p-slice: live-in copy-out, the (optional)
  predicted-condition kill guard, the critical sub-slice, the chain
  spawn with its live-in re-fill (chaining SP only), the non-critical
  sub-slice with delinquent loads converted to prefetches, and a final
  ``kill``.

Invariants enforced: a slice block never contains a store; instructions
whose qualifying predicate is not computed inside the slice are pruned
(speculative slices tolerate dropped code, not wrong main-thread state).

Callees invoked from inside a slice body are cloned into store-free
speculative versions ("the tool can form a slice block by extracting
instructions from various procedures") so a speculative thread can never
write memory, no matter what it calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..guard import faultinject
from ..isa import registers as regs
from ..isa.instructions import Instruction
from ..isa.program import Function, Program
from ..obs.tracer import Tracer, ensure_tracer
from ..scheduling.schedule import CHAINING, ScheduledSlice
from ..triggers.placement import TriggerPoint
from .liveins import LiveInLayout

#: Suffix for store-free speculative clones of callee functions.
SPEC_CLONE_SUFFIX = ".sspclone"


class SliceRecord:
    """Per-slice emission record (the Table 2 row material)."""

    def __init__(self, scheduled: ScheduledSlice, stub_label: str,
                 slice_label: str, triggers: List[TriggerPoint],
                 emitted_size: int):
        self.scheduled = scheduled
        self.stub_label = stub_label
        self.slice_label = slice_label
        self.triggers = triggers
        self.emitted_size = emitted_size

    @property
    def kind(self) -> str:
        return self.scheduled.kind

    @property
    def interprocedural(self) -> bool:
        return self.scheduled.region_slice.slice.interprocedural

    @property
    def num_live_ins(self) -> int:
        return len(self.scheduled.live_ins)


class AdaptedBinary:
    """The emitter's output: the SSP-enhanced program plus its records."""

    def __init__(self, program: Program, records: List[SliceRecord]):
        self.program = program
        self.records = records

    @property
    def num_slices(self) -> int:
        return len(self.records)


class EmitError(Exception):
    """Raised when a slice cannot be emitted soundly."""


class SSPEmitter:
    """Generates the SSP-enhanced binary."""

    def __init__(self, program: Program, tracer: Optional[Tracer] = None):
        #: The original binary (left untouched).
        self.original = program
        #: The adapted clone (instruction uids preserved for main code).
        self.program = program.clone()
        self.tracer = ensure_tracer(tracer)
        self._counter = 0
        self._cloned_callees: Dict[str, str] = {}
        self.records: List[SliceRecord] = []
        #: Trigger insertions per block, applied sorted to keep indices
        #: valid.  Each entry carries the slice's delinquent-load uids and
        #: live-in registers so the nop-slot search can honour placement
        #: legality (see :meth:`_nearby_nop`).
        self._pending_triggers: Dict[
            Tuple[str, str],
            List[Tuple[int, str, frozenset, frozenset]]] = {}

    # -- public API --------------------------------------------------------------------

    def add_slice(self, scheduled: ScheduledSlice,
                  triggers: List[TriggerPoint]) -> SliceRecord:
        """Attach one scheduled slice and queue its triggers."""
        self._counter += 1
        n = self._counter
        func_name = scheduled.region_slice.region.function
        func = self.program.function(func_name)
        stub_label = f".ssp_stub{n}"
        slice_label = f".ssp_slice{n}"

        layout = LiveInLayout(scheduled.live_ins)
        stub = func.add_block(stub_label)
        for instr in layout.copy_in_code():
            stub.append(instr)
        stub.append(Instruction(op="spawn", target=slice_label))
        stub.append(Instruction(op="rfi"))

        slice_block = func.add_block(slice_label)
        emitted = self._emit_slice_body(func, slice_block, scheduled,
                                        layout, slice_label)

        delinquents = frozenset(
            scheduled.region_slice.delinquent_uids
            if hasattr(scheduled.region_slice, "delinquent_uids")
            else {scheduled.load.uid})
        live_ins = frozenset(layout.registers)
        for point in triggers:
            key = (point.function, point.block)
            self._pending_triggers.setdefault(key, []).append(
                (point.index, stub_label, delinquents, live_ins))

        record = SliceRecord(scheduled, stub_label, slice_label,
                             list(triggers), emitted)
        self.records.append(record)
        self.tracer.counter("codegen.slices_emitted").add()
        self.tracer.counter("codegen.instructions_emitted").add(emitted)
        self.tracer.event("emit_slice", category="codegen",
                          slice_label=slice_label, kind=scheduled.kind,
                          emitted=emitted, triggers=len(triggers),
                          live_ins=len(scheduled.live_ins))
        return record

    def finalize(self) -> AdaptedBinary:
        """Apply triggers, validate, finalise and return the new binary."""
        self._apply_triggers()
        self._validate()
        from .verify import verify_adapted_binary
        verify_adapted_binary(self.program)
        self.program.finalize()
        return AdaptedBinary(self.program, self.records)

    # -- slice body -----------------------------------------------------------------------

    #: Spin-retry budget for a chase load racing its producer (a chained
    #: consumer can briefly outrun the main thread, e.g. a BFS queue).
    CHASE_RETRY_BUDGET = 256

    def _emit_slice_body(self, func: Function, block,
                         scheduled: ScheduledSlice,
                         layout: LiveInLayout, slice_label: str) -> int:
        current = [block]  # mutable current-block holder

        def append(instr: Instruction) -> None:
            current[0].append(instr)

        for instr in layout.copy_out_code():
            append(instr)

        if scheduled.guard is not None:
            guard = scheduled.guard
            kill_pred = "p63"  # reserved in generated code
            srcs = (guard.reg,) if guard.other_reg is None else \
                (guard.reg, guard.other_reg)
            append(Instruction(op="cmp", dest=kill_pred, srcs=srcs,
                               imm=guard.immediate,
                               relation=guard.relation))
            append(Instruction(op="kill", pred=kill_pred))

        defined: Set[str] = set(layout.registers) | {regs.ZERO}
        emitted = 0
        delinquents = scheduled.region_slice.delinquent_uids \
            if hasattr(scheduled.region_slice, "delinquent_uids") else \
            {scheduled.load.uid}
        body_uids = {i.uid for i in scheduled.ordered}

        def emit_chase_retry(load_clone: Instruction) -> None:
            """Bounded spin on a chase load racing its producer: re-poll
            until the value is non-null, kill when the budget runs out
            (the traversal genuinely ended)."""
            retry_label = f"{slice_label}.retry"
            done_label = f"{slice_label}.go"
            self.tracer.counter("codegen.chase_retry_loops").add()
            append(Instruction(op="mov", dest="r59",
                               imm=self.CHASE_RETRY_BUDGET))
            retry_block = func.add_block(retry_label)
            current[0] = retry_block
            append(load_clone)
            append(Instruction(op="cmp", dest="p61",
                               srcs=(load_clone.dest,), imm=0,
                               relation="ne"))
            append(Instruction(op="br.cond", pred="p61",
                               target=done_label))
            append(Instruction(op="sub", dest="r59", srcs=("r59",), imm=1))
            append(Instruction(op="cmp", dest="p60", srcs=("r59",), imm=0,
                               relation="gt"))
            append(Instruction(op="br.cond", pred="p60",
                               target=retry_label))
            append(Instruction(op="kill"))
            current[0] = func.add_block(done_label)

        def emit_one(instr: Instruction) -> None:
            nonlocal emitted
            if instr.is_store:
                raise EmitError(f"store {instr} reached slice emission")
            if instr.pred is not None and instr.pred not in defined and \
                    instr.pred != regs.TRUE_PREDICATE:
                return  # predicate unavailable: prune speculatively
            clone = instr.copy()
            if clone.op == "ld" and instr.uid in delinquents:
                # Whether converted to an lfetch or kept as a real load (a
                # chase load whose value feeds the slice), the clone's
                # accesses prefetch for the original delinquent load.
                if self._value_unused(instr, scheduled, body_uids):
                    clone = Instruction(op="lfetch", srcs=clone.srcs,
                                        imm=clone.imm, pred=clone.pred)
                    self.tracer.counter("codegen.lfetch_conversions").add()
                else:
                    self.tracer.counter("codegen.chase_loads_kept").add()
                self.program.prefetch_sources[clone.uid] = instr.uid
            if clone.op in ("br.call", "br.call.ind"):
                clone = self._retarget_call(clone)
            if instr.uid == scheduled.kill_after_uid and \
                    clone.op == "ld" and clone.dest is not None:
                emit_chase_retry(clone)
                emitted += 1
                defined.add(clone.dest)
                return
            append(clone)
            emitted += 1
            if instr.dest is not None:
                defined.add(instr.dest)
            if clone.op == "br.call":
                defined.add(regs.RET_VALUE)

        for instr in scheduled.critical:
            emit_one(instr)

        if scheduled.kind == CHAINING:
            for copy_instr in layout.copy_in_code():
                append(copy_instr)
            append(Instruction(op="spawn", target=slice_label,
                               pred=scheduled.spawn_pred))

        for instr in scheduled.noncritical:
            emit_one(instr)

        for reg, offset in scheduled.extra_prefetches:
            if reg in defined:
                extra = Instruction(op="lfetch", srcs=(reg,), imm=offset)
                self.program.prefetch_sources[extra.uid] = \
                    scheduled.load.uid
                append(extra)
                emitted += 1
                self.tracer.counter(
                    "codegen.context_substituted_prefetches").add()

        if faultinject.fires("codegen.invalid_program"):
            # Chaos harness: a store inside a p-slice violates the core
            # invariant and must be caught by validation, never shipped.
            append(Instruction(op="st", srcs=(regs.ZERO, regs.ZERO)))

        append(Instruction(op="kill"))
        return emitted

    def _value_unused(self, instr: Instruction, scheduled: ScheduledSlice,
                      body_uids: Set[int]) -> bool:
        if any(instr.dest == reg for reg, _ in scheduled.extra_prefetches):
            return False  # feeds a recursive-context prefetch
        dg = scheduled.region_slice.dg
        for edge in dg.succs(instr.uid, kinds={"flow"}):
            if edge.dst in body_uids and edge.dst != instr.uid:
                return False
        return True

    # -- speculative callee clones ----------------------------------------------------------

    def _retarget_call(self, call: Instruction) -> Instruction:
        """Point in-slice calls at store-free speculative clones."""
        if call.op != "br.call":
            return call  # indirect: left as-is; targets were profiled
        clone_name = self._speculative_clone(call.target)
        call.target = clone_name
        return call

    def _speculative_clone(self, name: str) -> str:
        if name.endswith(SPEC_CLONE_SUFFIX):
            return name
        if name in self._cloned_callees:
            return self._cloned_callees[name]
        clone_name = name + SPEC_CLONE_SUFFIX
        self._cloned_callees[name] = clone_name
        self.tracer.counter("codegen.callee_clones").add()
        source = self.program.function(name)
        clone = self.program.add_function(clone_name, source.num_params)
        for block in source.blocks:
            new_block = clone.add_block(block.label)
            for instr in block.instrs:
                if instr.is_store:
                    continue  # store-free speculative version
                dup = instr.copy()
                if dup.op == "br.call":
                    dup.target = self._speculative_clone(dup.target)
                new_block.append(dup)
        return clone_name

    # -- triggers ------------------------------------------------------------------------------

    def _apply_triggers(self) -> None:
        for (func_name, label), entries in self._pending_triggers.items():
            func = self.program.function(func_name)
            block = func.block(label)
            # Descending index order keeps earlier indices valid.
            for index, stub_label, delinquents, live_ins in sorted(
                    entries, reverse=True):
                nop_at = self._nearby_nop(block, index, delinquents,
                                          live_ins)
                chk = Instruction(op="chk.c", target=stub_label)
                if nop_at is not None:
                    block.instrs[nop_at] = chk
                    self.tracer.counter(
                        "codegen.triggers_in_nop_slots").add()
                else:
                    block.instrs.insert(index, chk)
                    self.tracer.counter("codegen.triggers_inserted").add()

    def _nearby_nop(self, block, index: int, delinquents: frozenset,
                    live_ins: frozenset, window: int = 2) -> Optional[int]:
        """A *legal* nop slot at/near the trigger index, if any.

        Displacing the trigger from the placement policy's chosen index is
        only sound while two constraints hold.  Forward (later in the
        block), the ``chk.c`` must not move past one of the slice's
        delinquent loads — the trigger has to dominate the loads it
        prefetches for, or the very miss it targets retires before the
        slice is spawned.  Backward (earlier), it must not move above an
        instruction that defines one of the slice's live-in registers —
        the stub snapshots those registers when the trigger fires, and
        hoisting the snapshot above a producer captures a stale value and
        sends the p-slice down the wrong pointer chain.
        """
        for offset in range(window + 1):
            for candidate in (index + offset, index - offset):
                if not 0 <= candidate < len(block.instrs):
                    continue
                if block.instrs[candidate].op != "nop":
                    continue
                if candidate > index:
                    crossed = block.instrs[index:candidate]
                    if any(i.uid in delinquents for i in crossed):
                        continue
                elif candidate < index:
                    crossed = block.instrs[candidate:index]
                    if any(i.dest in live_ins for i in crossed):
                        continue
                    if any(i.uid in delinquents for i in crossed):
                        continue
                return candidate
        return None

    # -- validation -------------------------------------------------------------------------------

    def _validate(self) -> None:
        for func in self.program.functions.values():
            for block in func.blocks:
                is_slice = block.label.startswith(".ssp_slice")
                if not is_slice and not func.name.endswith(
                        SPEC_CLONE_SUFFIX):
                    continue
                for instr in block.instrs:
                    if instr.is_store:
                        raise EmitError(
                            f"store in speculative code: {instr} in "
                            f"{func.name}:{block.label}")
