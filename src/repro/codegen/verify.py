"""Static verification of SSP-adapted binaries (Figure 7 invariants).

The emitter's output must satisfy a set of structural invariants for the
adaptation to be sound — the properties Section 2 bases SSP's "separating
the performance issue from the correctness issue" argument on.  This
verifier checks them on any program, so tests (and the tool itself, at
finalise time) can prove an adapted binary is well formed:

1. every ``chk.c`` targets a stub block inside the same function;
2. every stub block is ``lib.st* ; spawn ; rfi`` — it copies live-ins,
   spawns, and returns to the interrupted instruction;
3. every spawn targets a slice block (or the stub's own slice);
4. slice blocks and everything reachable from them without returning to
   main code contain **no stores** and terminate in ``kill``;
5. slice blocks begin by copying live-ins out of the buffer, and the
   slots they read match the slots their stub wrote;
6. ``rfi`` appears only in stub blocks; ``kill`` only in speculative code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..guard import faultinject
from ..isa.interp import ExecutionError, ThreadState, execute, spawn_thread
from ..isa.memory import Heap
from ..isa.program import Program

STUB_PREFIX = ".ssp_stub"
SLICE_PREFIX = ".ssp_slice"


class VerificationError(Exception):
    """An adapted binary violates an SSP structural invariant."""


def _slice_block_labels(program: Program, func_name: str,
                        root_label: str) -> List[str]:
    """The slice block plus its continuation blocks (retry/go chains)."""
    func = program.function(func_name)
    labels = [b.label for b in func.blocks]
    start = labels.index(root_label)
    out = [root_label]
    for label in labels[start + 1:]:
        if label.startswith(root_label + "."):
            out.append(label)
        else:
            break
    return out


def verify_adapted_binary(program: Program) -> Dict[str, int]:
    """Check all invariants; returns summary counts or raises
    :class:`VerificationError`."""
    counts = {"triggers": 0, "stubs": 0, "slices": 0, "spawns": 0}
    for func_name, func in program.functions.items():
        stub_slots: Dict[str, List[int]] = {}
        stub_spawn_target: Dict[str, Optional[str]] = {}

        # Pass 1: stubs.
        for block in func.blocks:
            if not block.label.startswith(STUB_PREFIX):
                continue
            counts["stubs"] += 1
            ops = [i.op for i in block.instrs]
            if not ops or ops[-1] != "rfi":
                raise VerificationError(
                    f"{func_name}:{block.label}: stub must end in rfi")
            if "spawn" not in ops:
                raise VerificationError(
                    f"{func_name}:{block.label}: stub never spawns")
            body = ops[:-1]
            if body and body[-1] != "spawn":
                raise VerificationError(
                    f"{func_name}:{block.label}: spawn must precede rfi")
            for op in body[:-1]:
                if op != "lib.st":
                    raise VerificationError(
                        f"{func_name}:{block.label}: stub may only copy "
                        f"live-ins before spawning (found {op})")
            stub_slots[block.label] = [i.imm for i in block.instrs
                                       if i.op == "lib.st"]
            spawn = next(i for i in block.instrs if i.op == "spawn")
            stub_spawn_target[block.label] = spawn.target

        # Pass 2: triggers.
        for block in func.blocks:
            if block.label.startswith(STUB_PREFIX) or \
                    block.label.startswith(SLICE_PREFIX):
                continue
            for instr in block.instrs:
                if instr.op == "chk.c":
                    counts["triggers"] += 1
                    if instr.target not in stub_slots:
                        raise VerificationError(
                            f"{func_name}:{block.label}: chk.c targets "
                            f"{instr.target!r}, which is not a stub block")
                if instr.op == "rfi":
                    raise VerificationError(
                        f"{func_name}:{block.label}: rfi outside a stub")
                if instr.op == "kill":
                    raise VerificationError(
                        f"{func_name}:{block.label}: kill outside "
                        "speculative code")

        # Pass 3: slices.
        slice_roots = [b.label for b in func.blocks
                       if b.label.startswith(SLICE_PREFIX)
                       and "." not in b.label[len(SLICE_PREFIX):]]
        for root in slice_roots:
            counts["slices"] += 1
            labels = _slice_block_labels(program, func_name, root)
            instrs = [i for label in labels
                      for i in func.block(label).instrs]
            ops = [i.op for i in instrs]
            if "kill" not in ops:
                raise VerificationError(
                    f"{func_name}:{root}: slice never kills itself")
            for instr in instrs:
                if instr.is_store:
                    raise VerificationError(
                        f"{func_name}:{root}: store in a slice ({instr})")
                if instr.op == "halt":
                    raise VerificationError(
                        f"{func_name}:{root}: slice must kill, not halt")
                if instr.op == "spawn":
                    counts["spawns"] += 1
            # Live-in slot agreement with the spawning stub(s).
            read_slots = [i.imm for i in instrs if i.op == "lib.ld"]
            for stub_label, target in stub_spawn_target.items():
                if target != root:
                    continue
                written = stub_slots[stub_label]
                missing = set(read_slots) - set(written)
                if missing:
                    raise VerificationError(
                        f"{func_name}:{root}: reads live-in slots "
                        f"{sorted(missing)} that {stub_label} never "
                        "writes")
    return counts


def is_well_formed(program: Program) -> bool:
    """Boolean convenience wrapper around :func:`verify_adapted_binary`."""
    try:
        verify_adapted_binary(program)
        return True
    except VerificationError:
        return False


# -- differential (semantic-equivalence) verification ---------------------------------
#
# Structural invariants prove the adapted binary is *well formed*; they do
# not prove it computes the same thing.  The differential check runs the
# original and the adapted programs functionally and compares the main
# thread's architectural outcome (registers, predicates, halted state) and
# the final heap.  Speculative work must be architecturally invisible, so
# any divergence means the adaptation is unsound and must be rolled back.


@dataclass
class DifferentialReport:
    """Outcome of :func:`differential_check`."""

    equivalent: bool
    reason: str = ""
    #: Function the mismatch was attributed to (None = unknown → whole-
    #: binary rollback).
    function: Optional[str] = None
    #: First few heap mismatches as (addr, original, adapted).
    heap_mismatches: List[tuple] = field(default_factory=list)
    spawned_threads: int = 0
    killed_by_budget: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "equivalent": self.equivalent,
            "reason": self.reason,
            "function": self.function,
            "heap_mismatches": [list(m) for m in self.heap_mismatches],
            "spawned_threads": self.spawned_threads,
            "killed_by_budget": self.killed_by_budget,
        }


class ShadowInterpreter:
    """Functional execution that *forces* speculation to happen.

    The plain :class:`~repro.isa.interp.FunctionalInterpreter` never fires
    ``chk.c`` and drops spawns, so a corrupted p-slice would be invisible
    to it.  The shadow interpreter fires each ``chk.c`` site up to
    ``fire_limit`` times and eagerly runs every spawned speculative thread
    to completion (with a per-thread step budget and a chain cap, both of
    which *silently* kill the thread — mirroring the hardware containment
    the paper relies on).  What it surfaces as errors is exactly what would
    corrupt the main program: a speculative store, or main-thread state
    that diverges from the unadapted run.
    """

    def __init__(self, program: Program, heap: Heap, *,
                 fire_limit: int = 8, spec_step_budget: int = 4096,
                 max_chained: int = 4096, max_steps: int = 50_000_000):
        if not program.finalized:
            program.finalize()
        self.program = program
        self.heap = heap
        self.fire_limit = fire_limit
        self.spec_step_budget = spec_step_budget
        self.max_chained = max_chained
        self.max_steps = max_steps
        self.spawned_threads = 0
        self.killed_by_budget = 0
        self._next_tid = 1
        self._chk_fires: Dict[int, int] = {}

    def run(self) -> ThreadState:
        program = self.program
        state = ThreadState(tid=0,
                            pc=program.function_entry[program.entry])
        code = program.code
        steps = 0
        while not state.done:
            if steps >= self.max_steps:
                raise ExecutionError(
                    f"exceeded {self.max_steps} steps; infinite loop?")
            instr = code[state.pc]
            fires = False
            if instr.op == "chk.c":
                fired = self._chk_fires.get(state.pc, 0)
                if fired < self.fire_limit:
                    self._chk_fires[state.pc] = fired + 1
                    fires = True
            result = execute(program, self.heap, state, instr,
                             chk_fires=fires)
            if result.spawn_target is not None:
                home = program.function_of_index[state.pc]
                self._run_speculative(state, result.spawn_target, home)
            steps += 1
        return state

    def _run_speculative(self, parent: ThreadState, target_pc: int,
                         home: str) -> None:
        """Eagerly run one speculative thread (and any chains it spawns)."""
        chained = 0
        pending = [spawn_thread(parent, self._tid(), target_pc)]
        while pending:
            child = pending.pop()
            self.spawned_threads += 1
            steps = 0
            while not child.done:
                if steps >= self.spec_step_budget:
                    self.killed_by_budget += 1
                    break  # silent containment kill, not an error
                instr = self.program.code[child.pc]
                try:
                    result = execute(self.program, self.heap, child, instr)
                except ExecutionError as exc:
                    raise SpeculativeEffectError(str(exc), function=home) \
                        from exc
                if result.spawn_target is not None:
                    chained += 1
                    if chained <= self.max_chained:
                        pending.append(spawn_thread(
                            child, self._tid(), result.spawn_target))
                    # past the cap: silently drop the chain spawn
                steps += 1

    def _tid(self) -> int:
        self._next_tid += 1
        return self._next_tid


class SpeculativeEffectError(ExecutionError):
    """A speculative thread had an architectural effect (e.g. a store)."""

    def __init__(self, message: str, function: Optional[str] = None):
        super().__init__(message)
        self.function = function


def _architectural_outcome(state: ThreadState) -> Dict[str, Any]:
    """Comparable view of a final main-thread state.

    Zero registers / false predicates are dropped because absent entries
    read as 0 / False; the live-in staging buffer is excluded — it is
    microarchitectural and legitimately differs once stubs run.
    """
    return {
        "regs": {r: v for r, v in state.regs.items() if v != 0},
        "preds": {p: v for p, v in state.preds.items() if v},
        "halted": state.halted,
    }


def differential_check(original: Program, adapted: Program,
                       heap_factory: Callable[[], Heap], *,
                       fire_limit: int = 8,
                       spec_step_budget: int = 4096,
                       max_chained: int = 4096) -> DifferentialReport:
    """Compare main-thread architectural outcomes of the two programs.

    Both run under the :class:`ShadowInterpreter` on freshly built heaps;
    the adapted run has every ``chk.c`` forced to fire, so p-slices really
    execute.  Any speculative store, interpreter failure in the adapted
    run, or divergence of registers / predicates / final heap yields a
    non-equivalent report naming the culprit function when known.
    """
    ref = ShadowInterpreter(original, heap_factory(),
                            fire_limit=fire_limit,
                            spec_step_budget=spec_step_budget,
                            max_chained=max_chained)
    ref_state = ref.run()
    shadow = ShadowInterpreter(adapted, heap_factory(),
                               fire_limit=fire_limit,
                               spec_step_budget=spec_step_budget,
                               max_chained=max_chained)
    try:
        adapted_state = shadow.run()
    except SpeculativeEffectError as exc:
        return DifferentialReport(
            equivalent=False,
            reason=f"speculative architectural effect: {exc}",
            function=exc.function,
            spawned_threads=shadow.spawned_threads,
            killed_by_budget=shadow.killed_by_budget)
    except ExecutionError as exc:
        return DifferentialReport(
            equivalent=False,
            reason=f"adapted program failed to execute: {exc}",
            spawned_threads=shadow.spawned_threads,
            killed_by_budget=shadow.killed_by_budget)

    if faultinject.fires("verify.mismatch"):
        return DifferentialReport(
            equivalent=False,
            reason="injected fault at site 'verify.mismatch'",
            spawned_threads=shadow.spawned_threads,
            killed_by_budget=shadow.killed_by_budget)

    mismatches = ref.heap.diff(shadow.heap)
    if mismatches:
        return DifferentialReport(
            equivalent=False,
            reason=f"final heap differs at {len(mismatches)}+ words "
                   f"(first at {mismatches[0][0]:#x})",
            heap_mismatches=mismatches,
            spawned_threads=shadow.spawned_threads,
            killed_by_budget=shadow.killed_by_budget)
    ref_out = _architectural_outcome(ref_state)
    adapted_out = _architectural_outcome(adapted_state)
    if ref_out != adapted_out:
        keys = [k for k in ref_out if ref_out[k] != adapted_out[k]]
        return DifferentialReport(
            equivalent=False,
            reason=f"main-thread state differs: {', '.join(keys)}",
            spawned_threads=shadow.spawned_threads,
            killed_by_budget=shadow.killed_by_budget)
    return DifferentialReport(
        equivalent=True,
        spawned_threads=shadow.spawned_threads,
        killed_by_budget=shadow.killed_by_budget)
