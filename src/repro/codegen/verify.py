"""Static verification of SSP-adapted binaries (Figure 7 invariants).

The emitter's output must satisfy a set of structural invariants for the
adaptation to be sound — the properties Section 2 bases SSP's "separating
the performance issue from the correctness issue" argument on.  This
verifier checks them on any program, so tests (and the tool itself, at
finalise time) can prove an adapted binary is well formed:

1. every ``chk.c`` targets a stub block inside the same function;
2. every stub block is ``lib.st* ; spawn ; rfi`` — it copies live-ins,
   spawns, and returns to the interrupted instruction;
3. every spawn targets a slice block (or the stub's own slice);
4. slice blocks and everything reachable from them without returning to
   main code contain **no stores** and terminate in ``kill``;
5. slice blocks begin by copying live-ins out of the buffer, and the
   slots they read match the slots their stub wrote;
6. ``rfi`` appears only in stub blocks; ``kill`` only in speculative code.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa.program import Program

STUB_PREFIX = ".ssp_stub"
SLICE_PREFIX = ".ssp_slice"


class VerificationError(Exception):
    """An adapted binary violates an SSP structural invariant."""


def _slice_block_labels(program: Program, func_name: str,
                        root_label: str) -> List[str]:
    """The slice block plus its continuation blocks (retry/go chains)."""
    func = program.function(func_name)
    labels = [b.label for b in func.blocks]
    start = labels.index(root_label)
    out = [root_label]
    for label in labels[start + 1:]:
        if label.startswith(root_label + "."):
            out.append(label)
        else:
            break
    return out


def verify_adapted_binary(program: Program) -> Dict[str, int]:
    """Check all invariants; returns summary counts or raises
    :class:`VerificationError`."""
    counts = {"triggers": 0, "stubs": 0, "slices": 0, "spawns": 0}
    for func_name, func in program.functions.items():
        stub_slots: Dict[str, List[int]] = {}
        stub_spawn_target: Dict[str, Optional[str]] = {}

        # Pass 1: stubs.
        for block in func.blocks:
            if not block.label.startswith(STUB_PREFIX):
                continue
            counts["stubs"] += 1
            ops = [i.op for i in block.instrs]
            if not ops or ops[-1] != "rfi":
                raise VerificationError(
                    f"{func_name}:{block.label}: stub must end in rfi")
            if "spawn" not in ops:
                raise VerificationError(
                    f"{func_name}:{block.label}: stub never spawns")
            body = ops[:-1]
            if body and body[-1] != "spawn":
                raise VerificationError(
                    f"{func_name}:{block.label}: spawn must precede rfi")
            for op in body[:-1]:
                if op != "lib.st":
                    raise VerificationError(
                        f"{func_name}:{block.label}: stub may only copy "
                        f"live-ins before spawning (found {op})")
            stub_slots[block.label] = [i.imm for i in block.instrs
                                       if i.op == "lib.st"]
            spawn = next(i for i in block.instrs if i.op == "spawn")
            stub_spawn_target[block.label] = spawn.target

        # Pass 2: triggers.
        for block in func.blocks:
            if block.label.startswith(STUB_PREFIX) or \
                    block.label.startswith(SLICE_PREFIX):
                continue
            for instr in block.instrs:
                if instr.op == "chk.c":
                    counts["triggers"] += 1
                    if instr.target not in stub_slots:
                        raise VerificationError(
                            f"{func_name}:{block.label}: chk.c targets "
                            f"{instr.target!r}, which is not a stub block")
                if instr.op == "rfi":
                    raise VerificationError(
                        f"{func_name}:{block.label}: rfi outside a stub")
                if instr.op == "kill":
                    raise VerificationError(
                        f"{func_name}:{block.label}: kill outside "
                        "speculative code")

        # Pass 3: slices.
        slice_roots = [b.label for b in func.blocks
                       if b.label.startswith(SLICE_PREFIX)
                       and "." not in b.label[len(SLICE_PREFIX):]]
        for root in slice_roots:
            counts["slices"] += 1
            labels = _slice_block_labels(program, func_name, root)
            instrs = [i for label in labels
                      for i in func.block(label).instrs]
            ops = [i.op for i in instrs]
            if "kill" not in ops:
                raise VerificationError(
                    f"{func_name}:{root}: slice never kills itself")
            for instr in instrs:
                if instr.is_store:
                    raise VerificationError(
                        f"{func_name}:{root}: store in a slice ({instr})")
                if instr.op == "halt":
                    raise VerificationError(
                        f"{func_name}:{root}: slice must kill, not halt")
                if instr.op == "spawn":
                    counts["spawns"] += 1
            # Live-in slot agreement with the spawning stub(s).
            read_slots = [i.imm for i in instrs if i.op == "lib.ld"]
            for stub_label, target in stub_spawn_target.items():
                if target != root:
                    continue
                written = stub_slots[stub_label]
                missing = set(read_slots) - set(written)
                if missing:
                    raise VerificationError(
                        f"{func_name}:{root}: reads live-in slots "
                        f"{sorted(missing)} that {stub_label} never "
                        "writes")
    return counts


def is_well_formed(program: Program) -> bool:
    """Boolean convenience wrapper around :func:`verify_adapted_binary`."""
    try:
        verify_adapted_binary(program)
        return True
    except VerificationError:
        return False
