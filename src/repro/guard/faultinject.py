"""Deterministic, seedable fault injection at named pipeline sites.

The guarded pipeline promises to fail *soft* — but degradation paths that
are never executed rot.  This module makes every failure mode directly
testable: a :class:`FaultInjector` is installed process-wide (inherited by
forked runner workers) and consulted at a handful of named **sites**; when
a site fires, the site's code raises :class:`InjectedFault` or applies the
site's characteristic corruption (negating a slack value, inserting a
store into a slice, truncating a cache file).

Determinism: each site draws from its own ``random.Random`` stream seeded
with ``(seed, site)``, so a given (plan, seed) always fires the same calls
regardless of site interleaving — chaos runs are reproducible.

The CLI exposes this as ``--inject SITE[:PROB[:TIMES]]`` (repeatable);
``--inject list`` prints the site registry.  When no injector is installed
every check is a single ``is None`` test, so production runs pay nothing.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Union

#: Registry of injectable sites and the failure each one forces.
SITES: Dict[str, str] = {
    "slice.exception":
        "the slicer raises mid-slice for a delinquent load",
    "schedule.negative_slack":
        "the scheduler reports a negative slack-per-iteration estimate",
    "codegen.invalid_program":
        "the emitter places a store inside a p-slice (invalid binary)",
    "verify.mismatch":
        "the differential verifier reports a semantic mismatch",
    "runner.worker_crash":
        "a runner worker crashes before simulating its spec",
    "runner.worker_timeout":
        "a runner worker hangs and surfaces as a timeout",
    "cache.corrupt":
        "an on-disk cache entry is overwritten with garbage before a read",
    "cache.truncate":
        "an on-disk cache entry is truncated to half before a read",
    "checkpoint.corrupt":
        "an on-disk checkpoint has one byte flipped before a resume read",
    "worker.hang":
        "a supervised worker stops heartbeating (watchdog kill/retry path)",
    "worker.oom":
        "a supervised worker dies of memory exhaustion (MemoryError)",
    # -- service-plane sites (fleet chaos) -------------------------------
    "queue.lease.corrupt":
        "a freshly-acquired lease file is overwritten with garbage bytes",
    "queue.steal.race":
        "a worker loses the stale-lease steal election to a phantom rival",
    "worker.crash":
        "a service worker dies abruptly (SIGKILL-style) while holding a "
        "lease",
    "worker.summary.torn":
        "a worker summary JSON is half-written (no atomic rename)",
    "backend.put.partial":
        "a backend result write is torn mid-put (partial entry at the "
        "final path)",
    "backend.read.ioerror":
        "a backend read fails with a transient I/O error (served as a "
        "miss)",
}


class InjectedFault(RuntimeError):
    """The failure an armed site raises (or reports) when it fires."""

    def __init__(self, site: str, message: Optional[str] = None):
        super().__init__(message or f"injected fault at site {site!r}")
        self.site = site


class FaultSpec:
    """One armed site: fire with ``prob``, at most ``times`` times."""

    def __init__(self, site: str, prob: float = 1.0,
                 times: Optional[int] = None):
        if site not in SITES:
            raise ValueError(f"unknown injection site {site!r}; known "
                             f"sites: {sorted(SITES)}")
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"injection probability must be in [0, 1], "
                             f"got {prob}")
        self.site = site
        self.prob = prob
        self.times = times

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``SITE[:PROB[:TIMES]]`` (e.g. ``cache.corrupt:0.5``)."""
        parts = text.split(":")
        site = parts[0]
        prob = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
        times = int(parts[2]) if len(parts) > 2 and parts[2] else None
        return cls(site, prob, times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSpec({self.site!r}, prob={self.prob}, " \
               f"times={self.times})"


class FaultInjector:
    """Deterministic per-site firing decisions for a set of armed sites."""

    def __init__(self, specs: Iterable[Union[FaultSpec, str]],
                 seed: int = 0):
        self.seed = seed
        self.plan: Dict[str, FaultSpec] = {}
        for spec in specs:
            if isinstance(spec, str):
                spec = FaultSpec.parse(spec)
            self.plan[spec.site] = spec
        self._streams: Dict[str, random.Random] = {
            site: random.Random(f"{seed}:{site}") for site in self.plan}
        #: site -> number of times it has fired so far.
        self.fired: Dict[str, int] = {site: 0 for site in self.plan}
        #: site -> number of times the code under test *detected and
        #: recovered from* an injected failure (quarantined a torn
        #: entry, stole a dead worker's lease, skipped a torn summary).
        #: injected vs. recovered is the chaos scorecard: every armed
        #: site should converge toward recovered == fired.
        self.recovered: Dict[str, int] = {site: 0 for site in self.plan}

    def fires(self, site: str) -> bool:
        """Decide (and record) whether ``site`` fires on this consult."""
        spec = self.plan.get(site)
        if spec is None:
            return False
        if spec.times is not None and self.fired[site] >= spec.times:
            return False
        if spec.prob < 1.0 and self._streams[site].random() >= spec.prob:
            return False
        self.fired[site] += 1
        return True

    def check(self, site: str) -> None:
        """Raise :class:`InjectedFault` if ``site`` fires."""
        if self.fires(site):
            raise InjectedFault(site)

    def record_recovery(self, site: str) -> None:
        """Count one detected-and-recovered failure at an armed site."""
        if site in self.plan:
            self.recovered[site] = self.recovered.get(site, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe injected/recovered scorecard for summaries/reports."""
        return {
            "seed": self.seed,
            "plan": {site: {"prob": spec.prob, "times": spec.times}
                     for site, spec in sorted(self.plan.items())},
            "injected": {site: count for site, count
                         in sorted(self.fired.items())},
            "recovered": {site: count for site, count
                          in sorted(self.recovered.items())},
        }


#: The process-wide injector (None = injection disabled).  Forked runner
#: workers inherit it, so ``--inject runner.*`` reaches the pool.
_ACTIVE: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> FaultInjector:
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    return _ACTIVE


def fires(site: str) -> bool:
    """Hot-path consult: a single None test when injection is off."""
    return _ACTIVE is not None and _ACTIVE.fires(site)


def check(site: str) -> None:
    """Raise :class:`InjectedFault` if the active injector fires ``site``."""
    if _ACTIVE is not None:
        _ACTIVE.check(site)


def record_recovery(site: str) -> None:
    """Count a detected-and-recovered failure when ``site`` is armed.

    Recovery paths (quarantine, lease steal, skip-and-count) call this
    unconditionally; it is a no-op unless the site is in the active
    plan, so production runs pay a single None test.
    """
    if _ACTIVE is not None:
        _ACTIVE.record_recovery(site)


def snapshot() -> Optional[Dict[str, object]]:
    """The active injector's injected/recovered scorecard, or None."""
    return _ACTIVE.snapshot() if _ACTIVE is not None else None


def sync_fired(site: str, count: int) -> None:
    """Force ``site``'s fired-count to ``count`` (cross-process chaos).

    Supervised runner workers execute in freshly-forked processes, so a
    child's fired-count increments never reach the parent: a
    ``times``-bounded plan would otherwise fire in *every* retry forever.
    The supervisor aligns each worker's count with the attempt number
    before the site is consulted, restoring "fire at most N times"
    semantics across process boundaries.
    """
    if _ACTIVE is not None and site in _ACTIVE.fired:
        _ACTIVE.fired[site] = count


@contextmanager
def injecting(*specs: Union[FaultSpec, str], seed: int = 0):
    """Scoped installation for tests and chaos runs."""
    injector = install(FaultInjector(specs, seed=seed))
    try:
        yield injector
    finally:
        uninstall()


def describe_sites() -> List[str]:
    """Human-readable site registry lines (for ``--inject list``)."""
    width = max(len(site) for site in SITES)
    return [f"{site:<{width}}  {desc}" for site, desc in sorted(
        SITES.items())]
