"""Typed error taxonomy and degradation accounting for the guarded pipeline.

The post-pass tool rewrites a working binary, so its cardinal rule is that
a failure anywhere in the flow must degrade to "less adaptation" — never to
a crashed tool or a corrupted binary.  Every recoverable failure is
expressed as a :class:`GuardError` subclass carrying

* **stage** — which pipeline pass it belongs to (slicing, scheduling,
  triggers, codegen, verify),
* **severity** — ``warning`` (informational drop), ``error`` (a load or
  slice was lost), ``fatal`` (the whole adaptation must be abandoned),
* **policy** — the recovery action the pipeline takes: drop the load, drop
  the slice, roll the adaptation back, or abort to a no-op adaptation.

The :class:`GuardReport` accumulates the structured :class:`Diagnostic`
records the recovery boundaries produce, plus the adapted / skipped /
failed load counts and any semantic-equivalence rollbacks, and is attached
to every :class:`~repro.tool.postpass.ToolResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

# -- severities -----------------------------------------------------------------------

WARNING = "warning"
ERROR = "error"
FATAL = "fatal"

# -- recovery policies ----------------------------------------------------------------

#: Drop the delinquent load; the rest of the adaptation proceeds.
DROP_LOAD = "drop-load"
#: Drop the (possibly merged) slice; other slices proceed.
DROP_SLICE = "drop-slice"
#: Roll back to the unadapted binary (per function where possible).
ROLLBACK = "rollback"
#: Abandon the adaptation entirely (no-op result, never an exception).
ABORT = "abort"
#: Fall back to older good state (previous checkpoint, or a fresh run).
FALLBACK = "fallback"


class GuardError(Exception):
    """Base of the guarded pipeline's typed error hierarchy."""

    stage = "pipeline"
    severity = ERROR
    policy = ABORT

    def __init__(self, message: str, *, load_uid: Optional[int] = None,
                 function: Optional[str] = None,
                 cause: Optional[BaseException] = None):
        super().__init__(message)
        self.load_uid = load_uid
        self.function = function
        #: The original (wrapped) exception, when the boundary converted a
        #: foreign error into a typed one.
        self.cause = cause


class SliceError(GuardError):
    """Slicing a delinquent load's address failed; drop that load."""

    stage = "slicing"
    policy = DROP_LOAD


class ScheduleError(GuardError):
    """Scheduling produced an unusable p-slice (e.g. negative slack)."""

    stage = "scheduling"
    policy = DROP_SLICE


class CodegenError(GuardError):
    """Emission produced (or would produce) an ill-formed binary."""

    stage = "codegen"
    policy = DROP_SLICE


class VerifyError(GuardError):
    """The adapted binary is not semantically equivalent to the input."""

    stage = "verify"
    policy = ROLLBACK


class CheckpointError(GuardError):
    """A checkpoint is unusable (corrupt, truncated, wrong version/model).

    The execution layer never trusts a damaged checkpoint: restore refuses
    it and the runner falls back to the previous checkpoint, or to a fresh
    run when none survives.
    """

    stage = "resilience"
    policy = FALLBACK


class ResourceBudgetError(GuardError):
    """A run blew its wall-clock or RSS budget mid-execution.

    The supervisor reacts by stepping the spec down the graceful-
    degradation ladder (chaining SP → basic SP → top-1 delinquent load →
    unadapted binary) rather than by retrying the same work.
    """

    stage = "resilience"
    policy = FALLBACK


#: Stage name -> the error class a boundary wraps foreign exceptions into.
STAGE_ERRORS: Dict[str, type] = {
    "slicing": SliceError,
    "scheduling": ScheduleError,
    "triggers": CodegenError,
    "codegen": CodegenError,
    "verify": VerifyError,
}


@dataclass
class Diagnostic:
    """One structured record of a recovered failure."""

    stage: str
    error: str
    severity: str
    policy: str
    message: str
    load_uid: Optional[int] = None
    function: Optional[str] = None

    @classmethod
    def from_error(cls, exc: GuardError) -> "Diagnostic":
        return cls(stage=exc.stage, error=type(exc).__name__,
                   severity=exc.severity, policy=exc.policy,
                   message=str(exc), load_uid=exc.load_uid,
                   function=exc.function)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "stage": self.stage, "error": self.error,
            "severity": self.severity, "policy": self.policy,
            "message": self.message,
        }
        if self.load_uid is not None:
            out["load_uid"] = self.load_uid
        if self.function is not None:
            out["function"] = self.function
        return out


@dataclass
class GuardReport:
    """Degradation ledger of one post-pass run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Semantic-equivalence rollbacks: {"function": ..., "reason": ...};
    #: function is None for a whole-binary rollback.
    rollbacks: List[Dict[str, Any]] = field(default_factory=list)
    adapted_loads: int = 0
    skipped_loads: int = 0
    failed_loads: int = 0

    def record(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def record_rollback(self, function: Optional[str], reason: str) -> None:
        self.rollbacks.append({"function": function, "reason": reason})

    @property
    def degraded(self) -> bool:
        """True when anything was lost relative to a clean adaptation."""
        return bool(self.rollbacks or self.failed_loads
                    or any(d.severity != WARNING for d in self.diagnostics))

    @property
    def rolled_back(self) -> bool:
        return bool(self.rollbacks)

    def failures_in(self, stage: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.stage == stage]

    def summary(self) -> str:
        """The one-line degradation summary the CLI prints."""
        parts = [f"adapted={self.adapted_loads}",
                 f"skipped={self.skipped_loads}",
                 f"failed={self.failed_loads}"]
        if self.rollbacks:
            parts.append(f"rolled_back={len(self.rollbacks)}")
        if self.diagnostics:
            by_stage: Dict[str, int] = {}
            for d in self.diagnostics:
                by_stage[d.stage] = by_stage.get(d.stage, 0) + 1
            parts.append("diagnostics=" + ",".join(
                f"{stage}:{n}" for stage, n in sorted(by_stage.items())))
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "adapted_loads": self.adapted_loads,
            "skipped_loads": self.skipped_loads,
            "failed_loads": self.failed_loads,
            "degraded": self.degraded,
            "rollbacks": [dict(r) for r in self.rollbacks],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
