"""Per-load / per-slice recovery boundaries for the guarded pipeline.

A :class:`recovery_boundary` wraps one unit of pipeline work (slicing one
load, scheduling one slice, emitting one slice...).  If the body raises, the
exception is converted to the stage's typed :class:`~repro.guard.errors.
GuardError`, recorded as a structured :class:`~repro.guard.errors.
Diagnostic` on the run's :class:`~repro.guard.errors.GuardReport`, emitted
to the observability tracer as a ``guard.failure`` event plus a
``guard.failed.<stage>`` counter — and then *swallowed*, so the failure
costs one load or slice instead of the whole adaptation.

``KeyboardInterrupt``/``SystemExit`` (and anything listed in
``propagate``) always pass through: the boundary isolates pipeline faults,
not operator intent.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from ..obs.tracer import NULL_TRACER
from .errors import (
    Diagnostic,
    GuardError,
    GuardReport,
    STAGE_ERRORS,
)


class Boundary:
    """Outcome handle the ``with`` statement binds; inspect after exit."""

    __slots__ = ("error",)

    def __init__(self) -> None:
        self.error: Optional[GuardError] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class recovery_boundary:
    """Context manager isolating one unit of guarded pipeline work."""

    def __init__(self, report: GuardReport, stage: str, *,
                 tracer=NULL_TRACER,
                 load_uid: Optional[int] = None,
                 function: Optional[str] = None,
                 propagate: Tuple[Type[BaseException], ...] = ()):
        self.report = report
        self.stage = stage
        self.tracer = tracer
        self.load_uid = load_uid
        self.function = function
        self.propagate = (KeyboardInterrupt, SystemExit) + tuple(propagate)
        self.outcome = Boundary()

    def __enter__(self) -> Boundary:
        return self.outcome

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is None:
            return False
        if isinstance(exc, self.propagate):
            return False
        if isinstance(exc, GuardError):
            guard_exc = exc
        else:
            error_cls = STAGE_ERRORS.get(self.stage, GuardError)
            guard_exc = error_cls(f"{type(exc).__name__}: {exc}", cause=exc)
        if guard_exc.load_uid is None:
            guard_exc.load_uid = self.load_uid
        if guard_exc.function is None:
            guard_exc.function = self.function
        diagnostic = Diagnostic.from_error(guard_exc)
        # The boundary may wrap a stage the error class does not name
        # (e.g. a CodegenError raised during trigger placement): report
        # under the stage that actually failed.
        diagnostic.stage = self.stage
        self.report.record(diagnostic)
        self.tracer.event("guard.failure", category="guard",
                          **diagnostic.to_dict())
        self.tracer.counter(f"guard.failed.{self.stage}").add()
        self.outcome.error = guard_exc
        return True
