"""Fault isolation, rollback, and fault injection for the post-pass pipeline.

``repro.guard`` makes the pipeline fail *soft*: a broken slice costs one
delinquent load, a bad adaptation rolls back to the original binary, and
every degradation path can be forced deterministically via
:mod:`repro.guard.faultinject` for chaos testing.
"""

from .boundary import Boundary, recovery_boundary
from .errors import (
    ABORT,
    DROP_LOAD,
    DROP_SLICE,
    ERROR,
    FALLBACK,
    FATAL,
    ROLLBACK,
    WARNING,
    CheckpointError,
    CodegenError,
    Diagnostic,
    GuardError,
    GuardReport,
    ResourceBudgetError,
    ScheduleError,
    SliceError,
    STAGE_ERRORS,
    VerifyError,
)
from .faultinject import (
    SITES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    describe_sites,
    injecting,
)

__all__ = [
    "ABORT", "DROP_LOAD", "DROP_SLICE", "ERROR", "FALLBACK", "FATAL",
    "ROLLBACK", "WARNING", "Boundary", "CheckpointError", "CodegenError",
    "Diagnostic", "FaultInjector", "FaultSpec", "GuardError",
    "GuardReport", "InjectedFault", "ResourceBudgetError",
    "ScheduleError", "SliceError", "STAGE_ERRORS", "SITES", "VerifyError",
    "describe_sites", "injecting", "recovery_boundary",
]
