"""Runner/service throughput benchmarks; writes ``BENCH_runner.json``.

For every paper workload this module times one **cold** run (simulation
plus artifact build, cache empty) and one **warm** run (pure cache hit)
through a private :class:`~repro.runner.Runner`, then drives the whole
suite as a duplicate-heavy batch through service mode.  The measurements
land in ``BENCH_runner.json`` at the repository root:

* per workload — wall time, simulated cycles, simulator throughput in
  cycles/second, warm-hit wall time, and the runner's cache hit rate;
* for the service batch — batch wall time, the shared backend's
  hit/miss/put counters, and the dedupe-heavy re-run's hit rate.

Each run also appends one record to the append-only perf-regression
ledger ``BENCH_history.jsonl`` (see :mod:`repro.obs.regress`), so the
benchmark suite feeds the same trajectory that ``repro bench record`` /
``compare`` maintain.

Timings are host-dependent; the asserted facts (results cached, hit
rates, exactly-one-execution) are not.
"""

import json
import platform
import sys
import time
from pathlib import Path

import pytest

from conftest import BENCH_SCALE

from repro.runner import ResultCache, Runner, RunSpec
from repro.service import ServiceConfig
from repro.workloads import PAPER_ORDER

BENCH_DOC = Path(__file__).resolve().parents[1] / "BENCH_runner.json"
BENCH_LEDGER = Path(__file__).resolve().parents[1] / "BENCH_history.jsonl"


@pytest.fixture(scope="module")
def perf_doc():
    doc = {
        "scale": BENCH_SCALE,
        "variant": "ssp",
        "generated_by": "pytest benchmarks/test_runner_perf.py",
        "workloads": {},
    }
    yield doc
    if doc["workloads"]:
        BENCH_DOC.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        _append_ledger_record(doc)


def _append_ledger_record(doc):
    """One ledger record per benchmark session (k=1: the cold runs)."""
    from repro.obs import regress
    record = {
        "schema": regress.LEDGER_SCHEMA,
        "created": time.time(),
        "label": "benchmarks/test_runner_perf.py",
        "host": platform.node(),
        "python": sys.version.split()[0],
        "scale": doc["scale"],
        "model": "inorder",
        "variant": doc["variant"],
        "k": 1,
        "inject_slowdown": 1.0,
        "workloads": {
            name: {
                "cycles": row["cycles"],
                "wall": [row["sim_wall_time"]],
                "wall_median": row["sim_wall_time"],
                "wall_mad": 0.0,
                "cps_median": row["cycles_per_sec"],
                "cps_mad": 0.0,
            }
            for name, row in doc["workloads"].items()
        },
    }
    regress.append_record(record, BENCH_LEDGER)


@pytest.mark.parametrize("workload", PAPER_ORDER)
def test_workload_cold_then_warm(workload, perf_doc, tmp_path):
    runner = Runner(cache=ResultCache(root=tmp_path / "cache"))
    spec = RunSpec.create(workload, scale=BENCH_SCALE, variant="ssp")

    start = time.perf_counter()
    cold = runner.run_one(spec)
    cold_wall = time.perf_counter() - start
    assert cold.ok and not cold.cached

    start = time.perf_counter()
    warm = runner.run_one(spec)
    warm_wall = time.perf_counter() - start
    assert warm.cached
    assert warm.stats_dict == cold.stats_dict

    snapshot = runner.telemetry.snapshot()
    perf_doc["workloads"][workload] = {
        "wall_time": round(cold_wall, 4),
        "sim_wall_time": round(cold.wall_time, 4),
        "cycles": cold.stats.cycles,
        "cycles_per_sec": round(
            cold.stats.cycles / max(cold.wall_time, 1e-9), 1),
        "warm_wall_time": round(warm_wall, 4),
        "cache_hit_rate": snapshot["hit_rate"],
    }
    assert snapshot["hit_rate"] == 0.5  # one miss, one hit


def test_service_batch_dedupe(perf_doc, tmp_path):
    """The whole suite as one duplicate-heavy service-mode batch."""
    config = ServiceConfig(root=tmp_path / "svc", poll=0.01)
    specs = [RunSpec.create(name, scale=BENCH_SCALE, variant="ssp")
             for name in PAPER_ORDER]

    runner = Runner(service=config)
    start = time.perf_counter()
    results = runner.run(specs + specs)
    batch_wall = time.perf_counter() - start
    assert all(r.ok for r in results)
    snapshot = runner.telemetry.snapshot()
    assert snapshot["launched"] == len(specs)  # duplicates coalesced

    rerun = Runner(service=config)
    start = time.perf_counter()
    again = rerun.run(specs)
    rerun_wall = time.perf_counter() - start
    assert all(r.cached for r in again)
    rerun_snapshot = rerun.telemetry.snapshot()
    assert rerun_snapshot["hit_rate"] == 1.0

    perf_doc["service"] = {
        "batch_specs": len(specs) * 2,
        "unique_specs": len(specs),
        "wall_time": round(batch_wall, 4),
        "rerun_wall_time": round(rerun_wall, 4),
        "rerun_hit_rate": rerun_snapshot["hit_rate"],
        "backend": snapshot["cache_backend"],
    }
