"""Shared fixtures for the benchmark harness.

Each ``test_*`` module regenerates one table or figure of the paper.  The
``context`` fixture is session-scoped so the figures share profiled runs
(exactly as the experiments package does); benchmark timings therefore
measure the *incremental* cost of each experiment on a warm context, while
the asserted values check the reproduction's shape.

The context routes simulations through :mod:`repro.runner` with the
on-disk result cache disabled — timings must measure simulation, not
cache reads.  Set ``BENCH_JOBS=N`` to fan each experiment's batch out
over N worker processes (timings then measure the parallel harness).
"""

import os

import pytest

from repro.experiments import ExperimentContext
from repro.runner import Runner

#: Scale used across the harness; tiny keeps the full suite to ~a minute.
BENCH_SCALE = "tiny"


@pytest.fixture(scope="session")
def context():
    jobs = int(os.environ.get("BENCH_JOBS", "1"))
    return ExperimentContext(BENCH_SCALE, runner=Runner(jobs=jobs,
                                                        cache=None))
