"""Shared fixtures for the benchmark harness.

Each ``test_*`` module regenerates one table or figure of the paper.  The
``context`` fixture is session-scoped so the figures share profiled runs
(exactly as the experiments package does); benchmark timings therefore
measure the *incremental* cost of each experiment on a warm context, while
the asserted values check the reproduction's shape.
"""

import pytest

from repro.experiments import ExperimentContext

#: Scale used across the harness; tiny keeps the full suite to ~a minute.
BENCH_SCALE = "tiny"


@pytest.fixture(scope="session")
def context():
    return ExperimentContext(BENCH_SCALE)
