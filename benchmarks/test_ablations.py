"""Ablation benchmarks for the design choices DESIGN.md calls out.

* chaining vs basic SP — the paper's central scheduling claim,
* spawn-flush cost sensitivity — why SSP "without special hardware
  support" still pays an exception-like penalty per trigger,
* fill-buffer size — the memory-parallelism resource both the OOO window
  and the chaining threads compete for.
"""

import dataclasses

import pytest
from conftest import BENCH_SCALE

from repro.experiments import ExperimentContext
from repro.runner import Runner
from repro.sim import inorder_config, simulate
from repro.tool import SSPPostPassTool, ToolOptions


@pytest.fixture(scope="module")
def mcf_run():
    # Cache disabled for the same reason as the session context fixture:
    # ablation timings must measure simulation, not cache reads.
    context = ExperimentContext(BENCH_SCALE, runner=Runner(cache=None))
    return context.run("mcf")


class TestChainingVsBasic:
    """"Long-range prefetching using chaining triggers is the key to high
    performance via speculative precomputation" (Section 1)."""

    def test_chaining_beats_basic_only(self, benchmark, mcf_run):
        def run_basic_only():
            tool = SSPPostPassTool(ToolOptions(disable_chaining=True))
            result = tool.adapt(mcf_run.program, mcf_run.profile)
            stats = simulate(result.program,
                             mcf_run.workload.build_heap(), "inorder")
            return stats.cycles

        basic_cycles = benchmark.pedantic(run_basic_only, rounds=1,
                                          iterations=1)
        chaining_cycles = mcf_run.cycles("inorder", "ssp")
        base = mcf_run.cycles("inorder", "base")
        assert base / basic_cycles > 1.0, "basic SP should still help"
        assert chaining_cycles < basic_cycles, \
            "chaining SP must beat basic SP on the arc-scan loop"


class TestSpawnFlushCost:
    """The chk.c pipeline-flush penalty bounds how often triggering pays
    (Section 4.4.1 blames it for the small OOO gains)."""

    def test_flush_cost_sweep(self, benchmark, mcf_run):
        adapted = mcf_run.adapted_program

        def run_sweep():
            cycles = {}
            for penalty in (0, 12, 96):
                config = dataclasses.replace(inorder_config(),
                                             chk_flush_penalty=penalty)
                stats = simulate(adapted, mcf_run.workload.build_heap(),
                                 "inorder", config=config)
                cycles[penalty] = stats.cycles
            return cycles

        cycles = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
        # mcf has a single trigger, so sensitivity is small but monotone.
        assert cycles[0] <= cycles[96]


class TestFillBufferSize:
    """Outstanding-miss parallelism is capped by the 16-entry fill buffer;
    shrinking it throttles the chaining threads' prefetch rate."""

    def test_fill_buffer_sweep(self, benchmark, mcf_run):
        adapted = mcf_run.adapted_program

        def run_sweep():
            cycles = {}
            for entries in (2, 16):
                config = dataclasses.replace(inorder_config(),
                                             fill_buffer_entries=entries)
                stats = simulate(adapted, mcf_run.workload.build_heap(),
                                 "inorder", config=config)
                cycles[entries] = stats.cycles
            return cycles

        cycles = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
        assert cycles[2] > cycles[16], \
            "a 2-entry fill buffer must serialise the chain's prefetches"


class TestHyperThreadingContexts:
    """Section 6 reports a follow-up on Pentium 4 Hyper-Threading (two
    hardware contexts): SSP should still help with a single speculative
    context, just less than with three."""

    def test_two_context_machine(self, benchmark, mcf_run):
        """A single speculative context cannot host a chain relay (the
        spawner occupies the only context), so the HT configuration pairs
        with basic SP — per-iteration triggers from the main thread —
        exactly the adaptation style of the Hyper-Threading follow-up."""

        def run_ht():
            tool = SSPPostPassTool(ToolOptions(disable_chaining=True))
            result = tool.adapt(mcf_run.program, mcf_run.profile)
            config = dataclasses.replace(inorder_config(),
                                         hardware_contexts=2)
            stats = simulate(result.program,
                             mcf_run.workload.build_heap(),
                             "inorder", config=config)
            return stats.cycles

        ht_cycles = benchmark.pedantic(run_ht, rounds=1, iterations=1)
        base = mcf_run.cycles("inorder", "base")
        four = mcf_run.cycles("inorder", "ssp")
        assert base / ht_cycles > 1.0, "SSP must help even with 1 context"
        assert four <= ht_cycles, "3 speculative contexts >= 1 context"

    def test_chaining_needs_two_spec_contexts(self, benchmark, mcf_run):
        """The chaining binary degrades gracefully (to ~baseline) when
        only one speculative context exists."""

        def run_chain_on_ht():
            config = dataclasses.replace(inorder_config(),
                                         hardware_contexts=2)
            return simulate(mcf_run.adapted_program,
                            mcf_run.workload.build_heap(),
                            "inorder", config=config).cycles

        cycles = benchmark.pedantic(run_chain_on_ht, rounds=1,
                                    iterations=1)
        base = mcf_run.cycles("inorder", "base")
        assert cycles <= base * 1.02  # never meaningfully slower


class TestDynamicThrottle:
    """The Section 4.4.1 future-work monitor: useless triggers get
    suppressed; useful triggers are untouched."""

    def test_throttle_on_useful_trigger_is_free(self, benchmark, mcf_run):
        adapted = mcf_run.adapted_program

        def run_throttled():
            config = dataclasses.replace(inorder_config(),
                                         dynamic_chk_throttle=True)
            return simulate(adapted, mcf_run.workload.build_heap(),
                            "inorder", config=config).cycles

        throttled = benchmark.pedantic(run_throttled, rounds=1,
                                       iterations=1)
        assert throttled <= mcf_run.cycles("inorder", "ssp") * 1.02


class TestToolPhases:
    """Wall-time of the post-pass tool itself (it is a compiler pass; its
    own cost matters)."""

    def test_profile_phase(self, benchmark, mcf_run):
        from repro.profiling import collect_profile
        benchmark(collect_profile, mcf_run.program,
                  mcf_run.workload.build_heap)

    def test_adaptation_phase(self, benchmark, mcf_run):
        profile = mcf_run.profile

        def adapt():
            return SSPPostPassTool().adapt(mcf_run.program, profile)

        result = benchmark(adapt)
        assert result.adapted is not None
