"""Benchmarks that regenerate every table and figure of the evaluation.

Each benchmark times the regeneration of one exhibit and asserts the
paper's qualitative shape on the produced rows, so a run of
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction check.
"""

from conftest import BENCH_SCALE

from repro.experiments import (
    figure2,
    figure8,
    figure9,
    figure10,
    hand_vs_auto,
    table1,
    table2,
)
from repro.workloads import PAPER_ORDER


class TestTable1:
    def test_table1(self, benchmark, context):
        result = benchmark(table1.run)
        rows = dict(result.rows)
        assert "SMT" in rows["Threading"]
        assert "230-cycle" in rows["Memory"]
        assert "16 entries" in rows["Fill buffer"]


class TestFigure2:
    def test_figure2(self, benchmark, context):
        result = benchmark.pedantic(
            figure2.run, kwargs=dict(context=context, scale=BENCH_SCALE),
            rounds=1, iterations=1)
        rows = result.row_map()
        for name in PAPER_ORDER:
            bench = rows[name]
            io_pm, io_pd = bench[1], bench[2]
            # Memory-bound kernels: perfect memory is a large win on the
            # in-order model ...
            assert io_pm > 3.0, f"{name}: perfect-mem speedup too small"
            # ... and the delinquent loads capture a large share of it
            # (the share grows with scale; tiny inputs select fewer
            # delinquent loads under the min-miss noise filter).
            assert io_pd > 0.25 * io_pm and io_pd > 2.0, \
                f"{name}: delinquent loads should capture much headroom"


class TestTable2:
    def test_table2(self, benchmark, context):
        result = benchmark.pedantic(
            table2.run, kwargs=dict(context=context, scale=BENCH_SCALE),
            rounds=1, iterations=1)
        rows = result.row_map()
        for name in PAPER_ORDER:
            assert rows[name][1] >= 1, f"{name}: no slices generated"
        # Table 2 structure: health and mst have interprocedural slices.
        assert rows["mst"][2] >= 1
        assert rows["health"][2] >= 1
        # Section 4.2: treeadd.df uses basic SP; mcf's loop uses chaining.
        assert "basic" in rows["treeadd.df"][5]
        assert "chaining" in rows["mcf"][5]
        # Live-in counts are small (the paper: 2.8-4.8 on average).
        for name in PAPER_ORDER:
            assert rows[name][4] <= 8


class TestFigure8:
    def test_figure8(self, benchmark, context):
        result = benchmark.pedantic(
            figure8.run, kwargs=dict(context=context, scale=BENCH_SCALE),
            rounds=1, iterations=1)
        rows = result.row_map()
        speedups = [rows[n][1] for n in PAPER_ORDER]
        # Headline: SSP provides a substantial average speedup on the
        # in-order model (87% in the paper).
        assert sum(speedups) / len(speedups) > 1.5
        for name in PAPER_ORDER:
            io_gain, ooo_gain = rows[name][1], rows[name][4]
            assert io_gain > 0.95, f"{name}: SSP must not slow in-order"
            # "SSP provides a greater benefit for the former [in-order]".
            assert io_gain >= ooo_gain * 0.8, \
                f"{name}: in-order gain should not trail OOO gain badly"


class TestFigure9:
    def test_figure9(self, benchmark, context):
        result = benchmark.pedantic(
            figure9.run, kwargs=dict(context=context, scale=BENCH_SCALE),
            rounds=1, iterations=1)
        by_key = {(r[0], r[1]): r for r in result.rows}
        for name in PAPER_ORDER:
            base = by_key[(name, "io")]
            ssp = by_key[(name, "io+SSP")]
            # SSP converts full-latency memory hits into partial hits and
            # nearer levels.
            assert ssp[6] < base[6] + 1e-9, \
                f"{name}: Mem Hit share should shrink with SSP"
        # Categories plus nothing else sum to the miss rate.
        for row in result.rows:
            assert abs(sum(row[2:8]) - row[8]) < 0.5


class TestFigure10:
    def test_figure10(self, benchmark, context):
        result = benchmark.pedantic(
            figure10.run, kwargs=dict(context=context, scale=BENCH_SCALE),
            rounds=1, iterations=1)
        by_key = {(r[0], r[1]): r for r in result.rows}
        for name in ("em3d", "treeadd.df", "vpr"):
            base = by_key[(name, "io")]
            ssp = by_key[(name, "io+SSP")]
            # Baselines are normalised to 100%.
            assert abs(base[-1] - 100.0) < 1e-6
            # "SSP effectively reduces the L3 cycles, which is the main
            # reason for the 87% speedup on the in-order processor."
            assert ssp[2] < base[2], f"{name}: L3 stall cycles must drop"
            assert ssp[-1] < base[-1], f"{name}: total cycles must drop"


class TestHandVsAuto:
    def test_hand_vs_auto(self, benchmark, context):
        result = benchmark.pedantic(
            hand_vs_auto.run,
            kwargs=dict(context=context, scale=BENCH_SCALE),
            rounds=1, iterations=1)
        by_key = {(r[0], r[1]): r for r in result.rows}
        # Both adaptations beat the baseline on the in-order model.
        for bench in ("mcf", "health"):
            assert by_key[(bench, "inorder")][2] > 1.0  # auto
            assert by_key[(bench, "inorder")][3] > 1.0  # hand
        # mcf: hand adaptation stays ahead of the tool (Section 4.5).
        assert by_key[("mcf", "inorder")][3] > \
            by_key[("mcf", "inorder")][2]
